//! Chaos suite: end-to-end workloads driven through the deterministic
//! fault-injecting proxy (`faultline`), proving the recovery layer's
//! contract — transient transport faults (kills mid-RPC, delays,
//! corrupted and black-holed replies) are masked within the retry
//! budget with data intact, while protocol verdicts such as ACL
//! denials surface immediately and are never retried.
//!
//! Determinism: every fault decision comes from the plan seed, taken
//! from `CHAOS_SEED` when set (default below). Each test announces its
//! seed on stderr, which the test harness shows on failure, so a
//! failing run always names the seed that reproduces it. Sequential
//! single-connection tests are exactly reproducible; concurrent ones
//! assert outcomes (data integrity, bounded retries), not fault
//! placement.

mod common;

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use common::{auth, open_server};
use faultline::{FaultAction, FaultPlan, FaultProxy, FaultRule, FaultTrigger};
use tss_core::cfs::{Cfs, CfsConfig};
use tss_core::fs::FileSystem;
use tss_core::stubfs::{DataServer, StubFsOptions};
use tss_core::{LocalFs, MirroredFs, RetryPolicy, StripedFs};

/// Default plan seed, overridable with `CHAOS_SEED=<u64>`.
const DEFAULT_SEED: u64 = 0xC4A0_5EED;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Announce the seed on stderr; the harness prints captured output on
/// failure, so a failing chaos test always names its seed.
fn announce(test: &str) -> u64 {
    let seed = seed();
    eprintln!("{test}: CHAOS_SEED={seed}");
    seed
}

fn pattern(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131) ^ (salt * 7)) as u8).collect()
}

/// Retry policy for chaos runs: fast backoff, a real budget.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 5,
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(40),
        ..RetryPolicy::default()
    }
}

fn chaos_options() -> StubFsOptions {
    StubFsOptions {
        timeout: Duration::from_millis(1500),
        retry: chaos_retry(),
        ..StubFsOptions::default()
    }
}

fn chaos_cfs(endpoint: &str) -> Cfs {
    let mut cfg = CfsConfig::new(endpoint, auth());
    cfg.timeout = Duration::from_millis(1500);
    cfg.retry = chaos_retry();
    Cfs::new(cfg)
}

#[test]
fn kill_mid_rpc_on_one_mirror_replica_is_masked() {
    let seed = announce("kill_mid_rpc_on_one_mirror_replica_is_masked");
    let meta_dir = TempDir::new();
    let dirs: Vec<TempDir> = (0..2).map(|_| TempDir::new()).collect();
    let servers: Vec<FileServer> = dirs.iter().map(|d| open_server(d.path())).collect();

    // Replica 0 sits behind a proxy that kills every second RPC;
    // replica 1 behind a transparent one.
    let killer = FaultProxy::spawn(
        &servers[0].endpoint(),
        FaultPlan::new(seed).rule(FaultTrigger::EveryNthRpc(2), FaultAction::KillMidFrame),
    )
    .unwrap();
    let clean = FaultProxy::spawn(&servers[1].endpoint(), FaultPlan::new(seed)).unwrap();
    let pool = vec![
        DataServer::new(&killer.addr(), "/vol", auth()),
        DataServer::new(&clean.addr(), "/vol", auth()),
    ];
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let fs = MirroredFs::new(meta, pool, 2, chaos_options()).unwrap();

    // Fixture written fault-free.
    killer.set_armed(false);
    fs.ensure_volumes().unwrap();
    let data = pattern(64 * 1024, 3);
    fs.write_file("/precious", &data).unwrap();
    killer.set_armed(true);

    // Kill-mid-pread: the read either recovers within the retry budget
    // or demotes the broken replica and fails over; the caller sees
    // only correct data.
    let mut h = fs.open("/precious", OpenFlags::READ, 0).unwrap();
    let mut out = vec![0u8; data.len()];
    let mut off = 0usize;
    while off < out.len() {
        let n = h.pread(&mut out[off..], off as u64).unwrap();
        assert!(n > 0, "pread returned 0 before EOF");
        off += n;
    }
    assert_eq!(out, data);
    drop(h);
    assert_eq!(fs.read_file("/precious").unwrap(), data);

    assert!(killer.stats().kills > 0, "kill plan never fired");
    // Bounded recovery: each operation retries at most the policy
    // budget; the workload above is comfortably under 16 pool-level
    // operations.
    let budget = u64::from(chaos_retry().max_retries);
    let stats = fs.pool_stats();
    assert!(stats.retries <= budget * 16, "unbounded retries: {stats:?}");
}

#[test]
fn striped_concurrent_workload_survives_kills_delays_and_corruption() {
    let seed = announce("striped_concurrent_workload_survives_kills_delays_and_corruption");
    let meta_dir = TempDir::new();
    let dirs: Vec<TempDir> = (0..3).map(|_| TempDir::new()).collect();
    let servers: Vec<FileServer> = dirs.iter().map(|d| open_server(d.path())).collect();

    // Each stripe server misbehaves differently: server 0 kills and
    // delays, server 1 corrupts replies, server 2 is honest.
    let plan_for = |i: usize| match i {
        0 => FaultPlan::new(seed)
            .with_rule(
                FaultRule::new(FaultTrigger::EveryNthRpc(7), FaultAction::KillMidFrame)
                    .max_fires(6),
            )
            .with_rule(
                FaultRule::new(
                    FaultTrigger::Probability(0.05),
                    FaultAction::Delay(Duration::from_millis(3)),
                )
                .max_fires(20),
            ),
        1 => FaultPlan::new(seed ^ 1).with_rule(
            FaultRule::new(FaultTrigger::EveryNthRpc(9), FaultAction::CorruptReply).max_fires(3),
        ),
        _ => FaultPlan::new(seed ^ 2),
    };
    let proxies: Vec<FaultProxy> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| FaultProxy::spawn(&s.endpoint(), plan_for(i)).unwrap())
        .collect();
    let pool: Vec<DataServer> = proxies
        .iter()
        .map(|p| DataServer::new(&p.addr(), "/vol", auth()))
        .collect();
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let fs = StripedFs::new(meta, pool, 3, 4096, chaos_options()).unwrap();

    for p in &proxies {
        p.set_armed(false);
    }
    fs.ensure_volumes().unwrap();
    for p in &proxies {
        p.set_armed(true);
    }

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let fs = &fs;
            scope.spawn(move || {
                let path = format!("/w{t}");
                let data = pattern(8 * 4096 + 257 * t, t);
                fs.write_file(&path, &data).unwrap();
                assert_eq!(fs.read_file(&path).unwrap(), data, "thread {t}");
            });
        }
    });

    assert!(proxies[0].stats().kills > 0, "kill plan never fired");
    let budget = u64::from(chaos_retry().max_retries);
    let stats = fs.pool_stats();
    assert!(stats.retries <= budget * 64, "unbounded retries: {stats:?}");
}

#[test]
fn corrupted_replies_are_retried_not_trusted() {
    let seed = announce("corrupted_replies_are_retried_not_trusted");
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let plan = FaultPlan::new(seed).with_rule(
        FaultRule::new(FaultTrigger::EveryNthRpc(5), FaultAction::CorruptReply).max_fires(3),
    );
    let proxy = FaultProxy::spawn(&server.endpoint(), plan).unwrap();
    let fs = chaos_cfs(&proxy.addr());

    let data = pattern(10_000, 9);
    fs.write_file("/blob", &data).unwrap();
    // A damaged status line must read as a transport failure, so the
    // client reconnects and retries rather than misparsing a verdict.
    for _ in 0..10 {
        assert_eq!(fs.read_file("/blob").unwrap(), data);
    }
    assert!(proxy.stats().corruptions > 0, "corrupt plan never fired");
    assert!(fs.retries() > 0, "corruption should force a retry");
    assert!(fs.retries() <= 3 * u64::from(chaos_retry().max_retries));
}

#[test]
fn blackholed_request_times_out_then_recovers() {
    let seed = announce("blackholed_request_times_out_then_recovers");
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let plan = FaultPlan::new(seed).with_rule(
        FaultRule::new(FaultTrigger::EveryNthRpc(6), FaultAction::BlackHole).max_fires(1),
    );
    let proxy = FaultProxy::spawn(&server.endpoint(), plan).unwrap();
    let mut cfg = CfsConfig::new(&proxy.addr(), auth());
    // A short timeout turns the black hole into a prompt Timeout.
    cfg.timeout = Duration::from_millis(250);
    cfg.retry = chaos_retry();
    let fs = Cfs::new(cfg);

    let data = pattern(2_000, 5);
    fs.write_file("/t", &data).unwrap();
    for _ in 0..8 {
        assert_eq!(fs.read_file("/t").unwrap(), data);
    }
    assert_eq!(proxy.stats().blackholes, 1, "black hole never fired");
    assert!(fs.retries() >= 1, "the timed-out RPC should be retried");
}

#[test]
fn acl_denial_fails_immediately_with_zero_retries() {
    let seed = announce("acl_denial_fails_immediately_with_zero_retries");
    let dir = TempDir::new();
    // Read/list grant only: a write draws a protocol verdict, which is
    // fatal — unlike a fault, retrying it cannot help.
    let cfg = ServerConfig::localhost(dir.path(), "test-owner")
        .with_root_acl(Acl::single("hostname:*", "rl").unwrap());
    let server = FileServer::start(cfg).unwrap();
    let proxy = FaultProxy::spawn(&server.endpoint(), FaultPlan::new(seed)).unwrap();
    let fs = chaos_cfs(&proxy.addr());

    let t0 = Instant::now();
    let err = fs
        .write_file("/nope", b"data")
        .expect_err("write must be denied");
    assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
    assert_eq!(fs.retries(), 0, "fatal verdicts must not be retried");
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "denial must surface without backoff sleeps"
    );
}

#[test]
fn fault_schedule_is_deterministic_for_a_fixed_seed() {
    let seed = announce("fault_schedule_is_deterministic_for_a_fixed_seed");
    // Two runs with the same seed over the same sequential RPC stream
    // must fail the same operations and fire the same faults.
    let run = |seed: u64| -> (Vec<bool>, u64) {
        let dir = TempDir::new();
        let server = open_server(dir.path());
        let plan =
            FaultPlan::new(seed).rule(FaultTrigger::Probability(0.25), FaultAction::KillMidFrame);
        let proxy = FaultProxy::spawn(&server.endpoint(), plan).unwrap();
        let mut cfg = CfsConfig::new(&proxy.addr(), auth());
        cfg.timeout = Duration::from_millis(1500);
        // No retry: every injected fault surfaces, so the outcome
        // vector mirrors the fault schedule exactly.
        cfg.retry = RetryPolicy::none();
        let fs = Cfs::new(cfg);
        let outcomes: Vec<bool> = (0..24)
            .map(|i| fs.write_file(&format!("/f{i}"), b"x").is_ok())
            .collect();
        (outcomes, proxy.stats().kills)
    };
    let a = run(seed);
    let b = run(seed);
    assert_eq!(a, b, "same seed must give the same schedule");
    assert!(a.1 > 0, "a 25% kill rate over 24 ops should fire");
}

#[test]
fn injected_fault_counts_line_up_with_retry_telemetry() {
    let seed = announce("injected_fault_counts_line_up_with_retry_telemetry");
    let dir = TempDir::new();
    let server = open_server(dir.path());
    // A bounded burst of kills: each fired kill tears the connection
    // mid-RPC, which the recovery layer must answer with at least one
    // retry. Capping the rule keeps the run inside the retry budget.
    let plan = FaultPlan::new(seed)
        .with_rule(FaultRule::new(FaultTrigger::NthRpc(3), FaultAction::KillMidFrame).max_fires(1))
        .with_rule(
            FaultRule::new(FaultTrigger::EveryNthRpc(7), FaultAction::KillMidFrame).max_fires(3),
        );
    let proxy = FaultProxy::spawn(&server.endpoint(), plan).unwrap();
    let fs = chaos_cfs(&proxy.addr());

    let data = pattern(16 * 1024, 11);
    fs.write_file("/chaos-ledger", &data).unwrap();
    for i in 0..30 {
        assert_eq!(
            fs.read_file("/chaos-ledger").unwrap(),
            data,
            "read {i} must be masked"
        );
    }

    let fires = proxy.fires();
    let snap = fs.telemetry().snapshot();
    eprintln!(
        "fault/retry ledger: fires={fires} kills={} rpcs={} | client.retries={:?} \
         client.reconnects={:?} client.connects={:?}",
        proxy.stats().kills,
        proxy.stats().rpcs,
        snap.counter("client.retries"),
        snap.counter("client.reconnects"),
        snap.counter("client.connects"),
    );
    assert!(fires >= 2, "the capped kill rules should have fired");
    assert_eq!(
        fires,
        proxy.stats().kills,
        "every firing was a kill in this plan"
    );
    // The contract under test: N injected transport faults must show
    // up as at least N observed recovery retries — both through the
    // legacy accessor and through the telemetry registry, which must
    // agree with each other.
    assert!(
        fs.retries() >= fires,
        "retries {} must cover fires {fires}",
        fs.retries()
    );
    assert_eq!(snap.counter("client.retries"), Some(fs.retries()));
    let reconnects = snap.counter("client.reconnects").unwrap_or(0);
    assert!(
        reconnects >= fires,
        "each kill severs the transport, so reconnects {reconnects} must cover fires {fires}"
    );
    assert!(snap.counter("client.connects").unwrap_or(0) > reconnects);
}

//! Integration tests for the extension abstractions (paper §10
//! future work): transparent striping and transparent replication,
//! against live file servers.

mod common;

use std::sync::Arc;

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use common::{auth, data_count, open_server};
use tss_core::fs::FileSystem;
use tss_core::stubfs::{DataServer, StubFsOptions};
use tss_core::{LocalFs, MirroredFs, StripedFs};

fn pool(servers: &[&chirp_server::FileServer]) -> Vec<DataServer> {
    servers
        .iter()
        .map(|s| DataServer::new(&s.endpoint(), "/vol", auth()))
        .collect()
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131) % 251) as u8).collect()
}

// ---- striping -----------------------------------------------------------

#[test]
fn striped_write_read_round_trip() {
    let meta_dir = TempDir::new();
    let hosts: Vec<TempDir> = (0..3).map(|_| TempDir::new()).collect();
    let servers: Vec<chirp_server::FileServer> =
        hosts.iter().map(|d| open_server(d.path())).collect();
    let refs: Vec<&chirp_server::FileServer> = servers.iter().collect();
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let fs = StripedFs::new(meta, pool(&refs), 3, 4096, StubFsOptions::default()).unwrap();
    fs.ensure_volumes().unwrap();

    // Sizes crossing stripe boundaries, exact multiples, tiny tails.
    for size in [1usize, 4095, 4096, 4097, 3 * 4096, 10 * 4096 + 17] {
        let path = format!("/f{size}");
        let data = pattern(size);
        fs.write_file(&path, &data).unwrap();
        assert_eq!(fs.read_file(&path).unwrap(), data, "size {size}");
        assert_eq!(fs.stat(&path).unwrap().size as usize, size);
    }
    // Each server holds one part per file.
    for host in &hosts {
        assert_eq!(data_count(&host.path().join("vol")), 6);
    }
}

#[test]
fn striped_data_is_actually_spread() {
    let meta_dir = TempDir::new();
    let hosts: Vec<TempDir> = (0..2).map(|_| TempDir::new()).collect();
    let servers: Vec<chirp_server::FileServer> =
        hosts.iter().map(|d| open_server(d.path())).collect();
    let refs: Vec<&chirp_server::FileServer> = servers.iter().collect();
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let fs = StripedFs::new(meta, pool(&refs), 2, 1000, StubFsOptions::default()).unwrap();
    fs.ensure_volumes().unwrap();
    fs.write_file("/wide", &pattern(5000)).unwrap();
    // 5 stripes of 1000 over 2 servers: 3 + 2.
    let sizes: Vec<u64> = hosts
        .iter()
        .map(|h| {
            std::fs::read_dir(h.path().join("vol"))
                .unwrap()
                .flatten()
                .filter(|e| e.file_name() != ".__acl")
                .map(|e| e.metadata().unwrap().len())
                .sum()
        })
        .collect();
    let mut sorted = sizes.clone();
    sorted.sort();
    assert_eq!(
        sorted,
        vec![2000, 3000],
        "stripes dealt round-robin: {sizes:?}"
    );
}

#[test]
fn striped_random_access_and_truncate() {
    let meta_dir = TempDir::new();
    let hosts: Vec<TempDir> = (0..3).map(|_| TempDir::new()).collect();
    let servers: Vec<chirp_server::FileServer> =
        hosts.iter().map(|d| open_server(d.path())).collect();
    let refs: Vec<&chirp_server::FileServer> = servers.iter().collect();
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let fs = StripedFs::new(meta, pool(&refs), 3, 100, StubFsOptions::default()).unwrap();
    fs.ensure_volumes().unwrap();
    let data = pattern(1000);
    fs.write_file("/f", &data).unwrap();
    let mut h = fs.open("/f", OpenFlags::read_write(), 0).unwrap();
    // Read a window straddling several stripes.
    let mut buf = vec![0u8; 333];
    assert_eq!(h.pread(&mut buf, 95).unwrap(), 333);
    assert_eq!(&buf[..], &data[95..428]);
    // Overwrite across a stripe boundary (99..102 spans stripes 0/1)
    // and read back through the same boundary.
    h.pwrite(b"XYZ", 99).unwrap();
    let mut buf = vec![0u8; 5];
    h.pread(&mut buf, 98).unwrap();
    assert_eq!(buf, [data[98], b'X', b'Y', b'Z', data[102]]);
    // Truncate to a non-boundary size.
    h.ftruncate(517).unwrap();
    assert_eq!(h.fstat().unwrap().size, 517);
    drop(h);
    assert_eq!(fs.read_file("/f").unwrap().len(), 517);
    assert_eq!(fs.stat("/f").unwrap().size, 517);
}

#[test]
fn striped_unlink_removes_all_parts() {
    let meta_dir = TempDir::new();
    let hosts: Vec<TempDir> = (0..2).map(|_| TempDir::new()).collect();
    let servers: Vec<chirp_server::FileServer> =
        hosts.iter().map(|d| open_server(d.path())).collect();
    let refs: Vec<&chirp_server::FileServer> = servers.iter().collect();
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let fs = StripedFs::new(meta, pool(&refs), 2, 256, StubFsOptions::default()).unwrap();
    fs.ensure_volumes().unwrap();
    fs.write_file("/f", &pattern(10_000)).unwrap();
    fs.unlink("/f").unwrap();
    for host in &hosts {
        assert_eq!(data_count(&host.path().join("vol")), 0);
    }
    assert!(fs.readdir("/").unwrap().is_empty());
}

#[test]
fn striped_width_must_fit_pool() {
    let meta_dir = TempDir::new();
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let p = vec![DataServer::new("h:1", "/vol", Vec::new())];
    assert!(StripedFs::new(meta.clone(), p.clone(), 2, 100, StubFsOptions::default()).is_err());
    assert!(StripedFs::new(meta.clone(), p.clone(), 0, 100, StubFsOptions::default()).is_err());
    assert!(StripedFs::new(meta, p, 1, 0, StubFsOptions::default()).is_err());
}

// ---- mirroring ----------------------------------------------------------

fn mirrored_fixture(
    n: usize,
    copies: usize,
) -> (
    TempDir,
    Vec<TempDir>,
    Vec<chirp_server::FileServer>,
    MirroredFs,
) {
    let meta_dir = TempDir::new();
    let hosts: Vec<TempDir> = (0..n).map(|_| TempDir::new()).collect();
    let servers: Vec<chirp_server::FileServer> =
        hosts.iter().map(|d| open_server(d.path())).collect();
    let refs: Vec<&chirp_server::FileServer> = servers.iter().collect();
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let options = StubFsOptions {
        timeout: std::time::Duration::from_millis(500),
        retry: tss_core::RetryPolicy::none(),
        ..StubFsOptions::default()
    };
    let fs = MirroredFs::new(meta, pool(&refs), copies, options).unwrap();
    fs.ensure_volumes().unwrap();
    (meta_dir, hosts, servers, fs)
}

#[test]
fn mirrored_write_lands_on_every_replica() {
    let (_m, hosts, _servers, fs) = mirrored_fixture(2, 2);
    let data = pattern(50_000);
    fs.write_file("/f", &data).unwrap();
    for host in &hosts {
        let vol = host.path().join("vol");
        let entry = std::fs::read_dir(&vol)
            .unwrap()
            .flatten()
            .find(|e| e.file_name() != ".__acl")
            .expect("replica present");
        assert_eq!(std::fs::read(entry.path()).unwrap(), data);
    }
    assert_eq!(fs.read_file("/f").unwrap(), data);
    assert_eq!(fs.stat("/f").unwrap().size, 50_000);
}

#[test]
fn mirrored_reads_survive_a_dead_server() {
    let (_m, _hosts, mut servers, fs) = mirrored_fixture(3, 3);
    let data = pattern(10_000);
    fs.write_file("/precious", &data).unwrap();
    // Kill two of three replicas' servers.
    servers[0].shutdown();
    servers[1].shutdown();
    assert_eq!(fs.read_file("/precious").unwrap(), data);
    assert_eq!(fs.stat("/precious").unwrap().size, 10_000);
    // Writes, however, are strict: they must reach every mirror.
    assert!(fs.write_file("/precious", b"new").is_err());
}

#[test]
fn mirrored_unlink_tolerates_dead_replicas() {
    let (_m, hosts, mut servers, fs) = mirrored_fixture(2, 2);
    fs.write_file("/f", &pattern(100)).unwrap();
    servers[0].shutdown();
    fs.unlink("/f").unwrap();
    assert!(fs.readdir("/").unwrap().is_empty());
    // The live server's copy is gone.
    assert_eq!(data_count(&hosts[1].path().join("vol")), 0);
}

#[test]
fn mirrored_handles_replicate_truncate_and_sync() {
    let (_m, _hosts, _servers, fs) = mirrored_fixture(2, 2);
    let mut h = fs
        .open("/f", OpenFlags::read_write() | OpenFlags::CREATE, 0o644)
        .unwrap();
    h.pwrite(&pattern(1000), 0).unwrap();
    h.fsync().unwrap();
    h.ftruncate(10).unwrap();
    assert_eq!(h.fstat().unwrap().size, 10);
    drop(h);
    assert_eq!(fs.read_file("/f").unwrap(), pattern(1000)[..10]);
}

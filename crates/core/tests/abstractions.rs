//! Integration tests: the CFS/DPFS/DSFS abstractions against real file
//! servers over loopback TCP.

mod common;

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use common::{auth, cfs, data_count, open_server, TIMEOUT};
use tss_core::fs::FileSystem;
use tss_core::stubfs::{DataServer, StubFsOptions};
use tss_core::{Dpfs, Dsfs, Placement};

// ---- CFS ---------------------------------------------------------------

#[test]
fn cfs_is_an_untranslated_view_of_one_server() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let fs = cfs(&server.endpoint());
    fs.mkdir("/sub", 0o755).unwrap();
    fs.write_file("/sub/f", b"content").unwrap();
    assert_eq!(fs.read_file("/sub/f").unwrap(), b"content");
    // Untranslated: the bytes are directly visible on the host.
    assert_eq!(std::fs::read(dir.path().join("sub/f")).unwrap(), b"content");
    assert_eq!(fs.readdir("/").unwrap(), vec!["sub"]);
    fs.rename("/sub/f", "/g").unwrap();
    assert_eq!(fs.stat("/g").unwrap().size, 7);
    fs.unlink("/g").unwrap();
    fs.rmdir("/sub").unwrap();
}

#[test]
fn cfs_base_roots_the_view_in_a_subdirectory() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let root = cfs(&server.endpoint());
    root.mkdir("/vol", 0o755).unwrap();
    root.write_file("/vol/inside", b"x").unwrap();
    root.write_file("/outside", b"y").unwrap();

    let mut cfg = tss_core::cfs::CfsConfig::new(&server.endpoint(), auth()).with_base("/vol");
    cfg.timeout = TIMEOUT;
    let vol = tss_core::Cfs::new(cfg);
    assert_eq!(vol.read_file("/inside").unwrap(), b"x");
    assert!(vol.read_file("/outside").is_err());
    assert_eq!(vol.readdir("/").unwrap(), vec!["inside"]);
}

#[test]
fn cfs_positional_handles() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let fs = cfs(&server.endpoint());
    let mut h = fs
        .open("/f", OpenFlags::read_write() | OpenFlags::CREATE, 0o644)
        .unwrap();
    h.pwrite(b"0123456789", 0).unwrap();
    let mut buf = [0u8; 4];
    assert_eq!(h.pread(&mut buf, 6).unwrap(), 4);
    assert_eq!(&buf, b"6789");
    assert_eq!(h.fstat().unwrap().size, 10);
    h.ftruncate(3).unwrap();
    assert_eq!(h.fstat().unwrap().size, 3);
    h.fsync().unwrap();
}

// ---- DPFS --------------------------------------------------------------

fn data_pool(servers: &[&chirp_server::FileServer]) -> Vec<DataServer> {
    servers
        .iter()
        .map(|s| DataServer::new(&s.endpoint(), "/mydpfs", auth()))
        .collect()
}

#[test]
fn dpfs_spreads_data_over_servers() {
    let meta_dir = TempDir::new();
    let d1 = TempDir::new();
    let d2 = TempDir::new();
    let s1 = open_server(d1.path());
    let s2 = open_server(d2.path());
    let fs = Dpfs::new(meta_dir.path(), data_pool(&[&s1, &s2])).unwrap();
    fs.ensure_volumes().unwrap();

    for i in 0..4 {
        fs.write_file(&format!("/file{i}"), format!("data{i}").as_bytes())
            .unwrap();
    }
    for i in 0..4 {
        assert_eq!(
            fs.read_file(&format!("/file{i}")).unwrap(),
            format!("data{i}").as_bytes()
        );
    }
    // Round-robin placement: each server holds half the data files.
    let count = |d: &TempDir| data_count(&d.path().join("mydpfs"));
    assert_eq!(count(&d1), 2);
    assert_eq!(count(&d2), 2);
    // The local metadata tree holds stubs, not data.
    let stub_text = std::fs::read_to_string(meta_dir.path().join("file0")).unwrap();
    assert!(stub_text.starts_with(tss_core::stub::STUB_MAGIC));
}

#[test]
fn dpfs_name_ops_touch_no_server() {
    let meta_dir = TempDir::new();
    let d1 = TempDir::new();
    let s1 = open_server(d1.path());
    let fs = Dpfs::new(meta_dir.path(), data_pool(&[&s1])).unwrap();
    fs.ensure_volumes().unwrap();
    fs.write_file("/a", b"1").unwrap();
    let before = s1.stats().snapshot().requests;
    fs.mkdir("/dir", 0o755).unwrap();
    fs.rename("/a", "/dir/b").unwrap();
    assert_eq!(fs.readdir("/dir").unwrap(), vec!["b"]);
    let after = s1.stats().snapshot().requests;
    assert_eq!(before, after, "mkdir/rename/readdir are metadata-only");
    // The moved name still reaches the same data.
    assert_eq!(fs.read_file("/dir/b").unwrap(), b"1");
}

#[test]
fn dpfs_unlink_removes_data_then_stub() {
    let meta_dir = TempDir::new();
    let d1 = TempDir::new();
    let s1 = open_server(d1.path());
    let fs = Dpfs::new(meta_dir.path(), data_pool(&[&s1])).unwrap();
    fs.ensure_volumes().unwrap();
    fs.write_file("/f", b"payload").unwrap();
    assert_eq!(data_count(&d1.path().join("mydpfs")), 1);
    fs.unlink("/f").unwrap();
    assert_eq!(
        data_count(&d1.path().join("mydpfs")),
        0,
        "no unreferenced data may survive"
    );
    assert!(!meta_dir.path().join("f").exists());
}

#[test]
fn dpfs_dangling_stub_reports_not_found() {
    let meta_dir = TempDir::new();
    let d1 = TempDir::new();
    let s1 = open_server(d1.path());
    let fs = Dpfs::new(meta_dir.path(), data_pool(&[&s1])).unwrap();
    fs.ensure_volumes().unwrap();
    fs.write_file("/f", b"payload").unwrap();
    // Simulate the crash-between-steps-2-and-3 state: stub exists,
    // data is gone (e.g. evicted by the server owner).
    for entry in std::fs::read_dir(d1.path().join("mydpfs")).unwrap() {
        std::fs::remove_file(entry.unwrap().path()).unwrap();
    }
    let err = fs.read_file("/f").expect_err("dangling stub");
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    // The paper: such a stub is easily deleted by the user.
    fs.unlink("/f").unwrap();
    assert!(fs.readdir("/").unwrap().is_empty());
}

#[test]
fn dpfs_exclusive_create_collision_aborts() {
    let meta_dir = TempDir::new();
    let d1 = TempDir::new();
    let s1 = open_server(d1.path());
    let fs = Dpfs::new(meta_dir.path(), data_pool(&[&s1])).unwrap();
    fs.ensure_volumes().unwrap();
    let fl = OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE;
    fs.open("/x", fl, 0o644).unwrap();
    let err = fs.open("/x", fl, 0o644).err().expect("collision");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    // Exactly one data file was created: the aborted create did not
    // leak garbage.
    assert_eq!(data_count(&d1.path().join("mydpfs")), 1);
}

// ---- DSFS --------------------------------------------------------------

#[test]
fn dsfs_is_shared_between_clients() {
    let meta_host = TempDir::new();
    let data_host = TempDir::new();
    let dir_server = open_server(meta_host.path());
    let data_server = open_server(data_host.path());
    let pool = vec![DataServer::new(&data_server.endpoint(), "/vol", auth())];

    let writer = Dsfs::format(&dir_server.endpoint(), "/tree", auth(), pool.clone()).unwrap();
    writer.mkdir("/shared", 0o755).unwrap();
    writer.write_file("/shared/result", b"42").unwrap();

    // A second, independent client attaches to the same tree.
    let reader = Dsfs::new(&dir_server.endpoint(), "/tree", auth(), pool).unwrap();
    assert_eq!(reader.readdir("/shared").unwrap(), vec!["result"]);
    assert_eq!(reader.read_file("/shared/result").unwrap(), b"42");
    assert_eq!(reader.stat("/shared/result").unwrap().size, 2);
    assert!(reader.stat("/shared").unwrap().is_dir());
}

#[test]
fn dsfs_directory_server_can_serve_double_duty() {
    // One server is both directory server and data server — any
    // server can act in either role.
    let host = TempDir::new();
    let server = open_server(host.path());
    let pool = vec![DataServer::new(&server.endpoint(), "/data", auth())];
    let fs = Dsfs::format(&server.endpoint(), "/tree", auth(), pool).unwrap();
    fs.write_file("/f", b"both roles").unwrap();
    assert_eq!(fs.read_file("/f").unwrap(), b"both roles");
    // Tree and data are distinguishable directories on the host.
    assert!(host.path().join("tree/f").exists(), "stub in the tree");
    assert_eq!(data_count(&host.path().join("data")), 1);
}

#[test]
fn dsfs_failure_coherence_losing_one_data_server() {
    let meta_host = TempDir::new();
    let d1 = TempDir::new();
    let d2 = TempDir::new();
    let dir_server = open_server(meta_host.path());
    let mut s1 = open_server(d1.path());
    let s2 = open_server(d2.path());
    let pool = vec![
        DataServer::new(&s1.endpoint(), "/vol", auth()),
        DataServer::new(&s2.endpoint(), "/vol", auth()),
    ];
    // Fast failure detection for the test.
    let options = StubFsOptions {
        timeout: std::time::Duration::from_millis(300),
        retry: tss_core::RetryPolicy::none(),
        ..StubFsOptions::default()
    };
    let fs = Dsfs::with_options(
        &dir_server.endpoint(),
        "/tree",
        auth(),
        pool.clone(),
        Placement::round_robin(),
        options,
    )
    .unwrap();
    {
        // format() equivalent under custom options
        let root = cfs(&dir_server.endpoint());
        root.mkdir("/tree", 0o755).unwrap();
        fs.stubfs().ensure_volumes().unwrap();
    }
    fs.write_file("/on-s1", b"one").unwrap(); // round robin: s1
    fs.write_file("/on-s2", b"two").unwrap(); // s2

    // Kill s1.
    s1.shutdown();
    drop(s1);

    // The directory structure remains navigable...
    let mut names = fs.readdir("/").unwrap();
    names.sort();
    assert_eq!(names, vec!["on-s1", "on-s2"]);
    // ...data on other devices remains usable...
    assert_eq!(fs.read_file("/on-s2").unwrap(), b"two");
    // ...and only the files on the lost device are unavailable.
    assert!(fs.read_file("/on-s1").is_err());
}

#[test]
fn dsfs_concurrent_create_race_yields_one_winner() {
    let meta_host = TempDir::new();
    let data_host = TempDir::new();
    let dir_server = open_server(meta_host.path());
    let data_server = open_server(data_host.path());
    let pool = vec![DataServer::new(&data_server.endpoint(), "/vol", auth())];
    Dsfs::format(&dir_server.endpoint(), "/tree", auth(), pool.clone()).unwrap();

    let dir_ep = dir_server.endpoint();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let dir_ep = dir_ep.clone();
        let pool = pool.clone();
        handles.push(std::thread::spawn(move || {
            let fs = Dsfs::new(&dir_ep, "/tree", auth(), pool).unwrap();
            let fl = OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE;
            fs.open("/contested", fl, 0o644).is_ok()
        }));
    }
    let winners = handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|&won| won)
        .count();
    assert_eq!(winners, 1, "exclusive open admits exactly one creator");
    // No garbage: exactly one data file exists.
    assert_eq!(data_count(&data_host.path().join("vol")), 1);
}

#[test]
fn fsck_finds_and_repairs_dangling_stubs_and_orphans() {
    let meta_dir = TempDir::new();
    let d1 = TempDir::new();
    let s1 = open_server(d1.path());
    let fs = Dpfs::new(meta_dir.path(), data_pool(&[&s1])).unwrap();
    fs.ensure_volumes().unwrap();
    fs.mkdir("/sub", 0o755).unwrap();
    fs.write_file("/sub/good", b"intact").unwrap();
    fs.write_file("/doomed", b"will dangle").unwrap();

    // Manufacture the two §5 failure states: evict one file's data
    // (dangling stub) and drop a foreign file into the volume
    // (orphan), plus a corrupt stub.
    let stub_text = std::fs::read_to_string(meta_dir.path().join("doomed")).unwrap();
    let data_name = stub_text
        .lines()
        .nth(2)
        .unwrap()
        .rsplit('/')
        .next()
        .unwrap();
    std::fs::remove_file(d1.path().join("mydpfs").join(data_name)).unwrap();
    std::fs::write(d1.path().join("mydpfs/orphan-blob"), b"unreferenced").unwrap();
    std::fs::write(meta_dir.path().join("corrupt"), b"not a stub at all").unwrap();

    let report = tss_core::fsck(fs.stubfs()).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.healthy, vec!["/sub/good"]);
    assert_eq!(report.dangling_stubs, vec!["/doomed"]);
    assert_eq!(report.corrupt_stubs, vec!["/corrupt"]);
    assert_eq!(report.orphaned_data.len(), 1);
    assert!(report.orphaned_data[0].1.ends_with("orphan-blob"));
    assert!(report.unreachable.is_empty());

    let removed = tss_core::fsck::repair(
        fs.stubfs(),
        &report,
        tss_core::RepairOptions {
            remove_dangling_stubs: true,
            remove_orphans: true,
        },
    )
    .unwrap();
    assert_eq!(removed, 3);
    let clean = tss_core::fsck(fs.stubfs()).unwrap();
    assert!(clean.is_clean(), "{clean:?}");
    assert_eq!(clean.healthy, vec!["/sub/good"]);
    assert_eq!(fs.read_file("/sub/good").unwrap(), b"intact");
}

#[test]
fn fsck_reports_unreachable_without_condemning_data() {
    let meta_dir = TempDir::new();
    let d1 = TempDir::new();
    let d2 = TempDir::new();
    let mut s1 = open_server(d1.path());
    let s2 = open_server(d2.path());
    let fs = Dpfs::with_options(
        meta_dir.path(),
        data_pool(&[&s1, &s2]),
        Placement::round_robin(),
        StubFsOptions {
            timeout: std::time::Duration::from_millis(300),
            retry: tss_core::RetryPolicy::none(),
            ..StubFsOptions::default()
        },
    )
    .unwrap();
    fs.ensure_volumes().unwrap();
    fs.write_file("/on-s1", b"one").unwrap();
    fs.write_file("/on-s2", b"two").unwrap();
    // Kill s1 and re-attach with fresh connections, as a later fsck
    // run would.
    drop(fs);
    s1.shutdown();
    let fs = Dpfs::with_options(
        meta_dir.path(),
        data_pool(&[&s1, &s2]),
        Placement::round_robin(),
        StubFsOptions {
            timeout: std::time::Duration::from_millis(300),
            retry: tss_core::RetryPolicy::none(),
            ..StubFsOptions::default()
        },
    )
    .unwrap();

    let report = tss_core::fsck(fs.stubfs()).unwrap();
    assert_eq!(report.unreachable, vec!["/on-s1"]);
    assert_eq!(report.healthy, vec!["/on-s2"]);
    // Unreachable is not dangling: nothing to repair.
    assert!(report.dangling_stubs.is_empty());
}

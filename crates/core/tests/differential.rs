//! Differential property test: a DPFS (stub filesystem over live
//! Chirp servers) must be observationally equivalent to a plain local
//! filesystem under arbitrary operation sequences — the recursive
//! storage abstraction's core promise, checked by comparison against
//! `std::fs` as the reference model.

mod common;

use std::time::Duration;

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use common::{auth, cfs, open_server};
use faultline::{FaultAction, FaultPlan, FaultProxy, FaultRule, FaultTrigger};
use proptest::prelude::*;
use tss_core::fs::FileSystem;
use tss_core::stubfs::DataServer;
use tss_core::{Dpfs, LocalFs};

/// The operations the model covers.
#[derive(Debug, Clone)]
enum Op {
    Write(usize, Vec<u8>),
    Read(usize),
    Stat(usize),
    Unlink(usize),
    Rename(usize, usize),
    Mkdir(usize),
    Rmdir(usize),
    Readdir(usize),
    Truncate(usize, u64),
    ExclusiveCreate(usize),
}

/// A small closed set of paths so operations collide interestingly.
const PATHS: &[&str] = &[
    "/a",
    "/b",
    "/c.txt",
    "/dir",
    "/dir/inner",
    "/dir/other",
    "/dir2",
    "/dir2/deep",
];

fn op_strategy() -> impl Strategy<Value = Op> {
    let path = 0..PATHS.len();
    prop_oneof![
        (path.clone(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(p, d)| Op::Write(p, d)),
        path.clone().prop_map(Op::Read),
        path.clone().prop_map(Op::Stat),
        path.clone().prop_map(Op::Unlink),
        (path.clone(), 0..PATHS.len()).prop_map(|(a, b)| Op::Rename(a, b)),
        path.clone().prop_map(Op::Mkdir),
        path.clone().prop_map(Op::Rmdir),
        path.clone().prop_map(Op::Readdir),
        (path.clone(), 0u64..100).prop_map(|(p, s)| Op::Truncate(p, s)),
        path.prop_map(Op::ExclusiveCreate),
    ]
}

/// Outcome signature used for comparison: success payload or just
/// "failed" — exact error kinds may legitimately differ between a
/// local syscall and a two-layer distributed path, but success,
/// failure, and all visible state must agree.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Bytes(Option<Vec<u8>>),
    Size(Option<u64>),
    IsDir(Option<bool>),
    Names(Option<Vec<String>>),
    Unit(bool),
}

fn apply(fs: &dyn FileSystem, op: &Op) -> Outcome {
    match op {
        Op::Write(p, data) => Outcome::Unit(fs.write_file(PATHS[*p], data).is_ok()),
        Op::Read(p) => Outcome::Bytes(fs.read_file(PATHS[*p]).ok()),
        Op::Stat(p) => Outcome::IsDir(fs.stat(PATHS[*p]).ok().map(|s| s.is_dir())),
        Op::Unlink(p) => Outcome::Unit(fs.unlink(PATHS[*p]).is_ok()),
        Op::Rename(a, b) => Outcome::Unit(fs.rename(PATHS[*a], PATHS[*b]).is_ok()),
        Op::Mkdir(p) => Outcome::Unit(fs.mkdir(PATHS[*p], 0o755).is_ok()),
        Op::Rmdir(p) => Outcome::Unit(fs.rmdir(PATHS[*p]).is_ok()),
        Op::Readdir(p) => Outcome::Names(fs.readdir(PATHS[*p]).ok()),
        Op::Truncate(p, size) => Outcome::Unit(fs.truncate(PATHS[*p], *size).is_ok()),
        Op::ExclusiveCreate(p) => Outcome::Unit(
            fs.open(
                PATHS[*p],
                OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE,
                0o644,
            )
            .is_ok(),
        ),
    }
}

/// Walk every known path and capture all visible state.
fn snapshot(fs: &dyn FileSystem) -> Vec<(String, Outcome)> {
    let mut out = Vec::new();
    for p in PATHS {
        out.push((
            format!("stat {p}"),
            Outcome::IsDir(fs.stat(p).ok().map(|s| s.is_dir())),
        ));
        out.push((format!("read {p}"), Outcome::Bytes(fs.read_file(p).ok())));
        out.push((
            format!("size {p}"),
            Outcome::Size(fs.stat(p).ok().map(|s| s.size)),
        ));
        out.push((format!("ls {p}"), Outcome::Names(fs.readdir(p).ok())));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn dpfs_matches_the_local_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        // Reference: a plain local tree.
        let ref_dir = TempDir::new();
        let reference = LocalFs::new(ref_dir.path()).unwrap();
        // Subject: a DPFS over two live file servers.
        let meta_dir = TempDir::new();
        let d1 = TempDir::new();
        let d2 = TempDir::new();
        let s1 = open_server(d1.path());
        let s2 = open_server(d2.path());
        let pool = vec![
            DataServer::new(&s1.endpoint(), "/vol", auth()),
            DataServer::new(&s2.endpoint(), "/vol", auth()),
        ];
        let subject = Dpfs::new(meta_dir.path(), pool).unwrap();
        subject.ensure_volumes().unwrap();

        for (i, op) in ops.iter().enumerate() {
            let a = apply(&reference, op);
            let b = apply(&subject, op);
            prop_assert_eq!(a, b, "op {} = {:?} diverged", i, op);
        }
        let a = snapshot(&reference);
        let b = snapshot(&subject);
        prop_assert_eq!(a, b, "final state diverged");
    }
}

/// Idempotent subset of the model for the fault-proxied run: a fault
/// can fire *after* the server applied an operation, so a retried
/// non-idempotent op (exclusive create, unlink, rename) could
/// legitimately observe its own first attempt and diverge. Writes,
/// reads, stats, listings, and truncates replay to the same outcome.
fn idempotent_op_strategy() -> impl Strategy<Value = Op> {
    let path = 0..PATHS.len();
    prop_oneof![
        (path.clone(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(p, d)| Op::Write(p, d)),
        path.clone().prop_map(Op::Read),
        path.clone().prop_map(Op::Stat),
        path.clone().prop_map(Op::Readdir),
        (path, 0u64..100).prop_map(|(p, s)| Op::Truncate(p, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn fault_proxied_cfs_matches_the_local_reference_model(
        ops in proptest::collection::vec(idempotent_op_strategy(), 1..24),
        plan_seed in any::<u64>(),
    ) {
        // Reference: a plain local tree, no network at all.
        let ref_dir = TempDir::new();
        let reference = LocalFs::new(ref_dir.path()).unwrap();
        // Subject: a CFS whose connection runs through a fault proxy
        // injecting recoverable faults — corrupted replies and delays.
        // The recovery layer must make the trace indistinguishable
        // from the fault-free reference.
        let host = TempDir::new();
        let server = open_server(host.path());
        let plan = FaultPlan::new(plan_seed)
            .with_rule(
                FaultRule::new(FaultTrigger::Probability(0.08), FaultAction::CorruptReply)
                    .max_fires(4),
            )
            .with_rule(
                FaultRule::new(
                    FaultTrigger::Probability(0.05),
                    FaultAction::Delay(Duration::from_millis(2)),
                )
                .max_fires(8),
            );
        let proxy = FaultProxy::spawn(&server.endpoint(), plan).unwrap();
        let subject = cfs(&proxy.addr());

        for (i, op) in ops.iter().enumerate() {
            let a = apply(&reference, op);
            let b = apply(&subject, op);
            prop_assert_eq!(a, b, "op {} = {:?} diverged", i, op);
        }
        let a = snapshot(&reference);
        let b = snapshot(&subject);
        prop_assert_eq!(a, b, "final state diverged");
    }
}

//! Adapter recovery semantics (paper §6): reconnection with backoff,
//! transparent re-open, inode verification, stale handles, and the
//! retry cap — exercised through a severable TCP proxy between client
//! and server.

mod common;

use std::time::Duration;

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use common::proxy::FlakyProxy;
use common::{auth, open_server};
use tss_core::cfs::{Cfs, CfsConfig, RetryPolicy};
use tss_core::fs::FileSystem;
use tss_core::stubfs::{DataServer, StubFsOptions};
use tss_core::ServerPool;

fn recovering_cfs(endpoint: &str) -> Cfs {
    let mut cfg = CfsConfig::new(endpoint, auth());
    cfg.timeout = Duration::from_millis(1500);
    cfg.retry = RetryPolicy {
        max_retries: 6,
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
        ..RetryPolicy::default()
    };
    Cfs::new(cfg)
}

#[test]
fn pathless_ops_reconnect_transparently() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let proxy = FlakyProxy::start(server.addr());
    let fs = recovering_cfs(&proxy.endpoint());
    fs.write_file("/f", b"v1").unwrap();
    proxy.drop_connections();
    // The next operation sees a dead connection, reconnects, and
    // succeeds without the caller noticing.
    assert_eq!(fs.read_file("/f").unwrap(), b"v1");
}

#[test]
fn open_handles_survive_reconnection_when_inode_is_unchanged() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let proxy = FlakyProxy::start(server.addr());
    let fs = recovering_cfs(&proxy.endpoint());
    fs.write_file("/f", b"0123456789").unwrap();
    let mut h = fs.open("/f", OpenFlags::READ, 0).unwrap();
    let mut buf = [0u8; 5];
    assert_eq!(h.pread(&mut buf, 0).unwrap(), 5);

    proxy.drop_connections();

    // The server closed our descriptor when the connection dropped;
    // the adapter reconnects, re-opens, verifies the inode, and hides
    // the change in the underlying file descriptor.
    assert_eq!(h.pread(&mut buf, 5).unwrap(), 5);
    assert_eq!(&buf, b"56789");
}

#[test]
fn replaced_file_becomes_a_stale_handle() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let proxy = FlakyProxy::start(server.addr());
    let fs = recovering_cfs(&proxy.endpoint());
    fs.write_file("/f", b"original").unwrap();
    let mut h = fs.open("/f", OpenFlags::READ, 0).unwrap();
    let mut buf = [0u8; 8];
    h.pread(&mut buf, 0).unwrap();

    // Replace the file while the client is disconnected: same name,
    // different inode. (Renaming the original aside, rather than
    // unlinking it, keeps its inode allocated so the replacement is
    // guaranteed a different one.)
    proxy.drop_connections();
    fs.rename("/f", "/f-old").unwrap();
    fs.write_file("/f", b"replaced").unwrap();

    let err = h.pread(&mut buf, 0).expect_err("stale handle");
    // "the client receives a 'stale file handle' error as in NFS."
    assert!(err.to_string().contains("stale"), "got: {err}");
}

#[test]
fn deleted_file_becomes_a_stale_handle() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let proxy = FlakyProxy::start(server.addr());
    let fs = recovering_cfs(&proxy.endpoint());
    fs.write_file("/f", b"original").unwrap();
    let mut h = fs.open("/f", OpenFlags::READ, 0).unwrap();
    proxy.drop_connections();
    fs.unlink("/f").unwrap();
    let mut buf = [0u8; 4];
    assert!(h.pread(&mut buf, 0).is_err());
}

#[test]
fn retry_cap_limits_recovery_attempts() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let proxy = FlakyProxy::start(server.addr());
    let mut cfg = CfsConfig::new(&proxy.endpoint(), auth());
    cfg.timeout = Duration::from_millis(300);
    cfg.retry = RetryPolicy {
        max_retries: 2,
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let fs = Cfs::new(cfg);
    fs.write_file("/f", b"x").unwrap();
    // Sever and refuse further connections: retries must give up.
    proxy.set_target(None);
    proxy.drop_connections();
    let start = std::time::Instant::now();
    assert!(fs.read_file("/f").is_err());
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "bounded retries must fail promptly"
    );
}

#[test]
fn no_retry_policy_fails_on_first_break() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let proxy = FlakyProxy::start(server.addr());
    let mut cfg = CfsConfig::new(&proxy.endpoint(), auth());
    cfg.timeout = Duration::from_millis(300);
    cfg.retry = RetryPolicy::none();
    let fs = Cfs::new(cfg);
    fs.write_file("/f", b"x").unwrap();
    proxy.drop_connections();
    assert!(fs.read_file("/f").is_err());
    // But a fresh operation after the failure reconnects lazily.
    assert_eq!(fs.read_file("/f").unwrap(), b"x");
}

#[test]
fn server_restart_does_not_hand_out_stale_pool_sockets() {
    // Regression: a pooled connection that sat idle across a server
    // restart leads to a dead peer. With `max_idle` elapsed the entry
    // is evicted at checkout and a fresh connection is dialed — even
    // under a no-retry policy that would otherwise surface the stale
    // socket as an immediate error.
    let dir = TempDir::new();
    let mut server = open_server(dir.path());
    let proxy = FlakyProxy::start(server.addr());
    let endpoint = proxy.endpoint();
    let options = StubFsOptions {
        timeout: Duration::from_millis(1500),
        retry: RetryPolicy::none(),
        max_idle: Duration::from_millis(40),
        ..StubFsOptions::default()
    };
    let pool = ServerPool::new(vec![DataServer::new(&endpoint, "/vol", auth())], options);
    pool.with_conn(&endpoint, |cfs| cfs.write_file("/f", b"v1"))
        .unwrap();
    assert_eq!(pool.idle_count(&endpoint), 1);

    // Restart the server: the cached socket's peer is gone.
    server.shutdown();
    drop(server);
    let server2 = open_server(dir.path());
    proxy.set_target(Some(server2.addr()));
    proxy.drop_connections();
    std::thread::sleep(Duration::from_millis(60));

    assert_eq!(
        pool.with_conn(&endpoint, |cfs| cfs.read_file("/f"))
            .unwrap(),
        b"v1"
    );
    let stats = pool.stats();
    assert_eq!(stats.evictions, 1, "aged entry evicted, not handed out");
    assert_eq!(stats.misses, 2, "second checkout dialed fresh");
}

#[test]
fn recovery_reaches_a_restarted_server() {
    // The failure mode the paper's grid users actually hit: the
    // server process is restarted elsewhere and the client's retries
    // land on the new instance.
    let dir = TempDir::new();
    let mut server = open_server(dir.path());
    let proxy = FlakyProxy::start(server.addr());
    let fs = recovering_cfs(&proxy.endpoint());
    fs.write_file("/f", b"before").unwrap();

    server.shutdown();
    drop(server);
    let server2 = open_server(dir.path());
    proxy.set_target(Some(server2.addr()));
    proxy.drop_connections();

    assert_eq!(fs.read_file("/f").unwrap(), b"before");
    fs.write_file("/g", b"after").unwrap();
    assert_eq!(fs.read_file("/g").unwrap(), b"after");
}

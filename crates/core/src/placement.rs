//! Data placement for distributed filesystems: which server receives a
//! newly created file, and how data file names are made unique.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::RngCore;

/// Policy for choosing the server of a new file.
#[derive(Debug)]
pub enum Placement {
    /// Cycle through the servers in order (balanced under uniform
    /// file sizes; deterministic for tests).
    RoundRobin(AtomicUsize),
    /// Pick uniformly at random (the paper's clients select servers
    /// randomly; robust to correlated create bursts).
    Random,
}

impl Placement {
    /// A fresh round-robin policy.
    pub fn round_robin() -> Placement {
        Placement::RoundRobin(AtomicUsize::new(0))
    }

    /// Choose a server index out of `n`.
    pub fn choose(&self, n: usize) -> usize {
        assert!(n > 0, "placement over an empty server set");
        match self {
            Placement::RoundRobin(next) => next.fetch_add(1, Ordering::Relaxed) % n,
            Placement::Random => (rand::thread_rng().next_u64() % n as u64) as usize,
        }
    }
}

/// Generate a unique data file name.
///
/// The paper derives uniqueness from the client's IP address, the
/// current time, and a random number; collisions are additionally
/// caught by the exclusive-open create protocol, so this only needs to
/// make them rare.
pub fn unique_data_name() -> String {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let r = rand::thread_rng().next_u64();
    format!("file-{now:x}-{r:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_robin_cycles() {
        let p = Placement::round_robin();
        let picks: Vec<usize> = (0..6).map(|_| p.choose(3)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_stays_in_range() {
        let p = Placement::Random;
        for _ in 0..100 {
            assert!(p.choose(4) < 4);
        }
    }

    #[test]
    fn random_covers_all_servers_eventually() {
        let p = Placement::Random;
        let seen: HashSet<usize> = (0..200).map(|_| p.choose(4)).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn unique_names_do_not_collide() {
        let names: HashSet<String> = (0..1000).map(|_| unique_data_name()).collect();
        assert_eq!(names.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "empty server set")]
    fn empty_set_panics() {
        Placement::Random.choose(0);
    }
}

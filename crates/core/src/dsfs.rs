//! DSFS — the *distributed shared filesystem*.
//!
//! Identical to [`crate::Dpfs`] except that the directory tree itself
//! is stored **on a file server**, so multiple clients can access the
//! tree and follow pointers to file data on multiple servers. A single
//! server might be dedicated to the directory role, or serve double
//! duty as both directory and data server — under the recursive
//! storage abstraction any server can act in either role.
//!
//! There is no caching anywhere, so there are no coherence problems;
//! the synchronization issues that remain (create/delete ordering,
//! dangling stubs) are handled by the shared engine in
//! [`crate::stubfs`].

use std::io;
use std::sync::Arc;

use chirp_client::AuthMethod;

use crate::cfs::{Cfs, CfsConfig};
use crate::placement::Placement;
use crate::stubfs::{delegate_filesystem, DataServer, StubFs, StubFsOptions};

/// A distributed shared filesystem.
pub struct Dsfs {
    inner: StubFs,
}

impl Dsfs {
    /// Attach to a DSFS whose directory tree lives on the file server
    /// `meta_endpoint` under `meta_volume`, with data spread over
    /// `pool`.
    pub fn new(
        meta_endpoint: &str,
        meta_volume: &str,
        meta_auth: Vec<AuthMethod>,
        pool: Vec<DataServer>,
    ) -> io::Result<Dsfs> {
        Dsfs::with_options(
            meta_endpoint,
            meta_volume,
            meta_auth,
            pool,
            Placement::round_robin(),
            StubFsOptions::default(),
        )
    }

    /// Full-control constructor.
    pub fn with_options(
        meta_endpoint: &str,
        meta_volume: &str,
        meta_auth: Vec<AuthMethod>,
        pool: Vec<DataServer>,
        placement: Placement,
        options: StubFsOptions,
    ) -> io::Result<Dsfs> {
        let mut cfg = CfsConfig::new(meta_endpoint, meta_auth).with_base(meta_volume);
        cfg.timeout = options.timeout;
        cfg.retry = options.retry;
        // The directory connection rides the same transport and clock
        // as the data pool, so a DSFS assembled over an in-memory
        // network (or behind a fault-injecting dialer) has no hidden
        // TCP dependence through its metadata path.
        cfg.dialer = options.dialer.clone();
        cfg.clock = options.clock.clone();
        cfg.pipeline_depth = options.pipeline_depth;
        let meta = Arc::new(Cfs::new(cfg));
        Ok(Dsfs {
            inner: StubFs::new(meta, pool, placement, options),
        })
    }

    /// Create the directory volume and every pool volume, making a
    /// fresh filesystem ready for use.
    pub fn format(
        meta_endpoint: &str,
        meta_volume: &str,
        meta_auth: Vec<AuthMethod>,
        pool: Vec<DataServer>,
    ) -> io::Result<Dsfs> {
        Dsfs::format_with_options(
            meta_endpoint,
            meta_volume,
            meta_auth,
            pool,
            Placement::round_robin(),
            StubFsOptions::default(),
        )
    }

    /// [`Dsfs::format`] with full control over placement and transport
    /// (timeouts, retry policy, dialer, clock).
    pub fn format_with_options(
        meta_endpoint: &str,
        meta_volume: &str,
        meta_auth: Vec<AuthMethod>,
        pool: Vec<DataServer>,
        placement: Placement,
        options: StubFsOptions,
    ) -> io::Result<Dsfs> {
        // The directory volume is itself created through the ordinary
        // file interface of the directory server.
        let mut root_cfg = CfsConfig::new(meta_endpoint, meta_auth.clone());
        root_cfg.timeout = options.timeout;
        root_cfg.retry = options.retry;
        root_cfg.dialer = options.dialer.clone();
        root_cfg.clock = options.clock.clone();
        let root = Cfs::new(root_cfg);
        match crate::fs::FileSystem::mkdir(&root, meta_volume, 0o755) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
            Err(e) => return Err(e),
        }
        let fs = Dsfs::with_options(
            meta_endpoint,
            meta_volume,
            meta_auth,
            pool,
            placement,
            options,
        )?;
        fs.inner.ensure_volumes()?;
        Ok(fs)
    }

    /// The underlying stub engine.
    pub fn stubfs(&self) -> &StubFs {
        &self.inner
    }
}

delegate_filesystem!(Dsfs, inner);

//! DSFS — the *distributed shared filesystem*.
//!
//! Identical to [`crate::Dpfs`] except that the directory tree itself
//! is stored **on a file server**, so multiple clients can access the
//! tree and follow pointers to file data on multiple servers. A single
//! server might be dedicated to the directory role, or serve double
//! duty as both directory and data server — under the recursive
//! storage abstraction any server can act in either role.
//!
//! There is no caching anywhere, so there are no coherence problems;
//! the synchronization issues that remain (create/delete ordering,
//! dangling stubs) are handled by the shared engine in
//! [`crate::stubfs`].

use std::io;
use std::sync::Arc;

use chirp_client::AuthMethod;

use crate::cfs::{Cfs, CfsConfig};
use crate::placement::Placement;
use crate::stubfs::{delegate_filesystem, DataServer, StubFs, StubFsOptions};

/// A distributed shared filesystem.
pub struct Dsfs {
    inner: StubFs,
}

impl Dsfs {
    /// Attach to a DSFS whose directory tree lives on the file server
    /// `meta_endpoint` under `meta_volume`, with data spread over
    /// `pool`.
    pub fn new(
        meta_endpoint: &str,
        meta_volume: &str,
        meta_auth: Vec<AuthMethod>,
        pool: Vec<DataServer>,
    ) -> io::Result<Dsfs> {
        Dsfs::with_options(
            meta_endpoint,
            meta_volume,
            meta_auth,
            pool,
            Placement::round_robin(),
            StubFsOptions::default(),
        )
    }

    /// Full-control constructor.
    pub fn with_options(
        meta_endpoint: &str,
        meta_volume: &str,
        meta_auth: Vec<AuthMethod>,
        pool: Vec<DataServer>,
        placement: Placement,
        options: StubFsOptions,
    ) -> io::Result<Dsfs> {
        let mut cfg = CfsConfig::new(meta_endpoint, meta_auth).with_base(meta_volume);
        cfg.timeout = options.timeout;
        cfg.retry = options.retry;
        let meta = Arc::new(Cfs::new(cfg));
        Ok(Dsfs {
            inner: StubFs::new(meta, pool, placement, options),
        })
    }

    /// Create the directory volume and every pool volume, making a
    /// fresh filesystem ready for use.
    pub fn format(
        meta_endpoint: &str,
        meta_volume: &str,
        meta_auth: Vec<AuthMethod>,
        pool: Vec<DataServer>,
    ) -> io::Result<Dsfs> {
        // The directory volume is itself created through the ordinary
        // file interface of the directory server.
        let root = Cfs::new(CfsConfig::new(meta_endpoint, meta_auth.clone()));
        match crate::fs::FileSystem::mkdir(&root, meta_volume, 0o755) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
            Err(e) => return Err(e),
        }
        let fs = Dsfs::new(meta_endpoint, meta_volume, meta_auth, pool)?;
        fs.inner.ensure_volumes()?;
        Ok(fs)
    }

    /// The underlying stub engine.
    pub fn stubfs(&self) -> &StubFs {
        &self.inner
    }
}

delegate_filesystem!(Dsfs, inner);

//! The stub-filesystem engine shared by DPFS and DSFS.
//!
//! A `StubFs` is a directory tree held in a *metadata filesystem* plus
//! file data spread over a pool of Chirp *data servers*. Thanks to the
//! recursive storage abstraction, the metadata filesystem is just
//! another [`FileSystem`]: a local directory gives the distributed
//! **private** filesystem (DPFS), a CFS on some server gives the
//! distributed **shared** filesystem (DSFS) — the engine cannot tell
//! the difference, which is exactly the paper's point.
//!
//! ## The create/delete protocol (paper §5)
//!
//! File creation:
//! 1. a file server is chosen and a unique data file name generated;
//! 2. the stub entry is created in the directory tree with an
//!    *exclusive open*, so a name collision between two processes
//!    aborts one of them;
//! 3. the data file is created on the file server.
//!
//! A crash between 2 and 3 leaves a dangling stub — opening it says
//! "file not found" — which is preferred to the alternative of
//! unreferenced data. Deletion runs the other way (data first, then
//! stub) for the same reason.
//!
//! ## Failure coherence
//!
//! Losing a data server makes only the files on that server
//! unavailable; the directory tree stays navigable and every other
//! file keeps working. Tests pin this property down.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use chirp_client::AuthMethod;
use chirp_proto::persist::Persist;
use chirp_proto::transport::Dialer;
use chirp_proto::{Clock, OpenFlags, StatBuf};

use crate::cfs::RetryPolicy;
use crate::fs::{FileHandle, FileSystem};
use crate::placement::Placement;
use crate::pool::{PooledConn, ServerPool};
use crate::protocol::{CreateTxn, DeleteTxn, Placed, StubLive};
use crate::stub::Stub;

/// One data server in the pool new files may be placed on.
#[derive(Debug, Clone)]
pub struct DataServer {
    /// Endpoint, `host:port`.
    pub endpoint: String,
    /// Server-side directory that holds this filesystem's data files.
    pub volume: String,
    /// Authentication offered to this server.
    pub auth: Vec<AuthMethod>,
}

impl DataServer {
    /// Describe a data server.
    pub fn new(endpoint: &str, volume: &str, auth: Vec<AuthMethod>) -> DataServer {
        DataServer {
            endpoint: endpoint.to_string(),
            volume: crate::fs::normalize_path(volume),
            auth,
        }
    }
}

/// Options shared by every connection a `StubFs` makes.
#[derive(Debug, Clone)]
pub struct StubFsOptions {
    /// Network timeout per operation.
    pub timeout: Duration,
    /// Recovery policy for data connections.
    pub retry: RetryPolicy,
    /// Idle connections cached per endpoint by the server pool.
    /// Checked-out connections are not bounded by this — it caps only
    /// what is kept warm for reuse. Minimum effective value is 1.
    pub max_conns_per_endpoint: usize,
    /// Fan multi-server operations (striped reads/writes, mirror
    /// writes, replica deletes) out over scoped threads instead of
    /// looping over servers one at a time.
    pub parallel_fanout: bool,
    /// Per-handle read-ahead window in bytes for sequential reads over
    /// a data connection; `0` (the default) disables client-side
    /// buffering entirely, preserving the no-caching coherence story.
    pub readahead: usize,
    /// Pipeline depth for data connections (see
    /// [`crate::cfs::CfsConfig::pipeline_depth`]); with a readahead
    /// window this turns sequential reads into deferred prefetches
    /// that overlap server service with client consumption.
    pub pipeline_depth: usize,
    /// Maximum time a connection may sit idle in the pool before it is
    /// evicted instead of handed out. A long-idle socket to a server
    /// that has restarted looks healthy until the first RPC fails, so
    /// aging them out trades a cheap reconnect for a guaranteed-fresh
    /// stream.
    pub max_idle: Duration,
    /// Consecutive endpoint failures that open that endpoint's circuit
    /// breaker. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects an endpoint before allowing a
    /// half-open probe.
    pub breaker_cooldown: Duration,
    /// How data connections are opened: real TCP by default, the
    /// in-memory network under the simulation harness.
    pub dialer: Dialer,
    /// The clock idle aging, breaker cooldowns, and recovery backoff
    /// are measured on. Wall time by default; virtual under
    /// simulation, making every timing decision deterministic.
    pub clock: Clock,
    /// Durability-point observer for the stub protocol itself (see
    /// [`chirp_proto::persist`]): each protocol step announces itself
    /// before touching the tree or a data server, so the crash harness
    /// can kill the client between any two steps.
    pub persist: Persist,
}

impl Default for StubFsOptions {
    fn default() -> StubFsOptions {
        StubFsOptions {
            timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            max_conns_per_endpoint: 4,
            parallel_fanout: true,
            readahead: 0,
            pipeline_depth: chirp_proto::DEFAULT_PIPELINE_DEPTH,
            max_idle: Duration::from_secs(60),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(2),
            dialer: Dialer::tcp(),
            clock: Clock::wall(),
            persist: Persist::none(),
        }
    }
}

/// A distributed filesystem: metadata tree + pooled data servers.
pub struct StubFs {
    pub(crate) meta: Arc<dyn FileSystem>,
    pub(crate) pool: ServerPool,
    pub(crate) placement: Placement,
    pub(crate) persist: Persist,
}

impl StubFs {
    /// Build a stub filesystem over `meta` with the given data pool.
    pub fn new(
        meta: Arc<dyn FileSystem>,
        pool: Vec<DataServer>,
        placement: Placement,
        options: StubFsOptions,
    ) -> StubFs {
        let persist = options.persist.clone();
        StubFs {
            meta,
            pool: ServerPool::new(pool, options),
            placement,
            persist,
        }
    }

    /// The metadata filesystem.
    pub fn meta(&self) -> &Arc<dyn FileSystem> {
        &self.meta
    }

    /// The data pool.
    pub fn pool(&self) -> &[DataServer] {
        self.pool.servers()
    }

    /// Create each pool server's volume directory if missing.
    pub fn ensure_volumes(&self) -> io::Result<()> {
        self.pool.ensure_volumes()
    }

    /// A pooled connection to a data endpoint (used by maintenance
    /// tools such as [`crate::fsck`]); returns to the pool on drop.
    pub fn data_conn(&self, endpoint: &str) -> io::Result<PooledConn> {
        Ok(self.pool.checkout(endpoint))
    }

    /// A snapshot of the data-connection pool counters.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    pub(crate) fn read_stub(&self, path: &str) -> io::Result<Stub> {
        let text = self.meta.read_file(path)?;
        if text.is_empty() {
            // A zero-length stub is the signature of a create that
            // crashed between the entry's creation and the stub write:
            // nothing references any data yet, so the paper's mandated
            // answer for a dangling entry applies.
            return Err(io::Error::new(io::ErrorKind::NotFound, "file not found"));
        }
        let text = String::from_utf8(text)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stub is not utf-8"))?;
        Stub::parse(&text)
    }

    /// Start the create protocol for `path` (paper §5): the returned
    /// transaction has chosen a server and a unique data name but made
    /// nothing durable. The type system forces the remaining steps
    /// into the crash-safe order — see [`crate::protocol`].
    pub fn begin_create(&self, path: &str) -> io::Result<CreateTxn<'_, Placed>> {
        CreateTxn::begin(self, path)
    }

    /// Start the delete protocol for `path`: reads the live stub. The
    /// type system forces data-then-stub removal — see
    /// [`crate::protocol`].
    pub fn begin_delete(&self, path: &str) -> io::Result<DeleteTxn<'_, StubLive>> {
        DeleteTxn::begin(self, path)
    }

    /// The create protocol: place, stub (exclusive), then data file,
    /// driven through the typestate transaction so the order is
    /// compiler-checked.
    fn create_file(
        &self,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> io::Result<Box<dyn FileHandle>> {
        self.begin_create(path)?
            .write_stub()?
            .create_data(flags, mode)
    }

    fn open_existing(
        &self,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> io::Result<Box<dyn FileHandle>> {
        let stub = self.read_stub(path)?;
        // CREATE must not apply to the data path of an existing stub —
        // the stub's existence already answered the create question.
        let mut data_flags = OpenFlags::empty();
        for f in [
            OpenFlags::READ,
            OpenFlags::WRITE,
            OpenFlags::TRUNCATE,
            OpenFlags::APPEND,
            OpenFlags::SYNC,
        ] {
            if flags.contains(f) {
                data_flags |= f;
            }
        }
        match self
            .pool
            .open(&stub.endpoint, &stub.data_path, data_flags, mode)
        {
            Ok(h) => Ok(h),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // Dangling stub: data lost or create crashed between
                // steps 2 and 3. The paper's mandated answer:
                Err(io::Error::new(io::ErrorKind::NotFound, "file not found"))
            }
            Err(e) => Err(e),
        }
    }
}

impl FileSystem for StubFs {
    fn open(&self, path: &str, flags: OpenFlags, mode: u32) -> io::Result<Box<dyn FileHandle>> {
        if flags.contains(OpenFlags::CREATE) {
            match self.create_file(path, flags, mode) {
                Ok(h) => return Ok(h),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if flags.contains(OpenFlags::EXCLUSIVE) {
                        return Err(e);
                    }
                    // Fall through: open the existing file.
                }
                Err(e) => return Err(e),
            }
        }
        self.open_existing(path, flags, mode)
    }

    fn stat(&self, path: &str) -> io::Result<StatBuf> {
        // One round trip to the directory tree for the stub, one to
        // the data server for the attributes — the "twice the latency
        // for metadata operations" of Figure 4.
        match self.read_stub(path) {
            Ok(stub) => self
                .pool
                .with_conn(&stub.endpoint, |cfs| cfs.stat(&stub.data_path)),
            // Directories exist only in the tree.
            Err(e) if e.kind() == io::ErrorKind::IsADirectory => self.meta.stat(path),
            Err(e) => Err(e),
        }
    }

    fn unlink(&self, path: &str) -> io::Result<()> {
        // Data first, then stub, so no unreferenced data survives —
        // the order is compiler-checked (see `crate::protocol`).
        self.begin_delete(path)?.unlink_data()?.unlink_stub()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        // Name-only operation: the directory tree alone changes; no
        // file server is contacted.
        self.meta.rename(from, to)
    }

    fn mkdir(&self, path: &str, mode: u32) -> io::Result<()> {
        self.meta.mkdir(path, mode)
    }

    fn rmdir(&self, path: &str) -> io::Result<()> {
        self.meta.rmdir(path)
    }

    fn readdir(&self, path: &str) -> io::Result<Vec<String>> {
        self.meta.readdir(path)
    }

    fn truncate(&self, path: &str, size: u64) -> io::Result<()> {
        let stub = self.read_stub(path)?;
        self.pool
            .with_conn(&stub.endpoint, |cfs| cfs.truncate(&stub.data_path, size))
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        // Directories exist only in the tree.
        self.meta.sync_dir(path)
    }

    /// The recursive-stub hot path, batched: one listing-with-stats of
    /// the directory tree tells files from subdirectories, then each
    /// file's stub is resolved and the data-server attributes arrive
    /// as one `STATMULTI` per endpoint — a constant number of data
    /// round trips per server instead of one per entry. Entries whose
    /// stub dangles (create crashed between stub and data file) are
    /// omitted, matching the "file not found" their open would report.
    fn readdir_stat(&self, path: &str) -> io::Result<Vec<(String, StatBuf)>> {
        let base = crate::fs::normalize_path(path);
        let child = |name: &str| {
            if base == "/" {
                format!("/{name}")
            } else {
                format!("{base}/{name}")
            }
        };
        let listed = self.meta.readdir_stat(path)?;
        let mut out: Vec<Option<(String, StatBuf)>> = Vec::with_capacity(listed.len());
        // endpoint -> (slot in `out`, data path) for every stub entry.
        let mut groups: Vec<(String, Vec<(usize, String)>)> = Vec::new();
        for (name, meta_stat) in listed {
            if meta_stat.is_dir() {
                // Directories exist only in the tree.
                out.push(Some((name, meta_stat)));
                continue;
            }
            let stub = match self.read_stub(&child(&name)) {
                Ok(stub) => stub,
                // A zero-length stub (create crashed before the stub
                // write) is omitted, like any other dangling entry.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let slot = out.len();
            out.push(Some((name, meta_stat)));
            match groups.iter_mut().find(|(e, _)| *e == stub.endpoint) {
                Some((_, members)) => members.push((slot, stub.data_path)),
                None => groups.push((stub.endpoint, vec![(slot, stub.data_path)])),
            }
        }
        for (endpoint, members) in groups {
            let paths: Vec<String> = members.iter().map(|(_, p)| p.clone()).collect();
            let verdicts = self
                .pool
                .with_conn(&endpoint, |cfs| cfs.stat_multi(&paths))?;
            for ((slot, _), verdict) in members.into_iter().zip(verdicts) {
                match verdict {
                    Ok(st) => {
                        out[slot].as_mut().expect("slot filled above").1 = st;
                    }
                    Err(e) if io::Error::from(e).kind() == io::ErrorKind::NotFound => {
                        out[slot] = None; // dangling stub
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Ok(out.into_iter().flatten().collect())
    }
}

/// Implement [`FileSystem`] by delegating every method to a field.
/// Used by the `Dpfs`/`Dsfs` wrappers, which add only construction and
/// documentation on top of [`StubFs`].
macro_rules! delegate_filesystem {
    ($outer:ty, $field:ident) => {
        impl crate::fs::FileSystem for $outer {
            fn open(
                &self,
                path: &str,
                flags: chirp_proto::OpenFlags,
                mode: u32,
            ) -> std::io::Result<Box<dyn crate::fs::FileHandle>> {
                self.$field.open(path, flags, mode)
            }
            fn stat(&self, path: &str) -> std::io::Result<chirp_proto::StatBuf> {
                self.$field.stat(path)
            }
            fn unlink(&self, path: &str) -> std::io::Result<()> {
                self.$field.unlink(path)
            }
            fn rename(&self, from: &str, to: &str) -> std::io::Result<()> {
                self.$field.rename(from, to)
            }
            fn mkdir(&self, path: &str, mode: u32) -> std::io::Result<()> {
                self.$field.mkdir(path, mode)
            }
            fn rmdir(&self, path: &str) -> std::io::Result<()> {
                self.$field.rmdir(path)
            }
            fn readdir(&self, path: &str) -> std::io::Result<Vec<String>> {
                self.$field.readdir(path)
            }
            fn truncate(&self, path: &str, size: u64) -> std::io::Result<()> {
                self.$field.truncate(path, size)
            }
            fn sync_dir(&self, path: &str) -> std::io::Result<()> {
                self.$field.sync_dir(path)
            }
            fn readdir_stat(
                &self,
                path: &str,
            ) -> std::io::Result<Vec<(String, chirp_proto::StatBuf)>> {
                self.$field.readdir_stat(path)
            }
        }
    };
}
pub(crate) use delegate_filesystem;

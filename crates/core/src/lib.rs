//! `tss-core` — the TSS *abstraction layer* and the Parrot-style
//! adapter.
//!
//! A tactical storage system separates **resources** (Chirp file
//! servers, discovered through catalogs) from **abstractions** that
//! users build on them without any administrator involvement:
//!
//! * [`LocalFs`] — the plain host filesystem ("Unix" in the paper's
//!   evaluation).
//! * [`Cfs`] — the *central filesystem*: untranslated access to a
//!   single file server, with grid security and Unix-like consistency
//!   (no caching, no buffering).
//! * [`Dpfs`] — the *distributed private filesystem*: one user's
//!   directory tree on local disk, file data spread over many servers
//!   through stub files.
//! * [`Dsfs`] — the *distributed shared filesystem*: the same layout
//!   with the directory tree itself stored on a file server, so many
//!   clients can share it.
//! * [`StripedFs`] / [`MirroredFs`] — the conclusion's suggested
//!   extensions: transparent striping for bandwidth and transparent
//!   replication for fault tolerance, built with zero new server code.
//! * [`adapter::Adapter`] — connects applications to any of the above
//!   through one namespace (`/cfs/host:port/...`, mountlists,
//!   transparent reconnection, `O_SYNC` policy).
//!
//! Everything implements the same [`FileSystem`] trait — the paper's
//! *recursive storage abstraction*: one Unix-like interface at every
//! layer, so abstractions compose and any server can serve as data
//! node, directory node, or both.

#![warn(missing_docs)]

pub mod adapter;
pub mod backup;
pub mod cfs;
pub mod discovery;
pub mod dpfs;
pub mod dsfs;
mod fanout;
pub mod fs;
pub mod fsck;
pub mod localfs;
pub mod mirrored;
pub mod placement;
pub mod pool;
pub mod protocol;
pub mod striped;
pub mod stub;
pub mod stubfs;

pub use adapter::{Adapter, AdapterConfig, Namespace};
pub use backup::BackupVault;
pub use cfs::{Cfs, CfsConfig, RetryPolicy};
pub use discovery::{discover_pool, PoolPolicy};
pub use dpfs::Dpfs;
pub use dsfs::Dsfs;
pub use fs::{FileHandle, FileSystem, OpenedFile};
pub use fsck::{fsck, fsck_striped, repair_striped, FsckReport, RepairOptions};
pub use localfs::LocalFs;
pub use mirrored::MirroredFs;
pub use placement::Placement;
pub use pool::{PoolStats, PooledConn, ServerPool};
pub use protocol::{CreateTxn, DeleteTxn};
pub use striped::StripedFs;
pub use stubfs::{DataServer, StubFs, StubFsOptions};

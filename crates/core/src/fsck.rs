//! `fsck` for stub filesystems: find and repair the two inconsistent
//! states the DSFS create/delete protocol can leave behind (§5).
//!
//! * **Dangling stubs** — a crash between stub creation and data
//!   creation, or data forcibly evicted by a server owner. The paper:
//!   "an attempt to open such a file yields 'file not found' ... and
//!   is easily deleted by a user." `repair` does that deletion.
//! * **Orphaned data** — data files in a pool volume that no stub
//!   references. The create protocol's ordering makes these impossible
//!   under crashes, but a deleted *tree* (or a pool shared by a
//!   retired filesystem) leaves them; the paper notes the remaining
//!   portions are "stored in distinguishable directories on each of
//!   the file servers, allowing for either manual recovery or complete
//!   removal."

use std::collections::{HashMap, HashSet};
use std::io;

use crate::fs::FileSystem;
use crate::striped::{StripeLayout, StripedFs};
use crate::stub::Stub;
use crate::stubfs::StubFs;

/// What a scan found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Logical files whose stub parsed and whose data exists.
    pub healthy: Vec<String>,
    /// Logical paths whose stub points at missing data.
    pub dangling_stubs: Vec<String>,
    /// Logical paths holding unparseable stub files.
    pub corrupt_stubs: Vec<String>,
    /// `(endpoint, data path)` of pool data no stub references.
    pub orphaned_data: Vec<(String, String)>,
    /// Logical paths whose data server could not be reached; nothing
    /// is concluded about them (failure coherence: unreachable is not
    /// lost).
    pub unreachable: Vec<String>,
}

impl FsckReport {
    /// True when nothing needs attention.
    pub fn is_clean(&self) -> bool {
        self.dangling_stubs.is_empty()
            && self.corrupt_stubs.is_empty()
            && self.orphaned_data.is_empty()
    }
}

/// Scan a stub filesystem: walk the directory tree, verify every
/// stub's data, and cross-check the pool volumes for orphans.
pub fn fsck(fs: &StubFs) -> io::Result<FsckReport> {
    let mut report = FsckReport::default();
    // Referenced data paths per endpoint.
    let mut referenced: HashMap<String, HashSet<String>> = HashMap::new();

    let meta = fs.meta().clone();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        for name in meta.readdir(&dir)? {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            let st = meta.stat(&path)?;
            if st.is_dir() {
                stack.push(path);
                continue;
            }
            let body = meta.read_file(&path)?;
            if body.is_empty() {
                // A zero-length stub is a create that crashed before
                // the stub write: nothing references data, so it is a
                // dangling entry, not corruption.
                report.dangling_stubs.push(path);
                continue;
            }
            let Ok(text) = String::from_utf8(body) else {
                report.corrupt_stubs.push(path);
                continue;
            };
            let Ok(stub) = Stub::parse(&text) else {
                report.corrupt_stubs.push(path);
                continue;
            };
            referenced
                .entry(stub.endpoint.clone())
                .or_default()
                .insert(stub.data_path.clone());
            let conn = fs.data_conn(&stub.endpoint)?;
            match conn.stat(&stub.data_path) {
                Ok(_) => report.healthy.push(path),
                Err(e) if e.kind() == io::ErrorKind::NotFound => report.dangling_stubs.push(path),
                Err(_) => report.unreachable.push(path),
            }
        }
    }

    // Orphans: pool volume contents minus everything referenced.
    for server in fs.pool() {
        let conn = fs.data_conn(&server.endpoint)?;
        let names = match conn.readdir(&server.volume) {
            Ok(n) => n,
            Err(_) => continue, // unreachable server: no conclusions
        };
        let refs = referenced.get(&server.endpoint);
        for name in names {
            let data_path = format!("{}/{name}", server.volume);
            if refs.is_none_or(|r| !r.contains(&data_path)) {
                report
                    .orphaned_data
                    .push((server.endpoint.clone(), data_path));
            }
        }
    }
    report.healthy.sort();
    report.dangling_stubs.sort();
    report.corrupt_stubs.sort();
    report.orphaned_data.sort();
    report.unreachable.sort();
    Ok(report)
}

/// Scan a striped filesystem: walk the stub tree, verify every part
/// of every layout, and cross-check the pool volumes for orphans.
///
/// Classification per logical file: an unparseable or torn stripe stub
/// is corrupt; a parsed layout with any part missing is dangling (the
/// create protocol writes the stub before the parts, so a crash leaves
/// exactly this); a layout whose parts all answer is healthy. A part
/// whose server cannot be reached concludes nothing (failure
/// coherence: unreachable is not lost).
pub fn fsck_striped(fs: &StripedFs) -> io::Result<FsckReport> {
    let mut report = FsckReport::default();
    let mut referenced: HashMap<String, HashSet<String>> = HashMap::new();

    let meta = fs.meta().clone();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        for name in meta.readdir(&dir)? {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            let st = meta.stat(&path)?;
            if st.is_dir() {
                stack.push(path);
                continue;
            }
            let body = meta.read_file(&path)?;
            if body.is_empty() {
                report.dangling_stubs.push(path);
                continue;
            }
            let Ok(text) = String::from_utf8(body) else {
                report.corrupt_stubs.push(path);
                continue;
            };
            let Ok(layout) = StripeLayout::parse(&text) else {
                report.corrupt_stubs.push(path);
                continue;
            };
            let mut missing = false;
            let mut unreachable = false;
            for (endpoint, part) in &layout.parts {
                referenced
                    .entry(endpoint.clone())
                    .or_default()
                    .insert(part.clone());
                let conn = fs.data_conn(endpoint)?;
                match conn.stat(part) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => missing = true,
                    Err(_) => unreachable = true,
                }
            }
            if unreachable {
                report.unreachable.push(path);
            } else if missing {
                report.dangling_stubs.push(path);
            } else {
                report.healthy.push(path);
            }
        }
    }

    for server in fs.pool() {
        let conn = fs.data_conn(&server.endpoint)?;
        let names = match conn.readdir(&server.volume) {
            Ok(n) => n,
            Err(_) => continue, // unreachable server: no conclusions
        };
        let refs = referenced.get(&server.endpoint);
        for name in names {
            let data_path = format!("{}/{name}", server.volume);
            if refs.is_none_or(|r| !r.contains(&data_path)) {
                report
                    .orphaned_data
                    .push((server.endpoint.clone(), data_path));
            }
        }
    }
    report.healthy.sort();
    report.dangling_stubs.sort();
    report.corrupt_stubs.sort();
    report.orphaned_data.sort();
    report.unreachable.sort();
    Ok(report)
}

/// Repair options for [`repair`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairOptions {
    /// Delete dangling and corrupt stubs from the tree.
    pub remove_dangling_stubs: bool,
    /// Delete unreferenced data from the pool volumes ("complete
    /// removal"). Off by default: orphans may belong to another
    /// filesystem sharing the volume.
    pub remove_orphans: bool,
}

/// Apply repairs for the problems a scan reported. Returns the number
/// of items removed.
pub fn repair(fs: &StubFs, report: &FsckReport, options: RepairOptions) -> io::Result<u64> {
    let mut removed = 0;
    if options.remove_dangling_stubs {
        for path in report.dangling_stubs.iter().chain(&report.corrupt_stubs) {
            fs.meta().unlink(path)?;
            removed += 1;
        }
    }
    if options.remove_orphans {
        for (endpoint, data_path) in &report.orphaned_data {
            let conn = fs.data_conn(endpoint)?;
            match conn.unlink(data_path) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(removed)
}

/// [`repair`] for striped filesystems. Removing a dangling or corrupt
/// stripe stub surfaces its surviving parts as orphans on the *next*
/// scan (the removed stub no longer references them), so a full clean
/// takes at most two scan/repair rounds — callers should iterate
/// `fsck_striped` → `repair_striped` to a fixed point.
pub fn repair_striped(
    fs: &StripedFs,
    report: &FsckReport,
    options: RepairOptions,
) -> io::Result<u64> {
    let mut removed = 0;
    if options.remove_dangling_stubs {
        for path in report.dangling_stubs.iter().chain(&report.corrupt_stubs) {
            fs.meta().unlink(path)?;
            removed += 1;
        }
    }
    if options.remove_orphans {
        for (endpoint, data_path) in &report.orphaned_data {
            let conn = fs.data_conn(endpoint)?;
            match conn.unlink(data_path) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(removed)
}

//! The recursive storage abstraction: one Unix-like filesystem
//! interface implemented by every layer of the system.
//!
//! Resources (file servers) export it, abstractions (CFS, DPFS, DSFS)
//! implement it *on top of* resources, and the adapter presents it to
//! applications. Because the interface is the same at every level, an
//! abstraction can be stacked on any other — the property the paper
//! calls *recursive storage abstraction*.

use std::io;

use chirp_proto::{OpenFlags, StatBuf};

/// An open file within some abstraction.
///
/// All I/O is positional (`pread`/`pwrite`), mirroring the Chirp
/// protocol; cursor-style access is layered on by [`OpenedFile`].
pub trait FileHandle: Send {
    /// Read up to `buf.len()` bytes at `offset`; short only at EOF.
    fn pread(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize>;
    /// Write the whole buffer at `offset`.
    fn pwrite(&mut self, buf: &[u8], offset: u64) -> io::Result<usize>;
    /// Attributes of the open file.
    fn fstat(&mut self) -> io::Result<StatBuf>;
    /// Flush to stable storage.
    fn fsync(&mut self) -> io::Result<()>;
    /// Truncate to `size`.
    fn ftruncate(&mut self, size: u64) -> io::Result<()>;
}

/// A filesystem abstraction: the Unix interface of §2.
///
/// Implementations use interior mutability (`&self` methods) so one
/// abstraction can be shared by many application threads, as a real
/// kernel filesystem would be.
pub trait FileSystem: Send + Sync {
    /// Open a file, creating it if `flags` say so.
    fn open(&self, path: &str, flags: OpenFlags, mode: u32) -> io::Result<Box<dyn FileHandle>>;
    /// Attributes by path.
    fn stat(&self, path: &str) -> io::Result<StatBuf>;
    /// Remove a file.
    fn unlink(&self, path: &str) -> io::Result<()>;
    /// Atomic rename.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Create a directory.
    fn mkdir(&self, path: &str, mode: u32) -> io::Result<()>;
    /// Remove an empty directory.
    fn rmdir(&self, path: &str) -> io::Result<()>;
    /// List a directory.
    fn readdir(&self, path: &str) -> io::Result<Vec<String>>;
    /// Truncate by path.
    fn truncate(&self, path: &str, size: u64) -> io::Result<()>;

    /// Flush a directory's entry list to stable storage, so entries
    /// created (or removed) inside it survive a crash. The default is
    /// a no-op: remote abstractions delegate durability to the far
    /// side, and only stores backed directly by a host filesystem
    /// (see [`crate::LocalFs`]) have a real directory to sync.
    fn sync_dir(&self, path: &str) -> io::Result<()> {
        let _ = path;
        Ok(())
    }

    /// Read a whole file (convenience built on open/pread).
    fn read_file(&self, path: &str) -> io::Result<Vec<u8>> {
        let mut h = self.open(path, OpenFlags::READ, 0)?;
        let size = h.fstat()?.size as usize;
        let mut out = vec![0u8; size];
        let mut filled = 0;
        while filled < out.len() {
            let n = h.pread(&mut out[filled..], filled as u64)?;
            if n == 0 {
                out.truncate(filled);
                break;
            }
            filled += n;
        }
        Ok(out)
    }

    /// List a directory with each entry's attributes. The default
    /// stats entry by entry; abstractions whose protocol has a batched
    /// listing (CFS → `GETDIRSTAT`, DSFS → stub resolution over
    /// `STATMULTI`) override it to answer in a constant number of
    /// round trips instead of one per entry.
    fn readdir_stat(&self, path: &str) -> io::Result<Vec<(String, StatBuf)>> {
        let base = normalize_path(path);
        self.readdir(path)?
            .into_iter()
            .map(|name| {
                let p = if base == "/" {
                    format!("/{name}")
                } else {
                    format!("{base}/{name}")
                };
                let st = self.stat(&p)?;
                Ok((name, st))
            })
            .collect()
    }

    /// Create/replace a whole file (convenience built on open/pwrite).
    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let mut h = self.open(
            path,
            OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::TRUNCATE,
            0o644,
        )?;
        let mut written = 0;
        while written < data.len() {
            let n = h.pwrite(&data[written..], written as u64)?;
            if n == 0 {
                return Err(io::ErrorKind::WriteZero.into());
            }
            written += n;
        }
        Ok(())
    }
}

/// Cursor-style access over a positional [`FileHandle`], for
/// applications written against `read`/`write`/`seek`.
pub struct OpenedFile {
    handle: Box<dyn FileHandle>,
    offset: u64,
}

impl OpenedFile {
    /// Wrap a positional handle with a cursor at offset zero.
    pub fn new(handle: Box<dyn FileHandle>) -> OpenedFile {
        OpenedFile { handle, offset: 0 }
    }

    /// The underlying positional handle.
    pub fn handle_mut(&mut self) -> &mut dyn FileHandle {
        self.handle.as_mut()
    }

    /// Current cursor position.
    pub fn position(&self) -> u64 {
        self.offset
    }

    /// Attributes of the open file.
    pub fn fstat(&mut self) -> io::Result<StatBuf> {
        self.handle.fstat()
    }

    /// Flush to stable storage.
    pub fn fsync(&mut self) -> io::Result<()> {
        self.handle.fsync()
    }
}

impl io::Read for OpenedFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.handle.pread(buf, self.offset)?;
        self.offset += n as u64;
        Ok(n)
    }
}

impl io::Write for OpenedFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.handle.pwrite(buf, self.offset)?;
        self.offset += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl io::Seek for OpenedFile {
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        let new = match pos {
            io::SeekFrom::Start(o) => o as i64,
            io::SeekFrom::Current(d) => self.offset as i64 + d,
            io::SeekFrom::End(d) => self.handle.fstat()?.size as i64 + d,
        };
        if new < 0 {
            return Err(io::ErrorKind::InvalidInput.into());
        }
        self.offset = new as u64;
        Ok(self.offset)
    }
}

/// Normalize an abstraction path: leading `/`, `.`/`..` resolved,
/// no trailing slash. Abstractions call this so path identity is
/// consistent across layers.
pub fn normalize_path(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            c => parts.push(c),
        }
    }
    if parts.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", parts.join("/"))
    }
}

/// Split a normalized path into `(parent, leaf)`; `None` for the root.
pub fn split_parent(path: &str) -> Option<(String, String)> {
    let norm = normalize_path(path);
    if norm == "/" {
        return None;
    }
    let idx = norm.rfind('/').expect("normalized path has a slash");
    let parent = if idx == 0 { "/" } else { &norm[..idx] };
    Some((parent.to_string(), norm[idx + 1..].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses() {
        assert_eq!(normalize_path("/a//b/./c/../d"), "/a/b/d");
        assert_eq!(normalize_path(""), "/");
        assert_eq!(normalize_path("/.."), "/");
        assert_eq!(normalize_path("a/b"), "/a/b");
    }

    #[test]
    fn split_parent_handles_depths() {
        assert_eq!(split_parent("/a"), Some(("/".into(), "a".into())));
        assert_eq!(split_parent("/a/b/c"), Some(("/a/b".into(), "c".into())));
        assert_eq!(split_parent("/"), None);
    }
}

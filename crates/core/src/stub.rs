//! Stub files: the pointers a distributed filesystem's directory tree
//! keeps in place of file data.
//!
//! Where a DPFS/DSFS directory structure indicates a file, it actually
//! contains a small *stub* naming the file server and the server-side
//! path holding the data, e.g. `/paper.txt` → `host5:9094`,
//! `/mydpfs/file596`. Name-only operations (`rename`, `mkdir`) touch
//! only stubs; data operations follow the pointer.

use std::io;

/// A parsed stub: where the file's data actually lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stub {
    /// File server endpoint, `host:port`.
    pub endpoint: String,
    /// Absolute server-side path of the data file.
    pub data_path: String,
}

/// First line of every stub file; versioned so layouts can evolve.
pub const STUB_MAGIC: &str = "#tss-stub-v1";

impl Stub {
    /// Render to the on-disk stub format.
    pub fn render(&self) -> String {
        format!("{STUB_MAGIC}\n{}\n{}\n", self.endpoint, self.data_path)
    }

    /// Parse a stub file's contents.
    ///
    /// Strict: the final newline is part of the format. A torn write
    /// that truncates a stub mid-line would otherwise parse "healthy"
    /// with a wrong (prefix) data path — silently pointing at data
    /// that does not exist. Requiring the terminator makes every
    /// strict prefix of a rendered stub invalid.
    pub fn parse(text: &str) -> io::Result<Stub> {
        if !text.ends_with('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stub truncated (missing final newline)",
            ));
        }
        let mut lines = text.lines();
        if lines.next() != Some(STUB_MAGIC) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a TSS stub file",
            ));
        }
        let endpoint = lines
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "stub missing endpoint"))?;
        let data_path = lines
            .next()
            .filter(|s| s.starts_with('/'))
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "stub missing data path"))?;
        Ok(Stub {
            endpoint: endpoint.to_string(),
            data_path: data_path.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip() {
        let s = Stub {
            endpoint: "host5:9094".into(),
            data_path: "/mydpfs/file596".into(),
        };
        assert_eq!(Stub::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn rejects_non_stubs() {
        assert!(Stub::parse("").is_err());
        assert!(Stub::parse("hello world").is_err());
        assert!(Stub::parse("#tss-stub-v1\n").is_err());
        assert!(Stub::parse("#tss-stub-v1\nhost:1\nrelative/path\n").is_err());
        // Regular file contents must never parse as a stub.
        assert!(Stub::parse("The quick brown fox\njumps over\n/the lazy dog\n").is_err());
    }

    #[test]
    fn every_torn_prefix_is_invalid() {
        // A crash mid-write leaves a strict prefix of the rendered
        // stub; none may parse (a prefix data path would silently
        // point at the wrong data).
        let full = Stub {
            endpoint: "host5:9094".into(),
            data_path: "/mydpfs/file596".into(),
        }
        .render();
        for k in 0..full.len() {
            if full.is_char_boundary(k) {
                assert!(
                    Stub::parse(&full[..k]).is_err(),
                    "torn prefix of {k} bytes parsed as healthy"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn round_trip_any(
            host in "[a-z0-9.]{1,20}",
            port in 1u16..,
            path in "(/[a-zA-Z0-9._-]{1,12}){1,4}",
        ) {
            let s = Stub { endpoint: format!("{host}:{port}"), data_path: path };
            prop_assert_eq!(Stub::parse(&s.render()).unwrap(), s);
        }
    }
}

//! Distributed backups — the conclusion's closing application: "a TSS
//! is a natural platform for distributed backups, allowing cooperating
//! users to easily record many backup images, thus allowing for
//! on-line perusal, recovery, and forensic analysis of data over
//! time."
//!
//! A [`BackupVault`] lives inside *any* [`FileSystem`] — a CFS on a
//! friend's workstation, a DSFS across a department, a mirrored pool —
//! because it needs nothing beyond the recursive Unix interface:
//!
//! ```text
//! <root>/objects/<crc64>      content-addressed blobs, deduplicated
//! <root>/images/<seq>-<label> one manifest per backup image
//! ```
//!
//! Manifests are published with an atomic `rename`, so a reader never
//! sees a half-written image (the same exclusive-rename discipline the
//! DSFS create protocol uses — one more payoff of recursive
//! abstractions). Unchanged files across images share their blobs, so
//! "many backup images" cost little more than one.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::fs::FileSystem;

/// One recorded backup image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageInfo {
    /// Directory name under `images/`: `<seq>-<label>`.
    pub name: String,
    /// Monotonic sequence number.
    pub seq: u64,
    /// User label.
    pub label: String,
    /// Files recorded.
    pub file_count: u64,
    /// Total logical bytes (before deduplication).
    pub total_bytes: u64,
}

/// One manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    /// Path relative to the backup source.
    path: String,
    /// CRC-64 of the contents = object name.
    checksum: u64,
    /// Size in bytes.
    size: u64,
}

/// A backup vault inside some storage abstraction.
pub struct BackupVault {
    fs: Arc<dyn FileSystem>,
    root: String,
}

impl BackupVault {
    /// Open (creating if needed) a vault at `root` on `fs`.
    pub fn open(fs: Arc<dyn FileSystem>, root: &str) -> io::Result<BackupVault> {
        let root = crate::fs::normalize_path(root);
        let vault = BackupVault { fs, root };
        // Create the root's ancestors too, so a vault can live at any
        // depth of a fresh server.
        let mut dirs: Vec<String> = Vec::new();
        let mut prefix = String::new();
        for comp in vault.root.split('/').filter(|c| !c.is_empty()) {
            prefix = format!("{prefix}/{comp}");
            dirs.push(prefix.clone());
        }
        dirs.push(vault.path("objects"));
        dirs.push(vault.path("images"));
        for dir in dirs {
            match vault.fs.mkdir(&dir, 0o755) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
                Err(e) => return Err(e),
            }
        }
        Ok(vault)
    }

    fn path(&self, rest: &str) -> String {
        if self.root == "/" {
            format!("/{rest}")
        } else {
            format!("{}/{rest}", self.root)
        }
    }

    fn object_path(&self, checksum: u64) -> String {
        self.path(&format!("objects/{checksum:016x}"))
    }

    /// Record a backup image of the local directory `source`.
    ///
    /// Only blobs not already present are uploaded; the manifest is
    /// staged under a temporary name and atomically renamed into
    /// place.
    pub fn backup(&self, source: &Path, label: &str) -> io::Result<ImageInfo> {
        if label.is_empty() || label.contains('/') || label.contains('-') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "label must be nonempty without '/' or '-'",
            ));
        }
        let mut entries = Vec::new();
        let mut stack = vec![PathBuf::new()];
        while let Some(rel_dir) = stack.pop() {
            let host_dir = source.join(&rel_dir);
            let mut names: Vec<_> = std::fs::read_dir(&host_dir)?.collect::<Result<Vec<_>, _>>()?;
            names.sort_by_key(|e| e.file_name());
            for entry in names {
                let meta = entry.metadata()?;
                let rel = rel_dir.join(entry.file_name());
                if meta.is_dir() {
                    stack.push(rel);
                } else if meta.is_file() {
                    let data = std::fs::read(entry.path())?;
                    let checksum = chirp_proto::crc64(&data);
                    let object = self.object_path(checksum);
                    // Content addressing makes dedup a stat.
                    if self.fs.stat(&object).is_err() {
                        self.fs.write_file(&object, &data)?;
                    }
                    entries.push(ManifestEntry {
                        path: rel.to_string_lossy().replace('\\', "/"),
                        checksum,
                        size: data.len() as u64,
                    });
                }
            }
        }
        let seq = self
            .images()?
            .iter()
            .map(|i| i.seq)
            .max()
            .map_or(1, |s| s + 1);
        let name = format!("{seq:08}-{label}");
        let mut manifest = String::new();
        for e in &entries {
            manifest.push_str(&format!(
                "{} {:016x} {}\n",
                chirp_proto::escape::escape(e.path.as_bytes()),
                e.checksum,
                e.size
            ));
        }
        // Stage, then atomically publish.
        let tmp = self.path(&format!(
            "images/.staging-{}",
            crate::placement::unique_data_name()
        ));
        self.fs.write_file(&tmp, manifest.as_bytes())?;
        self.fs
            .rename(&tmp, &self.path(&format!("images/{name}")))?;
        Ok(ImageInfo {
            name,
            seq,
            label: label.to_string(),
            file_count: entries.len() as u64,
            total_bytes: entries.iter().map(|e| e.size).sum(),
        })
    }

    /// All published images, oldest first. Staging files are invisible.
    pub fn images(&self) -> io::Result<Vec<ImageInfo>> {
        let mut out = Vec::new();
        for name in self.fs.readdir(&self.path("images"))? {
            let Some((seq, label)) = name.split_once('-') else {
                continue; // staging or foreign file
            };
            let Ok(seq) = seq.parse::<u64>() else {
                continue;
            };
            let entries = self.manifest(&name)?;
            out.push(ImageInfo {
                name: name.clone(),
                seq,
                label: label.to_string(),
                file_count: entries.len() as u64,
                total_bytes: entries.iter().map(|e| e.size).sum(),
            });
        }
        out.sort_by_key(|i| i.seq);
        Ok(out)
    }

    fn manifest(&self, image: &str) -> io::Result<Vec<ManifestEntry>> {
        let body = self.fs.read_file(&self.path(&format!("images/{image}")))?;
        let text = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "manifest not utf-8"))?;
        let bad = || io::Error::new(io::ErrorKind::InvalidData, "bad manifest line");
        text.lines()
            .map(|line| {
                let mut w = line.split(' ');
                let path = w
                    .next()
                    .and_then(chirp_proto::escape::unescape)
                    .and_then(|b| String::from_utf8(b).ok())
                    .ok_or_else(bad)?;
                let checksum =
                    u64::from_str_radix(w.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
                let size = w.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                Ok(ManifestEntry {
                    path,
                    checksum,
                    size,
                })
            })
            .collect()
    }

    /// On-line perusal: list an image's files.
    pub fn list_image(&self, image: &str) -> io::Result<Vec<(String, u64)>> {
        Ok(self
            .manifest(image)?
            .into_iter()
            .map(|e| (e.path, e.size))
            .collect())
    }

    /// On-line perusal: read one file out of one image, verified.
    pub fn read_file(&self, image: &str, path: &str) -> io::Result<Vec<u8>> {
        let entry = self
            .manifest(image)?
            .into_iter()
            .find(|e| e.path == path)
            .ok_or_else(|| io::Error::from(io::ErrorKind::NotFound))?;
        let data = self.fs.read_file(&self.object_path(entry.checksum))?;
        if chirp_proto::crc64(&data) != entry.checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "backup object corrupted",
            ));
        }
        Ok(data)
    }

    /// Recovery: materialize a whole image into the local `dest`.
    pub fn restore(&self, image: &str, dest: &Path) -> io::Result<u64> {
        let entries = self.manifest(image)?;
        for e in &entries {
            let target = dest.join(&e.path);
            if let Some(parent) = target.parent() {
                std::fs::create_dir_all(parent)?;
            }
            let data = self.read_file(image, &e.path)?;
            std::fs::write(target, data)?;
        }
        Ok(entries.len() as u64)
    }

    /// Drop the oldest images, keeping `keep_last`, and garbage-collect
    /// blobs no surviving image references. Returns
    /// `(images_removed, objects_removed)`.
    pub fn prune(&self, keep_last: usize) -> io::Result<(u64, u64)> {
        let images = self.images()?;
        let cut = images.len().saturating_sub(keep_last);
        let (doomed, kept) = images.split_at(cut);
        // Referenced set from surviving manifests.
        let mut live = std::collections::HashSet::new();
        for image in kept {
            for e in self.manifest(&image.name)? {
                live.insert(e.checksum);
            }
        }
        for image in doomed {
            self.fs
                .unlink(&self.path(&format!("images/{}", image.name)))?;
        }
        let mut objects_removed = 0;
        for name in self.fs.readdir(&self.path("objects"))? {
            let Ok(sum) = u64::from_str_radix(&name, 16) else {
                continue;
            };
            if !live.contains(&sum) {
                self.fs.unlink(&self.path(&format!("objects/{name}")))?;
                objects_removed += 1;
            }
        }
        Ok((doomed.len() as u64, objects_removed))
    }

    /// Bytes of blob storage currently used (post-dedup).
    pub fn stored_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for name in self.fs.readdir(&self.path("objects"))? {
            total += self.fs.stat(&self.path(&format!("objects/{name}")))?.size;
        }
        Ok(total)
    }
}

//! The adapter: transparently connecting applications to abstractions.
//!
//! In the original system this is Parrot, which traps system calls
//! through the kernel debugging interface so *unmodified binaries* see
//! the TSS namespace. Reimplementing ptrace interposition is
//! Linux-debug-API plumbing orthogonal to the paper's claims, so here
//! the adapter is a library-level virtual filesystem exposing the same
//! behavior (see DESIGN.md §4):
//!
//! * each abstraction appears as a new top-level entry in one
//!   directory hierarchy — `/cfs/host:port/...`, `/local/...` — with
//!   the second-level name identifying a host or volume;
//! * a **mountlist** creates a private namespace by mapping logical
//!   names to abstraction paths, e.g.
//!   `/usr/local  /cfs/shared.cse.nd.edu:9094/software`;
//! * connection recovery (exponential backoff, re-open, inode check,
//!   stale handles) is inherited from [`crate::Cfs`], and the
//!   synchronous-write switch transparently ORs `O_SYNC` into every
//!   open.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use chirp_client::AuthMethod;
use chirp_proto::transport::Dialer;
use chirp_proto::{Clock, OpenFlags, StatBuf};
use parking_lot::Mutex;

use crate::cfs::{Cfs, CfsConfig, RetryPolicy};
use crate::fs::{normalize_path, FileHandle, FileSystem, OpenedFile};
use crate::localfs::LocalFs;

/// Adapter-wide options.
#[derive(Debug, Clone)]
pub struct AdapterConfig {
    /// Authentication methods offered to every file server.
    pub auth: Vec<AuthMethod>,
    /// Per-operation network timeout.
    pub timeout: Duration,
    /// Reconnection policy ("users may place an upper limit on these
    /// retries with a command-line argument").
    pub retry: RetryPolicy,
    /// The synchronous-write switch: append `O_SYNC` to all opens.
    pub sync_writes: bool,
    /// Transport used for every connection the adapter opens (TCP in
    /// production; an in-memory or fault-injecting dialer in tests).
    pub dialer: Dialer,
    /// Clock charged for retry backoff and pool timing.
    pub clock: Clock,
}

impl Default for AdapterConfig {
    fn default() -> AdapterConfig {
        AdapterConfig {
            auth: vec![AuthMethod::Hostname],
            timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            sync_writes: false,
            dialer: Dialer::tcp(),
            clock: Clock::wall(),
        }
    }
}

/// A mount table mapping logical path prefixes to abstraction paths.
///
/// Longest-prefix match wins, so `/usr/local/bin` can be remapped
/// separately from `/usr/local`.
#[derive(Debug, Clone, Default)]
pub struct Namespace {
    mounts: Vec<(String, String)>,
}

impl Namespace {
    /// An empty namespace (only the built-in `/cfs`, `/local` roots).
    pub fn new() -> Namespace {
        Namespace::default()
    }

    /// Add one mapping from a logical prefix to a target prefix.
    pub fn mount(&mut self, logical: &str, target: &str) {
        self.mounts
            .push((normalize_path(logical), normalize_path(target)));
        // Longest prefix first.
        self.mounts
            .sort_by_key(|(prefix, _)| std::cmp::Reverse(prefix.len()));
    }

    /// Parse the mountlist file format: two whitespace-separated
    /// columns per line, `#` comments.
    ///
    /// ```text
    /// /usr/local   /cfs/shared.cse.nd.edu:9094/software
    /// /data        /dsfs/archive.cse.nd.edu:9094@run5/data
    /// ```
    pub fn parse_mountlist(text: &str) -> io::Result<Namespace> {
        let mut ns = Namespace::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split_whitespace();
            let (Some(logical), Some(target), None) = (cols.next(), cols.next(), cols.next())
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("mountlist line {}: expected two columns", i + 1),
                ));
            };
            ns.mount(logical, target);
        }
        Ok(ns)
    }

    /// Rewrite a logical path through the mount table (one level of
    /// remapping, longest prefix wins, untouched if nothing matches).
    pub fn translate(&self, path: &str) -> String {
        let norm = normalize_path(path);
        for (prefix, target) in &self.mounts {
            if let Some(rest) = strip_prefix(&norm, prefix) {
                return if rest.is_empty() {
                    target.clone()
                } else {
                    format!("{}{}", target, rest)
                };
            }
        }
        norm
    }
}

fn strip_prefix<'a>(path: &'a str, prefix: &str) -> Option<&'a str> {
    if prefix == "/" {
        return Some(path.strip_prefix('/').map(|_| path).unwrap_or(path));
    }
    let rest = path.strip_prefix(prefix)?;
    if rest.is_empty() || rest.starts_with('/') {
        Some(rest)
    } else {
        None
    }
}

/// A named abstraction registered under `/<scheme>/<name>/...`.
type MountedFs = Arc<dyn FileSystem>;

/// The adapter: one namespace over every reachable abstraction.
pub struct Adapter {
    config: AdapterConfig,
    namespace: Namespace,
    /// `/cfs/<endpoint>` mounts, created on demand and cached so all
    /// opens share one connection per server.
    cfs_cache: Mutex<HashMap<String, MountedFs>>,
    /// Explicitly registered filesystems: `/<name>/...`.
    registered: Mutex<HashMap<String, MountedFs>>,
    /// Root for `/local`.
    local: MountedFs,
}

impl Adapter {
    /// An adapter with the given options and an empty mount table.
    pub fn new(config: AdapterConfig) -> io::Result<Adapter> {
        Ok(Adapter {
            config,
            namespace: Namespace::new(),
            cfs_cache: Mutex::new(HashMap::new()),
            registered: Mutex::new(HashMap::new()),
            local: Arc::new(LocalFs::new("/")?),
        })
    }

    /// Replace the namespace (mountlist).
    pub fn set_namespace(&mut self, ns: Namespace) {
        self.namespace = ns;
    }

    /// The active namespace.
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Register an abstraction under a top-level name, e.g.
    /// `register("dsfs/archive:9094@run5", fs)` serves
    /// `/dsfs/archive:9094@run5/...`.
    pub fn register(&self, name: &str, fs: Arc<dyn FileSystem>) {
        self.registered.lock().insert(normalize_path(name), fs);
    }

    /// Mount a DSFS under the paper's `/dsfs/<host:port>@<volume>`
    /// convention: directory tree on `dir_endpoint` under `volume`,
    /// new data placed on `pool`. Returns the mount root so callers
    /// can build mountlist targets against it.
    pub fn mount_dsfs(
        &self,
        dir_endpoint: &str,
        volume: &str,
        pool: Vec<crate::stubfs::DataServer>,
    ) -> io::Result<String> {
        let options = crate::stubfs::StubFsOptions {
            timeout: self.config.timeout,
            retry: self.config.retry,
            dialer: self.config.dialer.clone(),
            clock: self.config.clock.clone(),
            ..crate::stubfs::StubFsOptions::default()
        };
        let fs = crate::Dsfs::with_options(
            dir_endpoint,
            volume,
            self.config.auth.clone(),
            pool,
            crate::Placement::round_robin(),
            options,
        )?;
        let name = format!("/dsfs/{dir_endpoint}@{}", volume.trim_start_matches('/'));
        self.register(&name, Arc::new(fs));
        Ok(name)
    }

    /// Resolve a logical path to `(filesystem, fs-relative path)`.
    pub fn resolve(&self, path: &str) -> io::Result<(MountedFs, String)> {
        let translated = self.namespace.translate(path);
        // Registered abstractions take priority (longest name first).
        {
            let registered = self.registered.lock();
            let mut names: Vec<&String> = registered.keys().collect();
            names.sort_by_key(|name| std::cmp::Reverse(name.len()));
            for name in names {
                if let Some(rest) = strip_prefix(&translated, name) {
                    let rest = if rest.is_empty() { "/" } else { rest };
                    return Ok((registered[name].clone(), rest.to_string()));
                }
            }
        }
        if let Some(rest) = strip_prefix(&translated, "/cfs") {
            let rest = rest.trim_start_matches('/');
            let (endpoint, sub) = rest.split_once('/').unwrap_or((rest, ""));
            if endpoint.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "path /cfs requires a host:port component",
                ));
            }
            let fs = self.cfs_for(endpoint);
            return Ok((fs, format!("/{sub}")));
        }
        if let Some(rest) = strip_prefix(&translated, "/local") {
            let rest = if rest.is_empty() { "/" } else { rest };
            return Ok((self.local.clone(), rest.to_string()));
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no abstraction serves {translated}"),
        ))
    }

    fn cfs_for(&self, endpoint: &str) -> MountedFs {
        let mut cache = self.cfs_cache.lock();
        cache
            .entry(endpoint.to_string())
            .or_insert_with(|| {
                let mut cfg = CfsConfig::new(endpoint, self.config.auth.clone());
                cfg.timeout = self.config.timeout;
                cfg.retry = self.config.retry;
                cfg.sync_writes = self.config.sync_writes;
                cfg.dialer = self.config.dialer.clone();
                cfg.clock = self.config.clock.clone();
                Arc::new(Cfs::new(cfg))
            })
            .clone()
    }

    // ---- the POSIX-like surface an application sees -----------------------

    /// Open a file anywhere in the namespace; returns a cursor-style
    /// file.
    pub fn open(&self, path: &str, flags: OpenFlags, mode: u32) -> io::Result<OpenedFile> {
        let mut flags = flags;
        if self.config.sync_writes {
            flags |= OpenFlags::SYNC;
        }
        let (fs, rel) = self.resolve(path)?;
        Ok(OpenedFile::new(fs.open(&rel, flags, mode)?))
    }

    /// Positional open (no cursor), for callers managing offsets.
    pub fn open_handle(
        &self,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> io::Result<Box<dyn FileHandle>> {
        let mut flags = flags;
        if self.config.sync_writes {
            flags |= OpenFlags::SYNC;
        }
        let (fs, rel) = self.resolve(path)?;
        fs.open(&rel, flags, mode)
    }

    /// `stat` through the namespace.
    pub fn stat(&self, path: &str) -> io::Result<StatBuf> {
        let (fs, rel) = self.resolve(path)?;
        fs.stat(&rel)
    }

    /// Remove a file.
    pub fn unlink(&self, path: &str) -> io::Result<()> {
        let (fs, rel) = self.resolve(path)?;
        fs.unlink(&rel)
    }

    /// Rename within one abstraction. Renames across abstractions are
    /// rejected like cross-device renames in Unix.
    pub fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let (fs_a, rel_a) = self.resolve(from)?;
        let (fs_b, rel_b) = self.resolve(to)?;
        if !Arc::ptr_eq(&fs_a, &fs_b) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "rename across abstractions (EXDEV)",
            ));
        }
        fs_a.rename(&rel_a, &rel_b)
    }

    /// Create a directory.
    pub fn mkdir(&self, path: &str, mode: u32) -> io::Result<()> {
        let (fs, rel) = self.resolve(path)?;
        fs.mkdir(&rel, mode)
    }

    /// Remove an empty directory.
    pub fn rmdir(&self, path: &str) -> io::Result<()> {
        let (fs, rel) = self.resolve(path)?;
        fs.rmdir(&rel)
    }

    /// List a directory.
    pub fn readdir(&self, path: &str) -> io::Result<Vec<String>> {
        let (fs, rel) = self.resolve(path)?;
        fs.readdir(&rel)
    }

    /// Truncate by path.
    pub fn truncate(&self, path: &str, size: u64) -> io::Result<()> {
        let (fs, rel) = self.resolve(path)?;
        fs.truncate(&rel, size)
    }

    /// Read a whole file.
    pub fn read_file(&self, path: &str) -> io::Result<Vec<u8>> {
        let (fs, rel) = self.resolve(path)?;
        fs.read_file(&rel)
    }

    /// Create/replace a whole file.
    pub fn write_file(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let (fs, rel) = self.resolve(path)?;
        fs.write_file(&rel, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mountlist_parses_the_paper_example() {
        let ns = Namespace::parse_mountlist(
            "# example from section 6\n\
             /usr/local /cfs/shared.cse.nd.edu:9094/software\n\
             /data      /dsfs/archive.cse.nd.edu:9094@run5/data\n",
        )
        .unwrap();
        assert_eq!(
            ns.translate("/usr/local/lib/libfoo.so"),
            "/cfs/shared.cse.nd.edu:9094/software/lib/libfoo.so"
        );
        assert_eq!(
            ns.translate("/data/events.db"),
            "/dsfs/archive.cse.nd.edu:9094@run5/data/events.db"
        );
        assert_eq!(ns.translate("/unmapped"), "/unmapped");
    }

    #[test]
    fn mountlist_rejects_malformed_lines() {
        assert!(Namespace::parse_mountlist("/only-one-column\n").is_err());
        assert!(Namespace::parse_mountlist("/a /b extra\n").is_err());
        assert!(Namespace::parse_mountlist("# only comments\n\n").is_ok());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut ns = Namespace::new();
        ns.mount("/usr", "/cfs/a:1/usr");
        ns.mount("/usr/local", "/cfs/b:2/l");
        assert_eq!(ns.translate("/usr/local/x"), "/cfs/b:2/l/x");
        assert_eq!(ns.translate("/usr/share"), "/cfs/a:1/usr/share");
    }

    #[test]
    fn prefix_matching_respects_component_boundaries() {
        let mut ns = Namespace::new();
        ns.mount("/data", "/cfs/x:1/d");
        assert_eq!(ns.translate("/database"), "/database");
        assert_eq!(ns.translate("/data"), "/cfs/x:1/d");
    }

    #[test]
    fn resolve_routes_builtin_roots() {
        let adapter = Adapter::new(AdapterConfig::default()).unwrap();
        let (_fs, rel) = adapter.resolve("/cfs/example.org:9094/a/b").unwrap();
        assert_eq!(rel, "/a/b");
        let (_fs, rel) = adapter.resolve("/local/tmp").unwrap();
        assert_eq!(rel, "/tmp");
        assert!(adapter.resolve("/cfs").is_err());
        assert!(adapter.resolve("/nonexistent/x").is_err());
    }

    #[test]
    fn cfs_connections_are_shared_per_endpoint() {
        let adapter = Adapter::new(AdapterConfig::default()).unwrap();
        let (a, _) = adapter.resolve("/cfs/h:1/x").unwrap();
        let (b, _) = adapter.resolve("/cfs/h:1/y").unwrap();
        let (c, _) = adapter.resolve("/cfs/h:2/x").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn registered_abstractions_take_priority() {
        let adapter = Adapter::new(AdapterConfig::default()).unwrap();
        let dir = chirp_proto::testutil::TempDir::new();
        let fs = Arc::new(LocalFs::new(dir.path()).unwrap());
        adapter.register("/dsfs/vol1", fs);
        let (_fs, rel) = adapter.resolve("/dsfs/vol1/inner").unwrap();
        assert_eq!(rel, "/inner");
        let (_fs, rel) = adapter.resolve("/dsfs/vol1").unwrap();
        assert_eq!(rel, "/");
    }

    #[test]
    fn cross_abstraction_rename_is_exdev() {
        let adapter = Adapter::new(AdapterConfig::default()).unwrap();
        let dir = chirp_proto::testutil::TempDir::new();
        let fs = Arc::new(LocalFs::new(dir.path()).unwrap());
        adapter.register("/vol", fs);
        let err = adapter.rename("/vol/a", "/cfs/h:1/a").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}

//! Scoped-thread fan-out for the hot multi-server loops.
//!
//! Striping, mirroring, and the stub engine all end in the same shape:
//! N independent RPC jobs, one per server, whose results must come
//! back in submission order so partial-failure semantics ("first error
//! in part order wins") match the sequential code exactly. This
//! helper runs that shape either inline or on one scoped thread per
//! job, so callers can switch with a flag and benchmarks can compare
//! the two paths directly.

/// Run every job and return their results in submission order.
///
/// With `parallel` set and more than one job, each job gets its own
/// scoped thread; otherwise jobs run inline. A panicking job is
/// propagated to the caller either way.
pub(crate) fn run_fanout<T, F>(parallel: bool, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if !parallel || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    std::thread::scope(|scope| {
        let threads: Vec<_> = jobs.into_iter().map(|job| scope.spawn(job)).collect();
        threads
            .into_iter()
            .map(|t| t.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_submission_order() {
        for parallel in [false, true] {
            let jobs: Vec<_> = (0..8)
                .map(|i| {
                    move || {
                        if i % 2 == 0 {
                            // Stagger even jobs so finish order differs
                            // from submission order under parallelism.
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        i * 10
                    }
                })
                .collect();
            let out = run_fanout(parallel, jobs);
            assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        }
    }

    #[test]
    fn parallel_jobs_overlap_in_time() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let live = &live;
                let peak = &peak;
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_fanout(true, jobs);
        assert!(peak.load(Ordering::SeqCst) > 1, "jobs never overlapped");
    }

    #[test]
    fn mutable_borrows_can_be_distributed() {
        let mut cells = [0u64; 4];
        let jobs: Vec<_> = cells
            .iter_mut()
            .enumerate()
            .map(|(i, cell)| move || *cell = i as u64 + 1)
            .collect();
        run_fanout(true, jobs);
        assert_eq!(cells, [1, 2, 3, 4]);
    }
}

//! CFS — the *central filesystem* abstraction.
//!
//! The simplest abstraction: files and directories on a single file
//! server, accessed without translation. Consistency and
//! synchronization are managed by the server host's kernel in the
//! usual way, so CFS behaves like NFS minus caching — grid security
//! plus Unix-like consistency.
//!
//! `Cfs` also carries the *adapter's* recovery policy (paper §6): if
//! the TCP connection is lost, the server has already closed our
//! descriptors, so we reconnect with exponential backoff, re-open each
//! file, and verify with `stat` that the file still has the same inode
//! number. If it does not, the file was replaced or deleted while we
//! were away, and the caller receives a "stale file handle" error, as
//! in NFS.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chirp_client::{AuthMethod, Connection};
use chirp_proto::transport::Dialer;
use chirp_proto::{
    ChirpError, ChirpResult, Clock, OpenFlags, StatBuf, StatFs, DEFAULT_PIPELINE_DEPTH,
};
use parking_lot::Mutex;

use crate::fs::{normalize_path, FileHandle, FileSystem};

/// The reconnection policy, shared protocol-wide. Re-exported here
/// because CFS is where it has always been configured from.
pub use chirp_proto::RetryPolicy;

/// True for `io::Error`s that stem from transport loss (connection
/// failure, timeout, transient congestion) — the class the recovery
/// layer may mask by reconnecting or failing over to another replica.
/// Everything else (ACL denial, bad request, stale handle, not found)
/// is a *verdict* and must surface unchanged.
pub fn is_transport_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::ResourceBusy
    )
}

/// Configuration of a CFS mount.
#[derive(Debug, Clone)]
pub struct CfsConfig {
    /// Server endpoint, `host:port`.
    pub endpoint: String,
    /// Authentication methods to offer, in order.
    pub auth: Vec<AuthMethod>,
    /// Server-side base directory this CFS is rooted at.
    pub base: String,
    /// Per-operation network timeout.
    pub timeout: Duration,
    /// Recovery policy.
    pub retry: RetryPolicy,
    /// Transparently append `O_SYNC` to every open (the adapter's
    /// synchronous-write switch).
    pub sync_writes: bool,
    /// Read-ahead window in bytes for handle reads: each `pread` over
    /// the wire fetches at least this much, and later sequential reads
    /// are served from the window without a round trip. `0` (default)
    /// disables buffering — every read is one RPC, preserving the
    /// system's no-client-caching coherence story. The window lives
    /// per handle and is dropped on any write, truncate, or
    /// reconnection of that handle.
    pub readahead: usize,
    /// Pipeline depth for request pipelining on this mount's single
    /// connection: how many RPCs may ride the stream unanswered. With
    /// a window (`readahead > 0`) and depth ≥ 2, the handle read path
    /// refills by *deferred prefetch* — after filling a window it
    /// issues the next window's `PREAD` and leaves the reply in the
    /// stream, so the server services it while the application is
    /// busy consuming the current window. Depth 1 keeps the classic
    /// one-RPC-at-a-time behavior.
    pub pipeline_depth: usize,
    /// Telemetry registry the mount records into (`client.*` metrics:
    /// connects, reconnects, retries, readahead hits/misses). Each
    /// mount gets a private registry by default; a pool installs its
    /// own so one registry aggregates across every member connection.
    pub telemetry: telemetry::Registry,
    /// How connections are opened: real TCP by default, the in-memory
    /// network under the simulation harness.
    pub dialer: Dialer,
    /// The clock recovery sleeps and deadlines are charged to. Wall
    /// time by default; virtual under simulation, where backoff
    /// advances simulated time instead of parking the thread.
    pub clock: Clock,
}

impl CfsConfig {
    /// Sensible defaults: root base, 10 s timeout, default retries.
    pub fn new(endpoint: &str, auth: Vec<AuthMethod>) -> CfsConfig {
        CfsConfig {
            endpoint: endpoint.to_string(),
            auth,
            base: "/".to_string(),
            timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            sync_writes: false,
            readahead: 0,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            telemetry: telemetry::Registry::default(),
            dialer: Dialer::tcp(),
            clock: Clock::wall(),
        }
    }

    /// Root the CFS at a server-side directory.
    pub fn with_base(mut self, base: &str) -> CfsConfig {
        self.base = normalize_path(base);
        self
    }

    /// Set the recovery policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> CfsConfig {
        self.retry = retry;
        self
    }

    /// Set the per-handle read-ahead window (bytes; 0 disables).
    pub fn with_readahead(mut self, readahead: usize) -> CfsConfig {
        self.readahead = readahead;
        self
    }

    /// Set the pipeline depth (1 disables pipelined prefetch).
    pub fn with_pipeline_depth(mut self, depth: usize) -> CfsConfig {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Record into a shared telemetry registry instead of a private
    /// one (a pool installs its own so `client.*` counters aggregate
    /// across all member connections).
    pub fn with_telemetry(mut self, registry: telemetry::Registry) -> CfsConfig {
        self.telemetry = registry;
        self
    }

    /// Open connections through `dialer` instead of TCP.
    pub fn with_dialer(mut self, dialer: Dialer) -> CfsConfig {
        self.dialer = dialer;
        self
    }

    /// Charge recovery sleeps and deadlines to `clock`.
    pub fn with_clock(mut self, clock: Clock) -> CfsConfig {
        self.clock = clock;
        self
    }
}

/// Prebuilt handles into the mount's registry, so the recovery and
/// read paths bump plain atomics instead of taking the registration
/// lock per event.
#[derive(Debug, Clone)]
struct ClientTelemetry {
    retries: telemetry::Counter,
    connects: telemetry::Counter,
    reconnects: telemetry::Counter,
    ra_hits: telemetry::Counter,
    ra_misses: telemetry::Counter,
    ra_prefetches: telemetry::Counter,
}

impl ClientTelemetry {
    fn new(registry: &telemetry::Registry) -> ClientTelemetry {
        ClientTelemetry {
            retries: registry.counter("client.retries"),
            connects: registry.counter("client.connects"),
            reconnects: registry.counter("client.reconnects"),
            ra_hits: registry.counter("client.readahead.hits"),
            ra_misses: registry.counter("client.readahead.misses"),
            ra_prefetches: registry.counter("client.readahead.prefetches"),
        }
    }
}

/// A `PREAD` issued ahead of need whose reply has not been read yet.
/// At most one rides the connection at a time, and every RPC path
/// settles it first, so the stream is always framed before a real
/// request goes out.
struct PendingPrefetch {
    fd: i32,
    offset: u64,
    len: usize,
}

/// A settled prefetch waiting to be claimed by the handle that issued
/// it (identified by descriptor and connection generation).
struct Prefetched {
    generation: u64,
    fd: i32,
    offset: u64,
    data: Vec<u8>,
}

struct ConnSlot {
    conn: Option<Connection>,
    /// Bumped on every reconnection; handles compare it to notice that
    /// their descriptors died with the old connection.
    generation: u64,
    /// Deferred prefetch still owed a reply by the server.
    pending: Option<PendingPrefetch>,
    /// Settled prefetch not yet claimed by its handle.
    prefetched: Option<Prefetched>,
}

/// The central filesystem: one server, untranslated paths, recovery
/// built in.
pub struct Cfs {
    config: Arc<CfsConfig>,
    slot: Arc<Mutex<ConnSlot>>,
    /// Retries performed by this mount's recovery loops. Shared so a
    /// pool can aggregate one counter across all its connections, and
    /// so chaos tests can assert retry counts stay bounded.
    retries: Arc<AtomicU64>,
    tele: ClientTelemetry,
}

impl Cfs {
    /// Create a CFS view of one server. Connection is lazy: nothing
    /// happens until the first operation.
    pub fn new(config: CfsConfig) -> Cfs {
        let tele = ClientTelemetry::new(&config.telemetry);
        Cfs {
            config: Arc::new(config),
            slot: Arc::new(Mutex::new(ConnSlot {
                conn: None,
                generation: 0,
                pending: None,
                prefetched: None,
            })),
            retries: Arc::new(AtomicU64::new(0)),
            tele,
        }
    }

    /// Share a retry counter (a pool aggregates one across members).
    pub fn with_retry_counter(mut self, counter: Arc<AtomicU64>) -> Cfs {
        self.retries = counter;
        self
    }

    /// Retries this mount's recovery loops have performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// The telemetry registry this mount records into (`client.*`
    /// metrics). Shared with the pool when the mount was built by one.
    pub fn telemetry(&self) -> &telemetry::Registry {
        &self.config.telemetry
    }

    /// Shorthand: connect to `endpoint` with `auth` at the server root.
    pub fn connect(endpoint: &str, auth: Vec<AuthMethod>) -> Cfs {
        Cfs::new(CfsConfig::new(endpoint, auth))
    }

    /// The server endpoint.
    pub fn endpoint(&self) -> &str {
        &self.config.endpoint
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CfsConfig {
        &self.config
    }

    /// True when the underlying connection has been poisoned by a
    /// transport failure. A never-dialed `Cfs` reports `false` — it is
    /// safe to hand out, since dialing is lazy. The server pool uses
    /// this as the checkin health probe.
    pub fn connection_is_broken(&self) -> bool {
        let slot = self.slot.lock();
        slot.conn.as_ref().is_some_and(Connection::is_broken)
    }

    fn full_path(&self, path: &str) -> String {
        join_base(&self.config.base, path)
    }

    /// Run `op` against a live connection, reconnecting per the retry
    /// policy on transport failures. Fatal (protocol/ACL) errors
    /// surface immediately; only errors the policy classifies as
    /// retriable burn attempts.
    fn run<T>(&self, mut op: impl FnMut(&mut Connection) -> ChirpResult<T>) -> io::Result<T> {
        let mut slot = self.slot.lock();
        let mut retry = self
            .config
            .retry
            .begin_with_clock(self.config.clock.clone());
        loop {
            let res = ensure_connected(&mut slot, &self.config, &self.tele).and_then(|_| {
                settle_prefetch(&mut slot);
                op(slot.conn.as_mut().expect("ensured above"))
            });
            match res {
                Ok(v) => return Ok(v),
                Err(e) => match retry.next_delay(e) {
                    Some(delay) => {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        self.tele.retries.inc();
                        drop_conn(&mut slot);
                        self.config.clock.sleep(delay);
                    }
                    None => return Err(e.into()),
                },
            }
        }
    }

    /// Stream a whole remote file into `out` (used by replication).
    pub fn getfile_to<W: io::Write>(&self, path: &str, out: &mut W) -> io::Result<u64> {
        let p = self.full_path(path);
        self.run(|c| c.getfile_to(&p, out))
    }

    /// Fetch a whole remote file.
    pub fn getfile(&self, path: &str) -> io::Result<Vec<u8>> {
        let p = self.full_path(path);
        self.run(|c| c.getfile(&p))
    }

    /// Store a whole file from a buffer.
    pub fn putfile(&self, path: &str, mode: u32, data: &[u8]) -> io::Result<()> {
        let p = self.full_path(path);
        self.run(|c| c.putfile(&p, mode, data))
    }

    /// Server-side checksum (CRC-64) of a remote file.
    pub fn checksum(&self, path: &str) -> io::Result<u64> {
        let p = self.full_path(path);
        self.run(|c| c.checksum(&p))
    }

    /// Storage totals of the backing server.
    pub fn statfs(&self) -> io::Result<StatFs> {
        self.run(|c| c.statfs())
    }

    /// The subject this mount authenticates as.
    pub fn whoami(&self) -> io::Result<String> {
        self.run(|c| c.whoami())
    }

    /// Fetch a directory ACL.
    pub fn getacl(&self, path: &str) -> io::Result<String> {
        let p = self.full_path(path);
        self.run(|c| c.getacl(&p))
    }

    /// Modify a directory ACL.
    pub fn setacl(&self, path: &str, subject: &str, rights: &str) -> io::Result<()> {
        let p = self.full_path(path);
        self.run(|c| c.setacl(&p, subject, rights))
    }

    /// Direct a server-to-server third-party transfer of `path` to
    /// `target_path` on `target` — bulk data never visits this client.
    pub fn thirdput(&self, path: &str, target: &str, target_path: &str) -> io::Result<u64> {
        let p = self.full_path(path);
        self.run(|c| c.thirdput(&p, target, target_path))
    }

    /// `stat` a batch of paths in one exchange (`STATMULTI`): one
    /// verdict per path, in order, a missing path failing alone
    /// rather than the batch. The recursive-stub hot path resolves a
    /// directory of stubs against one server in one round trip.
    pub fn stat_multi(&self, paths: &[String]) -> io::Result<Vec<ChirpResult<StatBuf>>> {
        let full: Vec<String> = paths.iter().map(|p| self.full_path(p)).collect();
        self.run(|c| c.stat_multi(&full))
    }
}

fn drop_conn(slot: &mut ConnSlot) {
    if slot.conn.take().is_some() {
        slot.generation += 1;
    }
    // Any prefetch state died with the stream it was queued on.
    slot.pending = None;
    slot.prefetched = None;
}

/// Read the reply owed by a deferred prefetch, if one is in flight,
/// so the stream is framed before the next real RPC. A transport
/// failure here poisons the connection exactly as it would on a real
/// read; the prefetch itself is speculative, so its loss is silent —
/// the next window miss simply fetches over a fresh connection.
fn settle_prefetch(slot: &mut ConnSlot) {
    let Some(p) = slot.pending.take() else {
        return;
    };
    let generation = slot.generation;
    let Some(conn) = slot.conn.as_mut() else {
        return;
    };
    if let Ok(data) = conn.recv_pread(p.len as u64) {
        slot.prefetched = Some(Prefetched {
            generation,
            fd: p.fd,
            offset: p.offset,
            data,
        });
    }
}

fn ensure_connected(
    slot: &mut ConnSlot,
    config: &CfsConfig,
    tele: &ClientTelemetry,
) -> ChirpResult<()> {
    if let Some(c) = &slot.conn {
        if !c.is_broken() {
            return Ok(());
        }
        drop_conn(slot);
    }
    let mut conn =
        Connection::connect_via(&config.dialer, config.endpoint.as_str(), config.timeout)?;
    tele.connects.inc();
    if slot.generation > 0 {
        // A previous connection existed: this dial is recovery, not
        // first contact.
        tele.reconnects.inc();
    }
    if !config.auth.is_empty() {
        conn.authenticate(&config.auth)?;
    }
    slot.conn = Some(conn);
    slot.generation += 1;
    Ok(())
}

/// Join the mount base with an abstraction path.
fn join_base(base: &str, path: &str) -> String {
    let p = normalize_path(path);
    if base == "/" {
        p
    } else if p == "/" {
        base.to_string()
    } else {
        format!("{base}{p}")
    }
}

struct CfsHandle {
    config: Arc<CfsConfig>,
    slot: Arc<Mutex<ConnSlot>>,
    /// Shared with the owning [`Cfs`]; every recovery retry counts.
    retries: Arc<AtomicU64>,
    tele: ClientTelemetry,
    /// Full server-side path, for re-opening after reconnection.
    path: String,
    /// Flags to re-open with: the original minus the one-shot bits
    /// (`CREATE`/`TRUNCATE`/`EXCLUSIVE`), so recovery never clobbers
    /// file contents.
    reopen_flags: OpenFlags,
    fd: i32,
    /// Generation of the connection the descriptor belongs to.
    generation: u64,
    /// Identity recorded at first open; a different inode after
    /// reconnection means the file was replaced — stale handle.
    identity: (u64, u64),
    /// Read-ahead window: reusable scratch filled by one oversized
    /// `pread`, serving later sequential reads locally. Empty when
    /// `config.readahead == 0`.
    ra_buf: Vec<u8>,
    /// File offset of `ra_buf[0]`.
    ra_off: u64,
    /// Valid bytes in `ra_buf`.
    ra_len: usize,
    /// Connection generation the window was filled under; a reconnect
    /// invalidates the window (the file may have changed identity
    /// checks aside — stay conservative).
    ra_gen: u64,
    /// Offset of the deferred prefetch this handle issued and still
    /// trusts. `None` after a write/truncate: any reply still in the
    /// stream gets settled and discarded instead of served.
    prefetch: Option<u64>,
}

impl CfsHandle {
    /// Run a descriptor operation, transparently re-opening after a
    /// reconnection and surfacing `Stale` when the file changed
    /// identity underneath us.
    fn with_fd<T>(
        &mut self,
        mut op: impl FnMut(&mut Connection, i32) -> ChirpResult<T>,
    ) -> io::Result<T> {
        let slot_arc = self.slot.clone();
        let mut slot = slot_arc.lock();
        let mut retry = self
            .config
            .retry
            .begin_with_clock(self.config.clock.clone());
        loop {
            let res = ensure_connected(&mut slot, &self.config, &self.tele).and_then(|_| {
                settle_prefetch(&mut slot);
                // If the connection was replaced, our descriptor died
                // with it: re-open and verify identity (adapter
                // recovery, §6). `Stale` is fatal by classification,
                // so a replaced file surfaces instead of retrying.
                if slot.generation != self.generation {
                    let conn = slot.conn.as_mut().expect("ensured above");
                    self.fd = reopen(conn, &self.path, self.reopen_flags, self.identity)?;
                    self.generation = slot.generation;
                }
                let conn = slot.conn.as_mut().expect("ensured above");
                op(conn, self.fd)
            });
            match res {
                Ok(v) => return Ok(v),
                Err(e) => match retry.next_delay(e) {
                    Some(delay) => {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        self.tele.retries.inc();
                        drop_conn(&mut slot);
                        self.config.clock.sleep(delay);
                    }
                    None => return Err(e.into()),
                },
            }
        }
    }
}

fn reopen(
    conn: &mut Connection,
    path: &str,
    flags: OpenFlags,
    identity: (u64, u64),
) -> ChirpResult<i32> {
    let fd = conn.open(path, flags, 0)?;
    let st = conn.fstat(fd)?;
    if (st.device, st.inode) != identity {
        let _ = conn.close(fd);
        return Err(ChirpError::Stale);
    }
    Ok(fd)
}

impl CfsHandle {
    /// Serve as much of the request as the current window covers.
    fn serve_from_window(&self, buf: &mut [u8], offset: u64) -> Option<usize> {
        if self.ra_len == 0 || self.ra_gen != self.generation {
            return None;
        }
        if offset < self.ra_off || offset >= self.ra_off + self.ra_len as u64 {
            return None;
        }
        let start = (offset - self.ra_off) as usize;
        let n = buf.len().min(self.ra_len - start);
        buf[..n].copy_from_slice(&self.ra_buf[start..start + n]);
        Some(n)
    }

    /// Settle and claim this handle's deferred prefetch, installing it
    /// as the window when it covers `offset`. Returns `true` on
    /// install — `serve_from_window` will then answer without an RPC.
    fn try_claim_prefetch(&mut self, offset: u64) -> bool {
        if self.prefetch.is_none() {
            return false;
        }
        let claimed = {
            let mut slot = self.slot.lock();
            settle_prefetch(&mut slot);
            match &slot.prefetched {
                Some(p) if p.fd == self.fd && p.generation == self.generation => {
                    slot.prefetched.take()
                }
                _ => None,
            }
        };
        self.prefetch = None;
        let Some(p) = claimed else {
            return false;
        };
        if p.data.is_empty() || offset < p.offset || offset >= p.offset + p.data.len() as u64 {
            // A seek away from the speculated range (or EOF): the
            // prefetch is wasted, not wrong.
            return false;
        }
        self.ra_off = p.offset;
        self.ra_len = p.data.len();
        self.ra_buf = p.data;
        self.ra_gen = self.generation;
        true
    }

    /// Issue the next window's `PREAD` without waiting for the reply
    /// (readahead over pipelining): the server services it while the
    /// application consumes the window just delivered, and the reply
    /// waits in the stream until claimed or settled. Only one deferred
    /// read rides the connection at a time, and only when the stream
    /// is healthy, the window is current, and nothing else is owed.
    fn maybe_prefetch_next(&mut self) {
        let window = self.config.readahead;
        if window == 0 || self.config.pipeline_depth < 2 {
            return;
        }
        if self.ra_len < window || self.ra_gen != self.generation {
            // A short window means end of file; nothing to speculate.
            return;
        }
        let offset = self.ra_off + self.ra_len as u64;
        let mut slot = self.slot.lock();
        if slot.generation != self.generation || slot.pending.is_some() || slot.prefetched.is_some()
        {
            return;
        }
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        if conn.is_broken() {
            return;
        }
        if conn.send_pread(self.fd, window as u64, offset).is_ok() {
            slot.pending = Some(PendingPrefetch {
                fd: self.fd,
                offset,
                len: window,
            });
            self.prefetch = Some(offset);
            self.tele.ra_prefetches.inc();
        }
    }

    /// Drop any prefetch this handle has outstanding: settle the owed
    /// reply (framing) and discard the data (a write just made it
    /// stale).
    fn discard_prefetch(&mut self) {
        self.prefetch = None;
        let mut slot = self.slot.lock();
        settle_prefetch(&mut slot);
        if let Some(p) = &slot.prefetched {
            if p.fd == self.fd && p.generation == self.generation {
                slot.prefetched = None;
            }
        }
    }
}

impl FileHandle for CfsHandle {
    fn pread(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let window = self.config.readahead;
        if window == 0 {
            // One RPC round trip straight into the caller's buffer;
            // the server may return short only at EOF.
            return self.with_fd(|c, fd| c.pread_into(fd, buf, offset));
        }
        if let Some(n) = self.serve_from_window(buf, offset) {
            if n == buf.len() {
                self.tele.ra_hits.inc();
                return Ok(n);
            }
            // The window ended mid-request; refill from the server at
            // the requested offset (below) rather than stitching, so a
            // short result still means end of file.
        }
        // Before paying a round trip, claim the deferred prefetch: on
        // a sequential stream the next window's reply is already in
        // the stream (or the server is writing it), so the exchange
        // pipelines with the application's consumption of the last
        // window instead of stalling it.
        if self.try_claim_prefetch(offset) {
            if let Some(n) = self.serve_from_window(buf, offset) {
                if n == buf.len() {
                    self.tele.ra_hits.inc();
                    self.maybe_prefetch_next();
                    return Ok(n);
                }
            }
        }
        // Refill: fetch at least the window size in one RPC. The
        // buffer is taken out of `self` for the duration because
        // `with_fd` needs `&mut self`.
        self.tele.ra_misses.inc();
        let want = buf.len().max(window);
        let mut scratch = std::mem::take(&mut self.ra_buf);
        scratch.resize(want, 0);
        let res = self.with_fd(|c, fd| c.pread_into(fd, &mut scratch, offset));
        self.ra_buf = scratch;
        match res {
            Ok(filled) => {
                self.ra_off = offset;
                self.ra_len = filled;
                self.ra_gen = self.generation;
                let n = buf.len().min(filled);
                buf[..n].copy_from_slice(&self.ra_buf[..n]);
                self.maybe_prefetch_next();
                Ok(n)
            }
            Err(e) => {
                self.ra_len = 0;
                Err(e)
            }
        }
    }

    fn pwrite(&mut self, buf: &[u8], offset: u64) -> io::Result<usize> {
        // Any write invalidates the read-ahead window and whatever the
        // deferred prefetch was about to deliver.
        self.ra_len = 0;
        self.discard_prefetch();
        let n = self.with_fd(|c, fd| c.pwrite(fd, buf, offset))?;
        Ok(n as usize)
    }

    fn fstat(&mut self) -> io::Result<StatBuf> {
        self.with_fd(|c, fd| c.fstat(fd))
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.with_fd(|c, fd| c.fsync(fd))
    }

    fn ftruncate(&mut self, size: u64) -> io::Result<()> {
        self.ra_len = 0;
        self.discard_prefetch();
        self.with_fd(|c, fd| c.ftruncate(fd, size))
    }
}

impl Drop for CfsHandle {
    fn drop(&mut self) {
        // Best-effort: if the connection died, the server has already
        // closed the descriptor for us.
        let mut slot = self.slot.lock();
        settle_prefetch(&mut slot);
        if let Some(p) = &slot.prefetched {
            if p.fd == self.fd && p.generation == self.generation {
                // Nobody is left to claim it.
                slot.prefetched = None;
            }
        }
        if slot.generation == self.generation {
            if let Some(conn) = slot.conn.as_mut() {
                let _ = conn.close(self.fd);
            }
        }
    }
}

impl FileSystem for Cfs {
    fn open(&self, path: &str, flags: OpenFlags, mode: u32) -> io::Result<Box<dyn FileHandle>> {
        let full = self.full_path(path);
        let mut flags = flags;
        if self.config.sync_writes {
            flags |= OpenFlags::SYNC;
        }
        let (fd, st, generation) = {
            let slot_arc = self.slot.clone();
            let mut slot = slot_arc.lock();
            let mut retry = self
                .config
                .retry
                .begin_with_clock(self.config.clock.clone());
            loop {
                let res = ensure_connected(&mut slot, &self.config, &self.tele).and_then(|_| {
                    settle_prefetch(&mut slot);
                    let conn = slot.conn.as_mut().expect("ensured above");
                    let fd = conn.open(&full, flags, mode)?;
                    let st = conn.fstat(fd)?;
                    Ok((fd, st))
                });
                match res {
                    Ok((fd, st)) => break (fd, st, slot.generation),
                    Err(e) => match retry.next_delay(e) {
                        Some(delay) => {
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            self.tele.retries.inc();
                            drop_conn(&mut slot);
                            self.config.clock.sleep(delay);
                        }
                        None => return Err(e.into()),
                    },
                }
            }
        };
        // Strip one-shot bits so recovery re-opens are idempotent.
        let mut reopen_flags = OpenFlags::empty();
        for f in [
            OpenFlags::READ,
            OpenFlags::WRITE,
            OpenFlags::APPEND,
            OpenFlags::SYNC,
        ] {
            if flags.contains(f) {
                reopen_flags |= f;
            }
        }
        // A write-created handle must remain re-openable: re-opening
        // write-only is fine because the file now exists.
        if reopen_flags.bits() == 0 {
            reopen_flags = OpenFlags::READ;
        }
        Ok(Box::new(CfsHandle {
            config: self.config.clone(),
            slot: self.slot.clone(),
            retries: self.retries.clone(),
            tele: self.tele.clone(),
            path: full,
            reopen_flags,
            fd,
            generation,
            identity: (st.device, st.inode),
            ra_buf: Vec::new(),
            ra_off: 0,
            ra_len: 0,
            ra_gen: 0,
            prefetch: None,
        }))
    }

    fn stat(&self, path: &str) -> io::Result<StatBuf> {
        let p = self.full_path(path);
        self.run(|c| c.stat(&p))
    }

    fn unlink(&self, path: &str) -> io::Result<()> {
        let p = self.full_path(path);
        self.run(|c| c.unlink(&p))
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let f = self.full_path(from);
        let t = self.full_path(to);
        self.run(|c| c.rename(&f, &t))
    }

    fn mkdir(&self, path: &str, mode: u32) -> io::Result<()> {
        let p = self.full_path(path);
        self.run(|c| c.mkdir(&p, mode))
    }

    fn rmdir(&self, path: &str) -> io::Result<()> {
        let p = self.full_path(path);
        self.run(|c| c.rmdir(&p))
    }

    fn readdir(&self, path: &str) -> io::Result<Vec<String>> {
        let p = self.full_path(path);
        self.run(|c| c.getdir(&p))
    }

    fn truncate(&self, path: &str, size: u64) -> io::Result<()> {
        let p = self.full_path(path);
        self.run(|c| c.truncate(&p, size))
    }

    /// Whole-file read in a single `GETFILE` RPC instead of the
    /// open/stat/read/close sequence — the streaming call the Chirp
    /// protocol provides exactly for this (§4). DSFS stub reads ride
    /// on this, keeping metadata operations at the "twice the round
    /// trips of CFS" the paper reports rather than four times.
    fn read_file(&self, path: &str) -> io::Result<Vec<u8>> {
        self.getfile(path)
    }

    /// Whole-file write in a single `PUTFILE` RPC.
    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<()> {
        self.putfile(path, 0o644, data)
    }

    /// Listing with attributes in one `GETDIRSTAT` exchange instead of
    /// the default's `STAT`-per-entry round trips.
    fn readdir_stat(&self, path: &str) -> io::Result<Vec<(String, StatBuf)>> {
        let p = self.full_path(path);
        self.run(|c| c.getdir_stat(&p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_base_forms() {
        assert_eq!(join_base("/", "/a/b"), "/a/b");
        assert_eq!(join_base("/vol", "/a"), "/vol/a");
        assert_eq!(join_base("/vol", "/"), "/vol");
        assert_eq!(join_base("/vol", "/x/../y"), "/vol/y");
    }
}

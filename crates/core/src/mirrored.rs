//! Transparent replication — the conclusion's second suggested
//! variation: a filesystem that mirrors every file onto several
//! servers so reads survive device loss.
//!
//! Writes go to every replica (strict: a write that cannot reach all
//! replicas fails, keeping mirrors identical); reads and stats try
//! replicas in order and fail over silently. Built, like everything
//! else, purely on the servers' ordinary file interface.

use std::io;
use std::sync::Arc;

use chirp_proto::{OpenFlags, StatBuf};

use crate::cfs::is_transport_error;
use crate::fanout::run_fanout;
use crate::fs::{FileHandle, FileSystem};
use crate::placement::{unique_data_name, Placement};
use crate::pool::ServerPool;
use crate::stubfs::{DataServer, StubFsOptions};

/// First line of a mirror stub.
pub const MIRROR_MAGIC: &str = "#tss-mirror-v1";

/// The replica list of one mirrored file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorSet {
    /// `(endpoint, data path)` per replica.
    pub replicas: Vec<(String, String)>,
}

impl MirrorSet {
    /// Render to the stub format. The header carries the replica count
    /// so a torn (prefix-truncated) stub can never parse as a healthy
    /// set that silently lost redundancy.
    pub fn render(&self) -> String {
        let mut out = format!("{MIRROR_MAGIC}\n{}\n", self.replicas.len());
        for (endpoint, path) in &self.replicas {
            out.push_str(&format!("{endpoint} {path}\n"));
        }
        out
    }

    /// Parse a mirror stub.
    ///
    /// Strict: the final newline is required and the replica list must
    /// match the declared count, so every strict prefix of a rendered
    /// set — what a crash mid-write leaves behind — is invalid.
    pub fn parse(text: &str) -> io::Result<MirrorSet> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        if !text.ends_with('\n') {
            return Err(bad("mirror stub truncated"));
        }
        let mut lines = text.lines();
        if lines.next() != Some(MIRROR_MAGIC) {
            return Err(bad("not a mirror stub"));
        }
        let count: usize = lines
            .next()
            .and_then(|l| l.parse().ok())
            .filter(|&c| c > 0)
            .ok_or_else(|| bad("bad replica count"))?;
        let mut replicas = Vec::new();
        for line in lines {
            let (endpoint, path) = line
                .split_once(' ')
                .filter(|(_, p)| p.starts_with('/'))
                .ok_or_else(|| bad("bad replica line"))?;
            replicas.push((endpoint.to_string(), path.to_string()));
        }
        if replicas.len() != count {
            return Err(bad("replica count mismatch"));
        }
        Ok(MirrorSet { replicas })
    }
}

/// A filesystem that mirrors every file across several servers.
pub struct MirroredFs {
    meta: Arc<dyn FileSystem>,
    pool: ServerPool,
    placement: Placement,
    /// Replicas per file.
    copies: usize,
}

impl MirroredFs {
    /// Build a mirrored filesystem with `copies` replicas per file.
    pub fn new(
        meta: Arc<dyn FileSystem>,
        pool: Vec<DataServer>,
        copies: usize,
        options: StubFsOptions,
    ) -> io::Result<MirroredFs> {
        if copies == 0 || pool.len() < copies {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "copies exceed pool",
            ));
        }
        Ok(MirroredFs {
            meta,
            pool: ServerPool::new(pool, options),
            placement: Placement::round_robin(),
            copies,
        })
    }

    /// Create pool volumes.
    pub fn ensure_volumes(&self) -> io::Result<()> {
        self.pool.ensure_volumes()
    }

    /// A snapshot of the data-connection pool counters.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    fn read_set(&self, path: &str) -> io::Result<MirrorSet> {
        let text = self.meta.read_file(path)?;
        if text.is_empty() {
            // A zero-length stub is a create that died before the
            // replica-set write: mandated to read as "file not
            // found", like the plain dsfs.
            return Err(io::Error::new(io::ErrorKind::NotFound, "file not found"));
        }
        let text = String::from_utf8(text)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stub not utf-8"))?;
        MirrorSet::parse(&text)
    }

    fn create_file(&self, path: &str, flags: OpenFlags) -> io::Result<Box<dyn FileHandle>> {
        let first = self.placement.choose(self.pool.len());
        let replicas: Vec<(String, String)> = (0..self.copies)
            .map(|i| {
                let server = &self.pool.servers()[(first + i) % self.pool.len()];
                (
                    server.endpoint.clone(),
                    format!("{}/{}", server.volume, unique_data_name()),
                )
            })
            .collect();
        let set = MirrorSet { replicas };
        let mut stub = self.meta.open(
            path,
            OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE,
            0o644,
        )?;
        stub.pwrite(set.render().as_bytes(), 0)?;
        drop(stub);
        let create = flags | OpenFlags::WRITE | OpenFlags::CREATE;
        match self.open_all(&set, create) {
            Ok(handles) => Ok(Box::new(MirrorHandle {
                handles,
                parallel: self.pool.parallel_fanout(),
                preferred: 0,
            })),
            Err(e) => {
                let _ = self.meta.unlink(path);
                Err(e)
            }
        }
    }

    /// Open every replica concurrently (for writing: all must be
    /// reachable; the first error in replica order wins).
    fn open_all(&self, set: &MirrorSet, flags: OpenFlags) -> io::Result<Vec<Box<dyn FileHandle>>> {
        let pool = &self.pool;
        let jobs: Vec<_> = set
            .replicas
            .iter()
            .map(|(endpoint, path)| move || pool.open(endpoint, path, flags, 0o644))
            .collect();
        run_fanout(pool.parallel_fanout() && set.replicas.len() > 1, jobs)
            .into_iter()
            .collect()
    }

    /// Replica indexes in the order reads should try them: endpoints
    /// whose circuit breaker is closed (or due a half-open probe)
    /// first, cooling-down endpoints last as a last resort.
    fn health_order(&self, set: &MirrorSet) -> Vec<usize> {
        let (mut order, cooling): (Vec<usize>, Vec<usize>) = (0..set.replicas.len())
            .partition(|&i| self.pool.endpoint_available(&set.replicas[i].0));
        order.extend(cooling);
        order
    }

    /// Open a read handle that fails over between replicas for its
    /// whole life. The first open tries replicas health-first; later
    /// transport failures demote the current replica and move on.
    fn open_any(&self, set: &MirrorSet, flags: OpenFlags) -> io::Result<Box<dyn FileHandle>> {
        let mut last: io::Error = io::ErrorKind::NotFound.into();
        for idx in self.health_order(set) {
            let (endpoint, path) = &set.replicas[idx];
            match self.pool.open(endpoint, path, flags, 0) {
                Ok(h) => {
                    self.pool.report_success(endpoint);
                    return Ok(Box::new(MirrorReadHandle {
                        replicas: set.replicas.clone(),
                        pool: self.pool.clone(),
                        flags,
                        current: Some((idx, h)),
                    }));
                }
                Err(e) => {
                    if is_transport_error(&e) {
                        self.pool.report_failure(endpoint);
                    }
                    last = e;
                }
            }
        }
        Err(last)
    }
}

/// A failover read handle: one live replica at a time, demoted on
/// transport failure in favour of the next. Fatal errors (ACL denial,
/// not-found) surface immediately — failover masks resource loss, not
/// server verdicts.
struct MirrorReadHandle {
    replicas: Vec<(String, String)>,
    pool: ServerPool,
    flags: OpenFlags,
    /// The replica currently serving reads, if any is open.
    current: Option<(usize, Box<dyn FileHandle>)>,
}

impl MirrorReadHandle {
    fn with_failover<T>(
        &mut self,
        mut op: impl FnMut(&mut Box<dyn FileHandle>) -> io::Result<T>,
    ) -> io::Result<T> {
        let n = self.replicas.len();
        let start = self.current.as_ref().map_or(0, |(i, _)| *i);
        let mut last: io::Error = io::ErrorKind::NotFound.into();
        for k in 0..n {
            let idx = (start + k) % n;
            let (endpoint, path) = self.replicas[idx].clone();
            // Make sure the current handle is the one for `idx`.
            if self.current.as_ref().is_none_or(|(i, _)| *i != idx) {
                match self.pool.open(&endpoint, &path, self.flags, 0) {
                    Ok(h) => self.current = Some((idx, h)),
                    Err(e) => {
                        if is_transport_error(&e) {
                            self.pool.report_failure(&endpoint);
                            last = e;
                            continue;
                        }
                        return Err(e);
                    }
                }
            }
            let (_, handle) = self.current.as_mut().expect("just ensured");
            match op(handle) {
                Ok(v) => {
                    self.pool.report_success(&endpoint);
                    return Ok(v);
                }
                Err(e) if is_transport_error(&e) => {
                    // Demote: the dead replica loses its slot, and the
                    // next call starts from whoever answers now.
                    self.pool.report_failure(&endpoint);
                    self.current = None;
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }
}

impl FileHandle for MirrorReadHandle {
    fn pread(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        self.with_failover(|h| h.pread(buf, offset))
    }

    fn pwrite(&mut self, buf: &[u8], offset: u64) -> io::Result<usize> {
        // Read handles are opened without WRITE; the server's verdict
        // on the attempt surfaces unchanged.
        self.with_failover(|h| h.pwrite(buf, offset))
    }

    fn fstat(&mut self) -> io::Result<StatBuf> {
        self.with_failover(|h| h.fstat())
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.with_failover(|h| h.fsync())
    }

    fn ftruncate(&mut self, size: u64) -> io::Result<()> {
        self.with_failover(|h| h.ftruncate(size))
    }
}

/// Write-all handle over every replica.
struct MirrorHandle {
    handles: Vec<Box<dyn FileHandle>>,
    /// Fan replica mutations out over scoped threads — each replica
    /// handle owns its own pooled connection.
    parallel: bool,
    /// Read failover-with-demotion: the replica reads start from.
    /// Bumped past any replica whose read fails, so one dead mirror
    /// is not re-tried at the head of every subsequent read.
    preferred: usize,
}

impl MirrorHandle {
    /// Run one mutation on every replica concurrently; strict
    /// semantics — the first error in replica order fails the call.
    fn on_all_replicas(
        &mut self,
        op: impl Fn(&mut Box<dyn FileHandle>) -> io::Result<()> + Sync,
    ) -> io::Result<()> {
        let parallel = self.parallel && self.handles.len() > 1;
        let op = &op;
        let jobs: Vec<_> = self.handles.iter_mut().map(|h| move || op(h)).collect();
        run_fanout(parallel, jobs).into_iter().collect()
    }
}

impl FileHandle for MirrorHandle {
    fn pread(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        // Sequential failover with demotion: start from the last
        // replica known good, and remember whoever answers.
        let n_replicas = self.handles.len();
        let mut last: io::Error = io::ErrorKind::NotFound.into();
        for k in 0..n_replicas {
            let idx = (self.preferred + k) % n_replicas;
            match self.handles[idx].pread(buf, offset) {
                Ok(n) => {
                    self.preferred = idx;
                    return Ok(n);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn pwrite(&mut self, buf: &[u8], offset: u64) -> io::Result<usize> {
        self.on_all_replicas(|h| h.pwrite(buf, offset).map(|_| ()))?;
        Ok(buf.len())
    }

    fn fstat(&mut self) -> io::Result<StatBuf> {
        self.handles[0].fstat()
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.on_all_replicas(|h| h.fsync())
    }

    fn ftruncate(&mut self, size: u64) -> io::Result<()> {
        self.on_all_replicas(|h| h.ftruncate(size))
    }
}

impl FileSystem for MirroredFs {
    fn open(&self, path: &str, flags: OpenFlags, _mode: u32) -> io::Result<Box<dyn FileHandle>> {
        if flags.contains(OpenFlags::CREATE) {
            match self.create_file(path, flags) {
                Ok(h) => return Ok(h),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if flags.contains(OpenFlags::EXCLUSIVE) {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let set = self.read_set(path)?;
        let mut open_flags = OpenFlags::empty();
        for f in [OpenFlags::READ, OpenFlags::WRITE, OpenFlags::SYNC] {
            if flags.contains(f) {
                open_flags |= f;
            }
        }
        if open_flags.contains(OpenFlags::WRITE) {
            // Mutation must reach every replica to keep mirrors equal.
            let handles = self.open_all(&set, open_flags)?;
            let mut mirror = MirrorHandle {
                handles,
                parallel: self.pool.parallel_fanout(),
                preferred: 0,
            };
            if flags.contains(OpenFlags::TRUNCATE) {
                mirror.ftruncate(0)?;
            }
            Ok(Box::new(mirror))
        } else {
            // Read-only opens fail over to any live replica.
            self.open_any(&set, open_flags)
        }
    }

    fn stat(&self, path: &str) -> io::Result<StatBuf> {
        match self.read_set(path) {
            Ok(set) => {
                // Sequential failover in health order, like reads.
                let mut last: io::Error = io::ErrorKind::NotFound.into();
                for idx in self.health_order(&set) {
                    let (endpoint, data_path) = &set.replicas[idx];
                    match self.pool.with_conn(endpoint, |cfs| cfs.stat(data_path)) {
                        Ok(st) => {
                            self.pool.report_success(endpoint);
                            return Ok(st);
                        }
                        Err(e) => {
                            if is_transport_error(&e) {
                                self.pool.report_failure(endpoint);
                            }
                            last = e;
                        }
                    }
                }
                Err(last)
            }
            Err(e) if e.kind() == io::ErrorKind::IsADirectory => self.meta.stat(path),
            Err(e) => Err(e),
        }
    }

    fn unlink(&self, path: &str) -> io::Result<()> {
        let set = self.read_set(path)?;
        // Delete every replica concurrently. A dead or already-evicted
        // replica must not block the user from deleting the file, so
        // per-replica failures are swallowed.
        let pool = &self.pool;
        let jobs: Vec<_> = set
            .replicas
            .iter()
            .map(|(endpoint, data_path)| {
                move || {
                    let _ = pool.with_conn(endpoint, |cfs| cfs.unlink(data_path));
                }
            })
            .collect();
        run_fanout(pool.parallel_fanout() && set.replicas.len() > 1, jobs);
        self.meta.unlink(path)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.meta.rename(from, to)
    }

    fn mkdir(&self, path: &str, mode: u32) -> io::Result<()> {
        self.meta.mkdir(path, mode)
    }

    fn rmdir(&self, path: &str) -> io::Result<()> {
        self.meta.rmdir(path)
    }

    fn readdir(&self, path: &str) -> io::Result<Vec<String>> {
        self.meta.readdir(path)
    }

    fn truncate(&self, path: &str, size: u64) -> io::Result<()> {
        let mut h = self.open(path, OpenFlags::WRITE, 0)?;
        h.ftruncate(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_set_round_trip() {
        let s = MirrorSet {
            replicas: vec![
                ("h1:9094".into(), "/vol/a".into()),
                ("h2:9094".into(), "/vol/b".into()),
            ],
        };
        assert_eq!(MirrorSet::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn mirror_set_rejects_garbage() {
        assert!(MirrorSet::parse("").is_err());
        assert!(MirrorSet::parse("#tss-mirror-v1\n").is_err());
        assert!(MirrorSet::parse("#tss-mirror-v1\nnospace\n").is_err());
        assert!(MirrorSet::parse("#tss-stripe-v1\nh /p\n").is_err());
        // Declared count must match the replica list exactly.
        assert!(MirrorSet::parse("#tss-mirror-v1\n2\nh /p\n").is_err());
        assert!(MirrorSet::parse("#tss-mirror-v1\n1\nh /p\nh2 /q\n").is_err());
    }

    #[test]
    fn every_torn_prefix_is_invalid() {
        // A torn stub write must never leave a parseable set that
        // silently lost replicas.
        let full = MirrorSet {
            replicas: vec![
                ("h1:9094".into(), "/vol/a".into()),
                ("h2:9094".into(), "/vol/b".into()),
            ],
        }
        .render();
        for k in 0..full.len() {
            assert!(
                MirrorSet::parse(&full[..k]).is_err(),
                "torn prefix of {k} bytes parsed as healthy"
            );
        }
    }
}

//! A shared pool of data servers with checkout-based connection reuse.
//!
//! Every distributed abstraction (DPFS/DSFS stubs, striping,
//! mirroring) needs the same plumbing: a set of `endpoint + volume +
//! auth` servers, reusable [`Cfs`] connections to them, volume setup,
//! and a placement decision for new data. This type carries it once.
//!
//! ## Why checkout, not one shared connection
//!
//! A Chirp connection carries one RPC at a time, so a single cached
//! `Cfs` per endpoint serializes every concurrent operation against
//! that server behind one mutex — the bottleneck that flattens the
//! parallel fan-out data path. Instead the pool hands out *exclusive*
//! connections: [`ServerPool::checkout`] pops an idle connection (or
//! dials a new one), and the returned [`PooledConn`] guard checks it
//! back in on drop. Open file handles keep their guard for their whole
//! life, so two handles never contend for one TCP stream. On checkin
//! a broken connection is discarded rather than cached; at most
//! [`crate::stubfs::StubFsOptions::max_conns_per_endpoint`] idle
//! connections are kept per endpoint.

use std::collections::HashMap;
use std::io;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chirp_client::AuthMethod;
use chirp_proto::{OpenFlags, StatBuf};
use parking_lot::Mutex;

use crate::cfs::{Cfs, CfsConfig};
use crate::fs::{FileHandle, FileSystem};
use crate::stubfs::{DataServer, StubFsOptions};

/// Monotonic counters describing pool behaviour.
#[derive(Debug, Default)]
struct PoolCounters {
    checkouts: AtomicU64,
    checkins: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    discards: AtomicU64,
}

/// A point-in-time copy of the pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Connections handed out.
    pub checkouts: u64,
    /// Connections returned (every checkout is eventually checked in).
    pub checkins: u64,
    /// Checkouts served from the idle cache.
    pub hits: u64,
    /// Checkouts that had to build a fresh connection.
    pub misses: u64,
    /// Returned connections dropped instead of cached (broken, or the
    /// endpoint's idle cache was full).
    pub discards: u64,
}

struct PoolShared {
    servers: Vec<DataServer>,
    options: StubFsOptions,
    default_auth: Vec<AuthMethod>,
    idle: Mutex<HashMap<String, Vec<Cfs>>>,
    counters: PoolCounters,
}

impl PoolShared {
    fn build_conn(&self, endpoint: &str) -> Cfs {
        let auth = self
            .servers
            .iter()
            .find(|s| s.endpoint == endpoint)
            .map(|s| s.auth.clone())
            .unwrap_or_else(|| self.default_auth.clone());
        let mut cfg = CfsConfig::new(endpoint, auth);
        cfg.timeout = self.options.timeout;
        cfg.retry = self.options.retry;
        cfg.readahead = self.options.readahead;
        Cfs::new(cfg)
    }

    fn checkin(&self, cfs: Cfs) {
        self.counters.checkins.fetch_add(1, Ordering::Relaxed);
        // Health check: a connection that died mid-use must not be
        // handed to the next caller.
        if cfs.connection_is_broken() {
            self.counters.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut idle = self.idle.lock();
        let slot = idle.entry(cfs.endpoint().to_string()).or_default();
        if slot.len() < self.options.max_conns_per_endpoint.max(1) {
            slot.push(cfs);
        } else {
            self.counters.discards.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A connection-pooling view of a set of data servers.
pub struct ServerPool {
    shared: Arc<PoolShared>,
}

impl ServerPool {
    /// Build a pool over `servers` with shared connection `options`.
    pub fn new(servers: Vec<DataServer>, options: StubFsOptions) -> ServerPool {
        let default_auth = servers.first().map(|s| s.auth.clone()).unwrap_or_default();
        ServerPool {
            shared: Arc::new(PoolShared {
                servers,
                options,
                default_auth,
                idle: Mutex::new(HashMap::new()),
                counters: PoolCounters::default(),
            }),
        }
    }

    /// The pool members.
    pub fn servers(&self) -> &[DataServer] {
        &self.shared.servers
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.shared.servers.len()
    }

    /// True when the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.shared.servers.is_empty()
    }

    /// The shared options.
    pub fn options(&self) -> &StubFsOptions {
        &self.shared.options
    }

    /// True when multi-server operations should fan out concurrently.
    pub fn parallel_fanout(&self) -> bool {
        self.shared.options.parallel_fanout
    }

    /// Check out an exclusive connection to `endpoint`. Endpoints
    /// outside the pool (from old stubs after the pool changed) connect
    /// with the pool's default auth. Dialing stays lazy: nothing
    /// touches the network until the first operation on the guard.
    pub fn checkout(&self, endpoint: &str) -> PooledConn {
        self.shared
            .counters
            .checkouts
            .fetch_add(1, Ordering::Relaxed);
        let cached = self
            .shared
            .idle
            .lock()
            .get_mut(endpoint)
            .and_then(|v| v.pop());
        let cfs = match cached {
            Some(cfs) => {
                self.shared.counters.hits.fetch_add(1, Ordering::Relaxed);
                cfs
            }
            None => {
                self.shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                self.shared.build_conn(endpoint)
            }
        };
        PooledConn {
            cfs: Some(cfs),
            shared: self.shared.clone(),
        }
    }

    /// Run one operation on a checked-out connection, returning it to
    /// the pool before the result is handed back.
    pub fn with_conn<T>(
        &self,
        endpoint: &str,
        op: impl FnOnce(&Cfs) -> io::Result<T>,
    ) -> io::Result<T> {
        let conn = self.checkout(endpoint);
        op(&conn)
    }

    /// Open a file on `endpoint`, binding the checked-out connection to
    /// the returned handle for the handle's whole life — concurrent
    /// handles on one endpoint therefore use distinct connections.
    pub fn open(
        &self,
        endpoint: &str,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> io::Result<Box<dyn FileHandle>> {
        let conn = self.checkout(endpoint);
        let inner = conn.open(path, flags, mode)?;
        Ok(Box::new(PooledHandle { inner, _conn: conn }))
    }

    /// A snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            checkouts: c.checkouts.load(Ordering::Relaxed),
            checkins: c.checkins.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            discards: c.discards.load(Ordering::Relaxed),
        }
    }

    /// Idle connections currently cached for `endpoint`.
    pub fn idle_count(&self, endpoint: &str) -> usize {
        self.shared.idle.lock().get(endpoint).map_or(0, Vec::len)
    }

    /// Create each member's volume directory if missing.
    pub fn ensure_volumes(&self) -> io::Result<()> {
        for s in self.servers() {
            self.with_conn(&s.endpoint, |cfs| match cfs.mkdir(&s.volume, 0o755) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(()),
                Err(e) => Err(e),
            })?;
        }
        Ok(())
    }
}

/// An exclusively-held pool connection; checks itself back in on drop.
pub struct PooledConn {
    cfs: Option<Cfs>,
    shared: Arc<PoolShared>,
}

impl Deref for PooledConn {
    type Target = Cfs;

    fn deref(&self) -> &Cfs {
        self.cfs.as_ref().expect("present until drop")
    }
}

impl Drop for PooledConn {
    fn drop(&mut self) {
        if let Some(cfs) = self.cfs.take() {
            self.shared.checkin(cfs);
        }
    }
}

/// A file handle that owns the pool connection it was opened over.
/// Field order matters: `inner` must drop first so the descriptor's
/// CLOSE goes out before the connection returns to the pool.
struct PooledHandle {
    inner: Box<dyn FileHandle>,
    // Held only for its Drop: checks the connection back in.
    _conn: PooledConn,
}

impl FileHandle for PooledHandle {
    fn pread(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        self.inner.pread(buf, offset)
    }

    fn pwrite(&mut self, buf: &[u8], offset: u64) -> io::Result<usize> {
        self.inner.pwrite(buf, offset)
    }

    fn fstat(&mut self) -> io::Result<StatBuf> {
        self.inner.fstat()
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.inner.fsync()
    }

    fn ftruncate(&mut self, size: u64) -> io::Result<()> {
        self.inner.ftruncate(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;

    fn pool(n: usize) -> ServerPool {
        let servers = (0..n)
            .map(|i| DataServer::new(&format!("host{i}:9094"), "/vol", Vec::new()))
            .collect();
        ServerPool::new(servers, StubFsOptions::default())
    }

    #[test]
    fn checkout_miss_then_hit() {
        let p = pool(2);
        let a = p.checkout("host0:9094");
        assert_eq!(a.endpoint(), "host0:9094");
        drop(a);
        // The returned (never-dialed, unbroken) connection is cached.
        assert_eq!(p.idle_count("host0:9094"), 1);
        let _b = p.checkout("host0:9094");
        let s = p.stats();
        assert_eq!(s.checkouts, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_connections() {
        let p = pool(1);
        let a = p.checkout("host0:9094");
        let b = p.checkout("host0:9094");
        assert!(!std::ptr::eq::<Cfs>(&*a, &*b));
        drop(a);
        drop(b);
        let s = p.stats();
        assert_eq!(s.checkouts, s.checkins);
        assert_eq!(s.misses, 2);
        assert_eq!(p.idle_count("host0:9094"), 2);
    }

    #[test]
    fn idle_cache_is_capped_per_endpoint() {
        let options = StubFsOptions {
            max_conns_per_endpoint: 2,
            ..StubFsOptions::default()
        };
        let servers = vec![DataServer::new("host0:9094", "/vol", Vec::new())];
        let p = ServerPool::new(servers, options);
        let guards: Vec<_> = (0..4).map(|_| p.checkout("host0:9094")).collect();
        drop(guards);
        assert_eq!(p.idle_count("host0:9094"), 2);
        let s = p.stats();
        assert_eq!(s.checkins, 4);
        assert_eq!(s.discards, 2);
    }

    #[test]
    fn unknown_endpoints_still_connect_lazily() {
        let p = pool(1);
        // No network happens at checkout time; only shape is checked.
        let c = p.checkout("stranger:1");
        assert_eq!(c.endpoint(), "stranger:1");
    }

    #[test]
    fn checkouts_balance_checkins_across_threads() {
        let p = pool(2);
        std::thread::scope(|s| {
            for t in 0..8 {
                let p = &p;
                s.spawn(move || {
                    for i in 0..50 {
                        let endpoint = format!("host{}:9094", (t + i) % 2);
                        let _c = p.checkout(&endpoint);
                    }
                });
            }
        });
        let s = p.stats();
        assert_eq!(s.checkouts, 400);
        assert_eq!(s.checkins, 400);
        assert_eq!(s.hits + s.misses, s.checkouts);
        let cap = StubFsOptions::default().max_conns_per_endpoint;
        assert!(p.idle_count("host0:9094") <= cap);
        assert!(p.idle_count("host1:9094") <= cap);
    }

    #[test]
    fn placement_over_pool_len() {
        let p = pool(3);
        let rr = Placement::round_robin();
        let picks: Vec<usize> = (0..6).map(|_| rr.choose(p.len())).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }
}

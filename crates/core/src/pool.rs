//! A shared pool of data servers with cached connections.
//!
//! Every distributed abstraction (DPFS/DSFS stubs, striping,
//! mirroring) needs the same plumbing: a set of `endpoint + volume +
//! auth` servers, one cached [`Cfs`] connection per endpoint, volume
//! setup, and a placement decision for new data. This type carries it
//! once.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use chirp_client::AuthMethod;
use parking_lot::Mutex;

use crate::cfs::{Cfs, CfsConfig};
use crate::fs::FileSystem;
use crate::stubfs::{DataServer, StubFsOptions};

/// A connection-cached pool of data servers.
pub struct ServerPool {
    servers: Vec<DataServer>,
    options: StubFsOptions,
    conns: Mutex<HashMap<String, Arc<Cfs>>>,
    default_auth: Vec<AuthMethod>,
}

impl ServerPool {
    /// Build a pool over `servers` with shared connection `options`.
    pub fn new(servers: Vec<DataServer>, options: StubFsOptions) -> ServerPool {
        let default_auth = servers.first().map(|s| s.auth.clone()).unwrap_or_default();
        ServerPool {
            servers,
            options,
            conns: Mutex::new(HashMap::new()),
            default_auth,
        }
    }

    /// The pool members.
    pub fn servers(&self) -> &[DataServer] {
        &self.servers
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The shared options.
    pub fn options(&self) -> &StubFsOptions {
        &self.options
    }

    /// A cached connection to `endpoint`. Endpoints outside the pool
    /// (from old stubs after the pool changed) connect with the pool's
    /// default auth.
    pub fn conn_for(&self, endpoint: &str) -> Arc<Cfs> {
        let mut conns = self.conns.lock();
        conns
            .entry(endpoint.to_string())
            .or_insert_with(|| {
                let auth = self
                    .servers
                    .iter()
                    .find(|s| s.endpoint == endpoint)
                    .map(|s| s.auth.clone())
                    .unwrap_or_else(|| self.default_auth.clone());
                let mut cfg = CfsConfig::new(endpoint, auth);
                cfg.timeout = self.options.timeout;
                cfg.retry = self.options.retry;
                Arc::new(Cfs::new(cfg))
            })
            .clone()
    }

    /// Create each member's volume directory if missing.
    pub fn ensure_volumes(&self) -> io::Result<()> {
        for s in &self.servers {
            let cfs = self.conn_for(&s.endpoint);
            match cfs.mkdir(&s.volume, 0o755) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;

    fn pool(n: usize) -> ServerPool {
        let servers = (0..n)
            .map(|i| DataServer::new(&format!("host{i}:9094"), "/vol", Vec::new()))
            .collect();
        ServerPool::new(servers, StubFsOptions::default())
    }

    #[test]
    fn connections_are_cached_per_endpoint() {
        let p = pool(2);
        let a = p.conn_for("host0:9094");
        let b = p.conn_for("host0:9094");
        let c = p.conn_for("host1:9094");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn unknown_endpoints_still_connect_lazily() {
        let p = pool(1);
        // No network happens at conn_for time; only shape is checked.
        let c = p.conn_for("stranger:1");
        assert_eq!(c.endpoint(), "stranger:1");
    }

    #[test]
    fn placement_over_pool_len() {
        let p = pool(3);
        let rr = Placement::round_robin();
        let picks: Vec<usize> = (0..6).map(|_| rr.choose(p.len())).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }
}

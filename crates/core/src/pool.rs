//! A shared pool of data servers with checkout-based connection reuse.
//!
//! Every distributed abstraction (DPFS/DSFS stubs, striping,
//! mirroring) needs the same plumbing: a set of `endpoint + volume +
//! auth` servers, reusable [`Cfs`] connections to them, volume setup,
//! and a placement decision for new data. This type carries it once.
//!
//! ## Why checkout, not one shared connection
//!
//! A Chirp connection carries one RPC at a time, so a single cached
//! `Cfs` per endpoint serializes every concurrent operation against
//! that server behind one mutex — the bottleneck that flattens the
//! parallel fan-out data path. Instead the pool hands out *exclusive*
//! connections: [`ServerPool::checkout`] pops an idle connection (or
//! dials a new one), and the returned [`PooledConn`] guard checks it
//! back in on drop. Open file handles keep their guard for their whole
//! life, so two handles never contend for one TCP stream. On checkin
//! a broken connection is discarded rather than cached; at most
//! [`crate::stubfs::StubFsOptions::max_conns_per_endpoint`] idle
//! connections are kept per endpoint.

use std::collections::HashMap;
use std::io;
use std::ops::Deref;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use chirp_client::AuthMethod;
use chirp_proto::Tick;
use chirp_proto::{OpenFlags, StatBuf};
use parking_lot::Mutex;

use crate::cfs::{Cfs, CfsConfig};
use crate::fs::{FileHandle, FileSystem};
use crate::stubfs::{DataServer, StubFsOptions};

/// Prebuilt handles into the pool's telemetry registry. The registry
/// owns the backing atomics; these are cached so the hot paths bump a
/// counter without touching the registration lock.
#[derive(Debug)]
struct PoolCounters {
    checkouts: telemetry::Counter,
    checkins: telemetry::Counter,
    hits: telemetry::Counter,
    misses: telemetry::Counter,
    discards: telemetry::Counter,
    evictions: telemetry::Counter,
    failures: telemetry::Counter,
    breaker_trips: telemetry::Counter,
    /// `client.retries` in the same registry: every connection the
    /// pool builds records into it (see [`PoolShared::build_conn`]),
    /// so this one handle aggregates recovery work pool-wide.
    retries: telemetry::Counter,
}

impl PoolCounters {
    fn new(registry: &telemetry::Registry) -> PoolCounters {
        PoolCounters {
            checkouts: registry.counter("pool.checkouts"),
            checkins: registry.counter("pool.checkins"),
            hits: registry.counter("pool.hits"),
            misses: registry.counter("pool.misses"),
            discards: registry.counter("pool.discards"),
            evictions: registry.counter("pool.evictions"),
            failures: registry.counter("pool.failures"),
            breaker_trips: registry.counter("pool.breaker_trips"),
            retries: registry.counter("client.retries"),
        }
    }
}

/// A point-in-time copy of the pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Connections handed out.
    pub checkouts: u64,
    /// Connections returned (every checkout is eventually checked in).
    pub checkins: u64,
    /// Checkouts served from the idle cache.
    pub hits: u64,
    /// Checkouts that had to build a fresh connection.
    pub misses: u64,
    /// Returned connections dropped instead of cached (broken, or the
    /// endpoint's idle cache was full).
    pub discards: u64,
    /// Idle connections dropped for exceeding `max_idle` age.
    pub evictions: u64,
    /// Endpoint failures reported against pool members.
    pub failures: u64,
    /// Times an endpoint's circuit breaker opened.
    pub breaker_trips: u64,
    /// Recovery retries performed by connections this pool built.
    pub retries: u64,
}

/// Per-endpoint circuit-breaker state: `Closed` is normal service;
/// after `breaker_threshold` consecutive reported failures the breaker
/// `Open`s and the endpoint is reported unavailable until the cooldown
/// elapses, when one `HalfOpen` probe is allowed through — its outcome
/// re-closes or re-opens the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal service.
    Closed,
    /// Rejecting the endpoint until the cooldown deadline.
    Open,
    /// One probe allowed through; the next report decides.
    HalfOpen,
}

#[derive(Debug)]
struct EndpointHealth {
    consecutive_failures: u32,
    state: BreakerState,
    opened_at: Option<Tick>,
}

impl Default for EndpointHealth {
    fn default() -> EndpointHealth {
        EndpointHealth {
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at: None,
        }
    }
}

struct PoolShared {
    servers: Vec<DataServer>,
    options: StubFsOptions,
    default_auth: Vec<AuthMethod>,
    idle: Mutex<HashMap<String, Vec<(Cfs, Tick)>>>,
    health: Mutex<HashMap<String, EndpointHealth>>,
    counters: PoolCounters,
    /// The registry behind `counters`, installed into every connection
    /// the pool builds so `client.*` metrics aggregate pool-wide.
    registry: telemetry::Registry,
    /// Legacy aggregate retry counter, still shared into each `Cfs` so
    /// [`crate::cfs::Cfs::retries`] keeps working for pool members.
    retries: Arc<AtomicU64>,
}

impl PoolShared {
    fn build_conn(&self, endpoint: &str) -> Cfs {
        let auth = self
            .servers
            .iter()
            .find(|s| s.endpoint == endpoint)
            .map(|s| s.auth.clone())
            .unwrap_or_else(|| self.default_auth.clone());
        let mut cfg = CfsConfig::new(endpoint, auth);
        cfg.timeout = self.options.timeout;
        cfg.retry = self.options.retry;
        cfg.readahead = self.options.readahead;
        cfg.pipeline_depth = self.options.pipeline_depth;
        cfg.dialer = self.options.dialer.clone();
        cfg.clock = self.options.clock.clone();
        cfg.telemetry = self.registry.clone();
        Cfs::new(cfg).with_retry_counter(self.retries.clone())
    }

    fn checkin(&self, cfs: Cfs) {
        self.counters.checkins.inc();
        // Health check: a connection that died mid-use must not be
        // handed to the next caller.
        if cfs.connection_is_broken() {
            self.counters.discards.inc();
            return;
        }
        let mut idle = self.idle.lock();
        let slot = idle.entry(cfs.endpoint().to_string()).or_default();
        if slot.len() < self.options.max_conns_per_endpoint.max(1) {
            slot.push((cfs, self.options.clock.now()));
        } else {
            self.counters.discards.inc();
        }
    }

    /// Pop the freshest non-expired idle connection for `endpoint`,
    /// evicting every entry that has outlived `max_idle` on the way.
    fn pop_idle(&self, endpoint: &str) -> Option<Cfs> {
        let mut idle = self.idle.lock();
        let slot = idle.get_mut(endpoint)?;
        let now = self.options.clock.now();
        while let Some((cfs, since)) = slot.pop() {
            if now.duration_since(since) <= self.options.max_idle {
                return Some(cfs);
            }
            self.counters.evictions.inc();
        }
        None
    }

    fn report_failure(&self, endpoint: &str) {
        self.counters.failures.inc();
        if self.options.breaker_threshold == 0 {
            return;
        }
        let mut health = self.health.lock();
        let h = health.entry(endpoint.to_string()).or_default();
        h.consecutive_failures += 1;
        let tripped = match h.state {
            BreakerState::Closed => h.consecutive_failures >= self.options.breaker_threshold,
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        };
        if tripped {
            h.state = BreakerState::Open;
            h.opened_at = Some(self.options.clock.now());
            self.counters.breaker_trips.inc();
        }
    }

    fn report_success(&self, endpoint: &str) {
        let mut health = self.health.lock();
        if let Some(h) = health.get_mut(endpoint) {
            h.consecutive_failures = 0;
            h.state = BreakerState::Closed;
            h.opened_at = None;
        }
    }

    /// Whether callers should try `endpoint` right now. An `Open`
    /// breaker transitions to `HalfOpen` once its cooldown elapses,
    /// letting exactly this caller probe it.
    fn endpoint_available(&self, endpoint: &str) -> bool {
        let mut health = self.health.lock();
        let Some(h) = health.get_mut(endpoint) else {
            return true;
        };
        match h.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let cooled = h.opened_at.is_none_or(|t| {
                    self.options.clock.elapsed_since(t) >= self.options.breaker_cooldown
                });
                if cooled {
                    h.state = BreakerState::HalfOpen;
                }
                cooled
            }
        }
    }
}

/// A connection-pooling view of a set of data servers. Cloning is
/// cheap and shares the pool (same idle cache, counters, breakers).
#[derive(Clone)]
pub struct ServerPool {
    shared: Arc<PoolShared>,
}

impl ServerPool {
    /// Build a pool over `servers` with shared connection `options`.
    pub fn new(servers: Vec<DataServer>, options: StubFsOptions) -> ServerPool {
        let default_auth = servers.first().map(|s| s.auth.clone()).unwrap_or_default();
        let registry = telemetry::Registry::default();
        ServerPool {
            shared: Arc::new(PoolShared {
                servers,
                options,
                default_auth,
                idle: Mutex::new(HashMap::new()),
                health: Mutex::new(HashMap::new()),
                counters: PoolCounters::new(&registry),
                registry,
                retries: Arc::new(AtomicU64::new(0)),
            }),
        }
    }

    /// The pool members.
    pub fn servers(&self) -> &[DataServer] {
        &self.shared.servers
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.shared.servers.len()
    }

    /// True when the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.shared.servers.is_empty()
    }

    /// The shared options.
    pub fn options(&self) -> &StubFsOptions {
        &self.shared.options
    }

    /// True when multi-server operations should fan out concurrently.
    pub fn parallel_fanout(&self) -> bool {
        self.shared.options.parallel_fanout
    }

    /// Check out an exclusive connection to `endpoint`. Endpoints
    /// outside the pool (from old stubs after the pool changed) connect
    /// with the pool's default auth. Dialing stays lazy: nothing
    /// touches the network until the first operation on the guard.
    pub fn checkout(&self, endpoint: &str) -> PooledConn {
        self.shared.counters.checkouts.inc();
        let cached = self.shared.pop_idle(endpoint);
        let cfs = match cached {
            Some(cfs) => {
                self.shared.counters.hits.inc();
                cfs
            }
            None => {
                self.shared.counters.misses.inc();
                self.shared.build_conn(endpoint)
            }
        };
        PooledConn {
            cfs: Some(cfs),
            shared: self.shared.clone(),
        }
    }

    /// Run one operation on a checked-out connection, returning it to
    /// the pool before the result is handed back.
    pub fn with_conn<T>(
        &self,
        endpoint: &str,
        op: impl FnOnce(&Cfs) -> io::Result<T>,
    ) -> io::Result<T> {
        let conn = self.checkout(endpoint);
        op(&conn)
    }

    /// Open a file on `endpoint`, binding the checked-out connection to
    /// the returned handle for the handle's whole life — concurrent
    /// handles on one endpoint therefore use distinct connections.
    pub fn open(
        &self,
        endpoint: &str,
        path: &str,
        flags: OpenFlags,
        mode: u32,
    ) -> io::Result<Box<dyn FileHandle>> {
        let conn = self.checkout(endpoint);
        let inner = conn.open(path, flags, mode)?;
        Ok(Box::new(PooledHandle { inner, _conn: conn }))
    }

    /// A snapshot of the pool counters — a thin view over the
    /// telemetry registry the pool records into.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            checkouts: c.checkouts.get(),
            checkins: c.checkins.get(),
            hits: c.hits.get(),
            misses: c.misses.get(),
            discards: c.discards.get(),
            evictions: c.evictions.get(),
            failures: c.failures.get(),
            breaker_trips: c.breaker_trips.get(),
            retries: c.retries.get(),
        }
    }

    /// The telemetry registry behind the pool's counters. Shared with
    /// every connection the pool builds, so one snapshot covers both
    /// `pool.*` and `client.*` metrics for the whole pool.
    pub fn telemetry(&self) -> &telemetry::Registry {
        &self.shared.registry
    }

    /// Idle connections currently cached for `endpoint`.
    pub fn idle_count(&self, endpoint: &str) -> usize {
        self.shared.idle.lock().get(endpoint).map_or(0, Vec::len)
    }

    /// Record a failed operation against `endpoint`; enough in a row
    /// opens the endpoint's circuit breaker.
    pub fn report_failure(&self, endpoint: &str) {
        self.shared.report_failure(endpoint);
    }

    /// Record a successful operation against `endpoint`, closing its
    /// breaker and zeroing its failure streak.
    pub fn report_success(&self, endpoint: &str) {
        self.shared.report_success(endpoint);
    }

    /// Whether `endpoint` should be tried right now. `false` only
    /// while the endpoint's breaker is open and still cooling down;
    /// after the cooldown one caller gets `true` as the half-open
    /// probe.
    pub fn endpoint_available(&self, endpoint: &str) -> bool {
        self.shared.endpoint_available(endpoint)
    }

    /// The breaker state of `endpoint` (for tests and monitoring).
    pub fn breaker_state(&self, endpoint: &str) -> BreakerState {
        self.shared
            .health
            .lock()
            .get(endpoint)
            .map_or(BreakerState::Closed, |h| h.state)
    }

    /// Create each member's volume directory if missing.
    pub fn ensure_volumes(&self) -> io::Result<()> {
        for s in self.servers() {
            self.with_conn(&s.endpoint, |cfs| match cfs.mkdir(&s.volume, 0o755) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(()),
                Err(e) => Err(e),
            })?;
        }
        Ok(())
    }
}

/// An exclusively-held pool connection; checks itself back in on drop.
pub struct PooledConn {
    cfs: Option<Cfs>,
    shared: Arc<PoolShared>,
}

impl Deref for PooledConn {
    type Target = Cfs;

    fn deref(&self) -> &Cfs {
        self.cfs.as_ref().expect("present until drop")
    }
}

impl Drop for PooledConn {
    fn drop(&mut self) {
        if let Some(cfs) = self.cfs.take() {
            self.shared.checkin(cfs);
        }
    }
}

/// A file handle that owns the pool connection it was opened over.
/// Field order matters: `inner` must drop first so the descriptor's
/// CLOSE goes out before the connection returns to the pool.
struct PooledHandle {
    inner: Box<dyn FileHandle>,
    // Held only for its Drop: checks the connection back in.
    _conn: PooledConn,
}

impl FileHandle for PooledHandle {
    fn pread(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        self.inner.pread(buf, offset)
    }

    fn pwrite(&mut self, buf: &[u8], offset: u64) -> io::Result<usize> {
        self.inner.pwrite(buf, offset)
    }

    fn fstat(&mut self) -> io::Result<StatBuf> {
        self.inner.fstat()
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.inner.fsync()
    }

    fn ftruncate(&mut self, size: u64) -> io::Result<()> {
        self.inner.ftruncate(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;

    fn pool(n: usize) -> ServerPool {
        let servers = (0..n)
            .map(|i| DataServer::new(&format!("host{i}:9094"), "/vol", Vec::new()))
            .collect();
        ServerPool::new(servers, StubFsOptions::default())
    }

    #[test]
    fn checkout_miss_then_hit() {
        let p = pool(2);
        let a = p.checkout("host0:9094");
        assert_eq!(a.endpoint(), "host0:9094");
        drop(a);
        // The returned (never-dialed, unbroken) connection is cached.
        assert_eq!(p.idle_count("host0:9094"), 1);
        let _b = p.checkout("host0:9094");
        let s = p.stats();
        assert_eq!(s.checkouts, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_connections() {
        let p = pool(1);
        let a = p.checkout("host0:9094");
        let b = p.checkout("host0:9094");
        assert!(!std::ptr::eq::<Cfs>(&*a, &*b));
        drop(a);
        drop(b);
        let s = p.stats();
        assert_eq!(s.checkouts, s.checkins);
        assert_eq!(s.misses, 2);
        assert_eq!(p.idle_count("host0:9094"), 2);
    }

    #[test]
    fn idle_cache_is_capped_per_endpoint() {
        let options = StubFsOptions {
            max_conns_per_endpoint: 2,
            ..StubFsOptions::default()
        };
        let servers = vec![DataServer::new("host0:9094", "/vol", Vec::new())];
        let p = ServerPool::new(servers, options);
        let guards: Vec<_> = (0..4).map(|_| p.checkout("host0:9094")).collect();
        drop(guards);
        assert_eq!(p.idle_count("host0:9094"), 2);
        let s = p.stats();
        assert_eq!(s.checkins, 4);
        assert_eq!(s.discards, 2);
    }

    #[test]
    fn unknown_endpoints_still_connect_lazily() {
        let p = pool(1);
        // No network happens at checkout time; only shape is checked.
        let c = p.checkout("stranger:1");
        assert_eq!(c.endpoint(), "stranger:1");
    }

    #[test]
    fn checkouts_balance_checkins_across_threads() {
        let p = pool(2);
        std::thread::scope(|s| {
            for t in 0..8 {
                let p = &p;
                s.spawn(move || {
                    for i in 0..50 {
                        let endpoint = format!("host{}:9094", (t + i) % 2);
                        let _c = p.checkout(&endpoint);
                    }
                });
            }
        });
        let s = p.stats();
        assert_eq!(s.checkouts, 400);
        assert_eq!(s.checkins, 400);
        assert_eq!(s.hits + s.misses, s.checkouts);
        let cap = StubFsOptions::default().max_conns_per_endpoint;
        assert!(p.idle_count("host0:9094") <= cap);
        assert!(p.idle_count("host1:9094") <= cap);
    }

    #[test]
    fn idle_connections_past_max_idle_are_evicted_at_checkout() {
        // Idle aging runs on the pool's clock, so the test advances a
        // virtual one instead of sleeping: exact and instant.
        let clock = chirp_proto::Clock::fresh_virtual();
        let options = StubFsOptions {
            max_idle: std::time::Duration::from_millis(20),
            clock: clock.clone(),
            ..StubFsOptions::default()
        };
        let servers = vec![DataServer::new("host0:9094", "/vol", Vec::new())];
        let p = ServerPool::new(servers, options);
        drop(p.checkout("host0:9094"));
        assert_eq!(p.idle_count("host0:9094"), 1);
        clock.sleep(std::time::Duration::from_millis(40));
        // The aged entry must not be handed out: the second checkout
        // evicts it and builds a fresh connection.
        drop(p.checkout("host0:9094"));
        let s = p.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_through_half_open() {
        // Cooldowns elapse on the injected clock; no real waiting.
        let clock = chirp_proto::Clock::fresh_virtual();
        let options = StubFsOptions {
            breaker_threshold: 2,
            breaker_cooldown: std::time::Duration::from_millis(30),
            clock: clock.clone(),
            ..StubFsOptions::default()
        };
        let servers = vec![DataServer::new("host0:9094", "/vol", Vec::new())];
        let p = ServerPool::new(servers, options);
        let ep = "host0:9094";

        assert!(p.endpoint_available(ep));
        p.report_failure(ep);
        assert_eq!(p.breaker_state(ep), BreakerState::Closed);
        assert!(p.endpoint_available(ep));
        p.report_failure(ep);
        assert_eq!(p.breaker_state(ep), BreakerState::Open);
        assert!(!p.endpoint_available(ep));

        // After the cooldown a single half-open probe is allowed; a
        // failed probe re-opens the breaker, a success re-closes it.
        clock.sleep(std::time::Duration::from_millis(40));
        assert!(p.endpoint_available(ep));
        assert_eq!(p.breaker_state(ep), BreakerState::HalfOpen);
        p.report_failure(ep);
        assert_eq!(p.breaker_state(ep), BreakerState::Open);
        assert!(!p.endpoint_available(ep));

        clock.sleep(std::time::Duration::from_millis(40));
        assert!(p.endpoint_available(ep));
        p.report_success(ep);
        assert_eq!(p.breaker_state(ep), BreakerState::Closed);
        assert!(p.endpoint_available(ep));
        assert_eq!(p.stats().breaker_trips, 2);
        assert_eq!(p.stats().failures, 3);
    }

    #[test]
    fn placement_over_pool_len() {
        let p = pool(3);
        let rr = Placement::round_robin();
        let picks: Vec<usize> = (0..6).map(|_| rr.choose(p.len())).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }
}

//! The §5 create/delete protocol as session types: crash-safe update
//! ordering the compiler enforces.
//!
//! A stub filesystem updates two stores per file — the directory tree
//! (the stub) and a file server (the data). Neither pair of updates is
//! atomic, so the *order* is the whole crash-consistency story:
//!
//! ```text
//! create:  Placed ──write_stub()──▶ StubWritten ──create_data()──▶ handle
//!          (nothing durable)        (stub fsync'd,                 (data file
//!                                    dir fsync'd)                   exists)
//!
//! delete:  StubLive ──unlink_data()──▶ DataUnlinked ──unlink_stub()──▶ ()
//!          (stub read)                 (data gone)                    (entry gone)
//! ```
//!
//! Stub-then-data on create and data-then-stub on delete guarantee that
//! a crash between the two steps leaves at worst a *dangling stub* —
//! which reads as "file not found" — and never unreferenced data. The
//! transactions below encode each protocol as a typestate (in the style
//! of SquirrelFS): `create_data` exists only on a transaction whose
//! type says the stub is already durable, and `unlink_stub` only on one
//! whose type says the data is already gone. Misordered protocol code
//! is not a failing test; it is a type error.
//!
//! Creating data before the stub does not compile:
//!
//! ```compile_fail,E0599
//! use chirp_proto::OpenFlags;
//! use tss_core::StubFs;
//!
//! fn data_before_stub(fs: &StubFs) -> std::io::Result<()> {
//!     let txn = fs.begin_create("/f")?;
//!     // error[E0599]: no method named `create_data` found for
//!     // `CreateTxn<'_, Placed>` — the stub is not durable yet.
//!     let _h = txn.create_data(OpenFlags::WRITE, 0o644)?;
//!     Ok(())
//! }
//! ```
//!
//! Removing the stub before the data does not compile either:
//!
//! ```compile_fail,E0599
//! use tss_core::StubFs;
//!
//! fn stub_before_data(fs: &StubFs) -> std::io::Result<()> {
//!     let txn = fs.begin_delete("/f")?;
//!     // error[E0599]: no method named `unlink_stub` found for
//!     // `DeleteTxn<'_, StubLive>` — the data file still exists.
//!     txn.unlink_stub()?;
//!     Ok(())
//! }
//! ```
//!
//! And each step consumes the transaction, so a step cannot run twice:
//!
//! ```compile_fail,E0382
//! use tss_core::StubFs;
//!
//! fn stub_written_twice(fs: &StubFs) -> std::io::Result<()> {
//!     let txn = fs.begin_create("/f")?;
//!     let staged = txn.write_stub()?;
//!     let _again = txn.write_stub()?; // error[E0382]: use of moved value
//!     drop(staged);
//!     Ok(())
//! }
//! ```

use std::io;
use std::marker::PhantomData;

use chirp_proto::persist::DurabilityPoint;
use chirp_proto::OpenFlags;

use crate::fs::{split_parent, FileHandle, FileSystem};
use crate::placement::unique_data_name;
use crate::stub::Stub;
use crate::stubfs::StubFs;

mod sealed {
    pub trait Sealed {}
}

/// A state of the create protocol (sealed: the two states below are
/// the only ones).
pub trait CreateState: sealed::Sealed {}
/// A state of the delete protocol (sealed).
pub trait DeleteState: sealed::Sealed {}

/// Create state 1: a server and data name are chosen; nothing durable.
pub enum Placed {}
/// Create state 2: the stub is durable in the tree (file and parent
/// directory fsync'd); the data file does not exist yet.
pub enum StubWritten {}
/// Delete state 1: the stub has been read; both stores still hold the
/// file.
pub enum StubLive {}
/// Delete state 2: the data file is gone; only the stub remains.
pub enum DataUnlinked {}

impl sealed::Sealed for Placed {}
impl sealed::Sealed for StubWritten {}
impl sealed::Sealed for StubLive {}
impl sealed::Sealed for DataUnlinked {}
impl CreateState for Placed {}
impl CreateState for StubWritten {}
impl DeleteState for StubLive {}
impl DeleteState for DataUnlinked {}

/// An in-flight file create, parameterized by protocol state. Obtain
/// one with [`StubFs::begin_create`]; drive it with
/// [`CreateTxn::write_stub`] then
/// [`create_data`](CreateTxn::create_data).
#[must_use = "a create transaction does nothing until driven through write_stub and create_data"]
pub struct CreateTxn<'fs, S: CreateState> {
    fs: &'fs StubFs,
    path: String,
    stub: Stub,
    _state: PhantomData<S>,
}

impl<'fs, S: CreateState> CreateTxn<'fs, S> {
    /// The stub this create will (or did) write: chosen endpoint and
    /// unique data path.
    pub fn stub(&self) -> &Stub {
        &self.stub
    }

    /// The tree path being created.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl<'fs> CreateTxn<'fs, Placed> {
    /// Step 1: choose a server and a unique data file name. Nothing is
    /// durable yet; dropping the transaction here abandons nothing.
    pub(crate) fn begin(fs: &'fs StubFs, path: &str) -> io::Result<CreateTxn<'fs, Placed>> {
        if fs.pool.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no data servers in pool",
            ));
        }
        let server = &fs.pool.servers()[fs.placement.choose(fs.pool.len())];
        let data_path = format!("{}/{}", server.volume, unique_data_name());
        Ok(CreateTxn {
            fs,
            path: path.to_string(),
            stub: Stub {
                endpoint: server.endpoint.clone(),
                data_path,
            },
            _state: PhantomData,
        })
    }

    /// Step 2: durably create the stub entry — exclusive create (so a
    /// concurrent create of the same name aborts cleanly), write, fsync
    /// the stub, fsync the parent directory. Only after all four is the
    /// stub the paper's "commit point": a crash anywhere inside this
    /// method leaves either no entry or a dangling one, both of which
    /// read as "file not found".
    pub fn write_stub(self) -> io::Result<CreateTxn<'fs, StubWritten>> {
        let fs = self.fs;
        fs.persist.reached(DurabilityPoint::StubWrite, &self.path)?;
        let mut handle = fs.meta.open(
            &self.path,
            OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE,
            0o644,
        )?;
        handle.pwrite(self.stub.render().as_bytes(), 0)?;
        handle.fsync()?;
        drop(handle);
        if let Some((parent, _)) = split_parent(&self.path) {
            fs.meta.sync_dir(&parent)?;
        }
        Ok(CreateTxn {
            fs,
            path: self.path,
            stub: self.stub,
            _state: PhantomData,
        })
    }
}

impl CreateTxn<'_, StubWritten> {
    /// Step 3: create the data file the stub points at, exclusively.
    /// The returned handle owns a pooled connection, so concurrent
    /// handles never share a stream.
    ///
    /// On an *explicit* failure (the server said no — out of space,
    /// permission) the stub is removed again so a knowable dangling
    /// entry is not left behind; that removal is itself a durability
    /// point, because a crashed process cannot clean up.
    pub fn create_data(self, flags: OpenFlags, mode: u32) -> io::Result<Box<dyn FileHandle>> {
        let fs = self.fs;
        fs.persist
            .reached(DurabilityPoint::DataCreate, &self.stub.data_path)?;
        let data_flags = flags | OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE;
        match fs
            .pool
            .open(&self.stub.endpoint, &self.stub.data_path, data_flags, mode)
        {
            Ok(h) => Ok(h),
            Err(e) => {
                if fs
                    .persist
                    .reached(DurabilityPoint::StubUnlink, &self.path)
                    .is_ok()
                {
                    let _ = fs.meta.unlink(&self.path);
                }
                Err(e)
            }
        }
    }
}

/// An in-flight file delete, parameterized by protocol state. Obtain
/// one with [`StubFs::begin_delete`]; drive it with
/// [`DeleteTxn::unlink_data`] then
/// [`unlink_stub`](DeleteTxn::unlink_stub).
#[must_use = "a delete transaction does nothing until driven through unlink_data and unlink_stub"]
pub struct DeleteTxn<'fs, S: DeleteState> {
    fs: &'fs StubFs,
    path: String,
    stub: Stub,
    _state: PhantomData<S>,
}

impl<'fs, S: DeleteState> DeleteTxn<'fs, S> {
    /// The stub being deleted.
    pub fn stub(&self) -> &Stub {
        &self.stub
    }

    /// The tree path being deleted.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl<'fs> DeleteTxn<'fs, StubLive> {
    /// Read the live stub; fails with `NotFound` if the entry is
    /// missing or dangling-from-birth (zero-length stub).
    pub(crate) fn begin(fs: &'fs StubFs, path: &str) -> io::Result<DeleteTxn<'fs, StubLive>> {
        let stub = fs.read_stub(path)?;
        Ok(DeleteTxn {
            fs,
            path: path.to_string(),
            stub,
            _state: PhantomData,
        })
    }

    /// Step 1: remove the data file. A crash after this leaves a
    /// dangling stub — "file not found", and repairable — never
    /// unreferenced data. A data file already gone (dangling stub)
    /// counts as removed.
    pub fn unlink_data(self) -> io::Result<DeleteTxn<'fs, DataUnlinked>> {
        let fs = self.fs;
        fs.persist
            .reached(DurabilityPoint::DataUnlink, &self.stub.data_path)?;
        fs.pool.with_conn(&self.stub.endpoint, |cfs| {
            match cfs.unlink(&self.stub.data_path) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            }
        })?;
        Ok(DeleteTxn {
            fs,
            path: self.path,
            stub: self.stub,
            _state: PhantomData,
        })
    }
}

impl DeleteTxn<'_, DataUnlinked> {
    /// Step 2: remove the stub entry and flush the parent directory.
    pub fn unlink_stub(self) -> io::Result<()> {
        let fs = self.fs;
        fs.persist
            .reached(DurabilityPoint::StubUnlink, &self.path)?;
        fs.meta.unlink(&self.path)?;
        if let Some((parent, _)) = split_parent(&self.path) {
            fs.meta.sync_dir(&parent)?;
        }
        Ok(())
    }
}

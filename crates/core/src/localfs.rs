//! `LocalFs`: the host filesystem behind the common interface.
//!
//! This is "Unix" in the paper's evaluation — the zero-overhead
//! baseline — and also the metadata store of a [`crate::Dpfs`], whose
//! directory tree lives in a local filesystem chosen by the user.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use chirp_proto::persist::{crash_error, DurabilityPoint, Persist, WriteFate};
use chirp_proto::{OpenFlags, StatBuf};

use crate::fs::{normalize_path, FileHandle, FileSystem};

/// The host filesystem rooted at a chosen directory.
#[derive(Debug, Clone)]
pub struct LocalFs {
    root: PathBuf,
    persist: Persist,
}

impl LocalFs {
    /// A local filesystem view rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> io::Result<LocalFs> {
        LocalFs::with_persistence(root, Persist::none())
    }

    /// Like [`LocalFs::new`], with a durability-point observer (see
    /// [`chirp_proto::persist`]). The crash harness uses this to make
    /// the metadata tree of a dsfs killable at every mutation.
    pub fn with_persistence(root: impl Into<PathBuf>, persist: Persist) -> io::Result<LocalFs> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(LocalFs {
            root: root.canonicalize()?,
            persist,
        })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn host(&self, path: &str) -> PathBuf {
        let norm = normalize_path(path);
        let mut out = self.root.clone();
        for comp in norm.split('/').filter(|c| !c.is_empty()) {
            out.push(comp);
        }
        out
    }
}

struct LocalHandle {
    file: File,
    sync: bool,
    persist: Persist,
    path: String,
}

impl FileHandle for LocalHandle {
    fn pread(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        let mut filled = 0;
        while filled < buf.len() {
            match self
                .file
                .read_at(&mut buf[filled..], offset + filled as u64)
            {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(filled)
    }

    fn pwrite(&mut self, buf: &[u8], offset: u64) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        if !buf.is_empty() {
            match self
                .persist
                .reached_write(DurabilityPoint::Pwrite, &self.path, buf.len())?
            {
                WriteFate::Full => {}
                WriteFate::Torn(k) => {
                    // The process dies mid-write: a prefix lands on
                    // disk, then nothing — not even the error reaches
                    // a client, but the bytes are what fsck will see.
                    self.file.write_all_at(&buf[..k], offset)?;
                    return Err(crash_error());
                }
            }
        }
        self.file.write_all_at(buf, offset)?;
        if self.sync {
            self.file.sync_all()?;
        }
        Ok(buf.len())
    }

    fn fstat(&mut self) -> io::Result<StatBuf> {
        Ok(meta_to_stat(&self.file.metadata()?))
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.persist.reached(DurabilityPoint::Fsync, &self.path)?;
        self.file.sync_all()
    }

    fn ftruncate(&mut self, size: u64) -> io::Result<()> {
        self.persist
            .reached(DurabilityPoint::Truncate, &self.path)?;
        self.file.set_len(size)
    }
}

impl FileSystem for LocalFs {
    fn open(&self, path: &str, flags: OpenFlags, mode: u32) -> io::Result<Box<dyn FileHandle>> {
        let mut opts = OpenOptions::new();
        opts.read(flags.contains(OpenFlags::READ));
        opts.write(flags.contains(OpenFlags::WRITE) || flags.contains(OpenFlags::APPEND));
        opts.append(flags.contains(OpenFlags::APPEND));
        if flags.contains(OpenFlags::CREATE) {
            if flags.contains(OpenFlags::EXCLUSIVE) {
                opts.create_new(true);
            } else {
                opts.create(true);
            }
        }
        opts.truncate(flags.contains(OpenFlags::TRUNCATE));
        #[cfg(unix)]
        {
            use std::os::unix::fs::OpenOptionsExt;
            if mode != 0 {
                opts.mode(mode);
            }
        }
        let host = self.host(path);
        if host.is_dir() {
            return Err(io::ErrorKind::IsADirectory.into());
        }
        if self.persist.is_enabled() {
            let exists = host.exists();
            if flags.contains(OpenFlags::CREATE) && !exists {
                self.persist.reached(DurabilityPoint::Create, path)?;
            } else if flags.contains(OpenFlags::TRUNCATE) && exists {
                self.persist.reached(DurabilityPoint::Truncate, path)?;
            }
        }
        let file = opts.open(host)?;
        Ok(Box::new(LocalHandle {
            file,
            sync: flags.contains(OpenFlags::SYNC),
            persist: self.persist.clone(),
            path: normalize_path(path),
        }))
    }

    fn stat(&self, path: &str) -> io::Result<StatBuf> {
        Ok(meta_to_stat(&std::fs::metadata(self.host(path))?))
    }

    fn unlink(&self, path: &str) -> io::Result<()> {
        let host = self.host(path);
        if self.persist.is_enabled() && host.exists() {
            self.persist.reached(DurabilityPoint::Unlink, path)?;
        }
        std::fs::remove_file(host)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let src = self.host(from);
        if self.persist.is_enabled() && src.exists() {
            self.persist.reached(DurabilityPoint::Rename, from)?;
        }
        std::fs::rename(src, self.host(to))
    }

    fn mkdir(&self, path: &str, _mode: u32) -> io::Result<()> {
        let host = self.host(path);
        if self.persist.is_enabled() && !host.exists() {
            self.persist.reached(DurabilityPoint::Create, path)?;
        }
        std::fs::create_dir(host)
    }

    fn rmdir(&self, path: &str) -> io::Result<()> {
        let host = self.host(path);
        if self.persist.is_enabled() && host.exists() {
            self.persist.reached(DurabilityPoint::Unlink, path)?;
        }
        std::fs::remove_dir(host)
    }

    fn readdir(&self, path: &str) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(self.host(path))? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn truncate(&self, path: &str, size: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(self.host(path))?;
        self.persist.reached(DurabilityPoint::Truncate, path)?;
        f.set_len(size)
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        let host = self.host(path);
        self.persist.reached(DurabilityPoint::DirSync, path)?;
        File::open(host)?.sync_all()
    }

    fn read_file(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.host(path))
    }

    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let host = self.host(path);
        if self.persist.is_enabled() {
            if !host.exists() {
                self.persist.reached(DurabilityPoint::Create, path)?;
            }
            if !data.is_empty() {
                match self
                    .persist
                    .reached_write(DurabilityPoint::Pwrite, path, data.len())?
                {
                    WriteFate::Full => {}
                    WriteFate::Torn(k) => {
                        // Torn whole-file write: the truncate-and-
                        // rewrite got as far as a prefix when the
                        // process died.
                        std::fs::write(host, &data[..k])?;
                        return Err(crash_error());
                    }
                }
            }
        }
        std::fs::write(host, data)
    }
}

/// Convert host metadata to the shared stat structure.
pub fn meta_to_stat(meta: &std::fs::Metadata) -> StatBuf {
    use std::os::unix::fs::MetadataExt;
    StatBuf {
        device: meta.dev(),
        inode: meta.ino(),
        file_type: if meta.is_dir() {
            chirp_proto::stat::FileType::Dir
        } else if meta.is_file() {
            chirp_proto::stat::FileType::File
        } else {
            chirp_proto::stat::FileType::Other
        },
        mode: meta.mode() & 0o7777,
        nlink: meta.nlink(),
        size: meta.len(),
        mtime: meta.mtime().max(0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::testutil::TempDir;

    fn fs() -> (TempDir, LocalFs) {
        let dir = TempDir::new();
        let fs = LocalFs::new(dir.path()).unwrap();
        (dir, fs)
    }

    #[test]
    fn write_then_read_round_trip() {
        let (_d, fs) = fs();
        fs.write_file("/x", b"hello").unwrap();
        assert_eq!(fs.read_file("/x").unwrap(), b"hello");
        assert_eq!(fs.stat("/x").unwrap().size, 5);
    }

    #[test]
    fn positional_io() {
        let (_d, fs) = fs();
        fs.write_file("/x", b"0123456789").unwrap();
        let mut h = fs.open("/x", OpenFlags::READ, 0).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(h.pread(&mut buf, 3).unwrap(), 4);
        assert_eq!(&buf, b"3456");
        assert_eq!(h.pread(&mut buf, 9).unwrap(), 1);
    }

    #[test]
    fn namespace_ops() {
        let (_d, fs) = fs();
        fs.mkdir("/d", 0o755).unwrap();
        fs.write_file("/d/f", b"1").unwrap();
        assert_eq!(fs.readdir("/d").unwrap(), vec!["f"]);
        fs.rename("/d/f", "/g").unwrap();
        assert_eq!(fs.readdir("/").unwrap(), vec!["d", "g"]);
        assert!(fs.rmdir("/d").is_ok());
        fs.unlink("/g").unwrap();
        assert!(fs.readdir("/").unwrap().is_empty());
    }

    #[test]
    fn exclusive_create() {
        let (_d, fs) = fs();
        let fl = OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE;
        fs.open("/x", fl, 0o644).unwrap();
        let err = fs
            .open("/x", fl, 0o644)
            .err()
            .expect("second exclusive create fails");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn opened_file_cursor_semantics() {
        use std::io::{Read, Seek, SeekFrom, Write};
        let (_d, fs) = fs();
        let h = fs
            .open("/f", OpenFlags::read_write() | OpenFlags::CREATE, 0o644)
            .unwrap();
        let mut f = crate::fs::OpenedFile::new(h);
        f.write_all(b"abcdef").unwrap();
        f.seek(SeekFrom::Start(2)).unwrap();
        let mut buf = [0u8; 2];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"cd");
        assert_eq!(f.seek(SeekFrom::End(-1)).unwrap(), 5);
        assert_eq!(f.seek(SeekFrom::Current(-2)).unwrap(), 3);
        assert!(f.seek(SeekFrom::Current(-10)).is_err());
    }

    #[test]
    fn paths_are_jailed_to_root() {
        let (d, fs) = fs();
        std::fs::write(d.path().join("..").join("sentinel-lfs"), b"x").ok();
        // `..` cannot escape: it resolves to the root itself.
        assert!(fs.stat("/../sentinel-lfs").is_err());
        let _ = std::fs::remove_file(d.path().join("..").join("sentinel-lfs"));
    }
}

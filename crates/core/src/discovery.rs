//! Runtime resource discovery: turning a catalog listing into a data
//! pool.
//!
//! "Users and abstractions contact catalogs directly in order to
//! discover new storage resources" (§2). This module is that contact
//! point: query a catalog, filter the listing by policy (minimum free
//! space, owner), and produce the [`DataServer`] pool an abstraction
//! is built from. Catalog data is necessarily stale, so the pool is a
//! *hint* — the servers themselves are the authority, and every
//! operation re-verifies by simply being attempted.

use std::io;
use std::net::SocketAddr;
use std::time::Duration;

use catalog::ServerReport;
use chirp_client::AuthMethod;

use crate::stubfs::DataServer;

/// Selection policy applied to a catalog listing.
#[derive(Debug, Clone, Default)]
pub struct PoolPolicy {
    /// Reject servers reporting less free space than this.
    pub min_free: u64,
    /// If set, accept only servers whose owner matches this wildcard
    /// pattern (`*` matches any run of characters).
    pub owner_pattern: Option<String>,
    /// Cap the pool at this many servers (most-free first); `None`
    /// takes everything that qualifies.
    pub max_servers: Option<usize>,
}

/// Simple `*` wildcard match (same semantics as ACL subjects).
fn wildcard(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && p[pi] == t[ti] {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Filter and rank a listing into pool candidates (most free space
/// first).
pub fn select(reports: &[ServerReport], policy: &PoolPolicy) -> Vec<ServerReport> {
    let mut picked: Vec<&ServerReport> = reports
        .iter()
        .filter(|r| r.kind == "chirp")
        .filter(|r| r.free >= policy.min_free)
        .filter(|r| {
            policy
                .owner_pattern
                .as_deref()
                .is_none_or(|p| wildcard(p, &r.owner))
        })
        .collect();
    picked.sort_by(|a, b| b.free.cmp(&a.free).then(a.name.cmp(&b.name)));
    if let Some(cap) = policy.max_servers {
        picked.truncate(cap);
    }
    picked.into_iter().cloned().collect()
}

/// Query a catalog and build a data pool: each qualifying server
/// contributes `volume` with the given `auth`.
pub fn discover_pool(
    catalog: SocketAddr,
    timeout: Duration,
    policy: &PoolPolicy,
    volume: &str,
    auth: Vec<AuthMethod>,
) -> io::Result<Vec<DataServer>> {
    let listing = catalog::query(catalog, timeout)?;
    Ok(select(&listing, policy)
        .into_iter()
        .map(|r| DataServer::new(&r.address, volume, auth.clone()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn report(name: &str, owner: &str, free: u64) -> ServerReport {
        ServerReport {
            kind: "chirp".into(),
            name: name.into(),
            owner: owner.into(),
            address: format!("{name}:9094"),
            version: 1,
            total: 1 << 30,
            free,
            topacl: String::new(),
            metrics: Default::default(),
            extra: BTreeMap::new(),
        }
    }

    #[test]
    fn selection_filters_and_ranks_by_free_space() {
        let reports = vec![
            report("tiny", "alice", 100),
            report("big", "alice", 10_000),
            report("mid", "bob", 5_000),
        ];
        let policy = PoolPolicy {
            min_free: 1_000,
            ..PoolPolicy::default()
        };
        let picked = select(&reports, &policy);
        let names: Vec<&str> = picked.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["big", "mid"]);
    }

    #[test]
    fn owner_pattern_restricts_to_trusted_providers() {
        // The independence principle: build only from people you
        // trust.
        let reports = vec![
            report("a", "alice", 1000),
            report("b", "mallory", 1000),
            report("c", "albert", 1000),
        ];
        let policy = PoolPolicy {
            owner_pattern: Some("al*".into()),
            ..PoolPolicy::default()
        };
        let picked = select(&reports, &policy);
        assert_eq!(picked.len(), 2);
        assert!(picked.iter().all(|r| r.owner.starts_with("al")));
    }

    #[test]
    fn max_servers_caps_the_pool() {
        let reports: Vec<ServerReport> = (0..10)
            .map(|i| report(&format!("s{i}"), "o", 1000 + i))
            .collect();
        let policy = PoolPolicy {
            max_servers: Some(3),
            ..PoolPolicy::default()
        };
        let picked = select(&reports, &policy);
        assert_eq!(picked.len(), 3);
        assert_eq!(picked[0].free, 1009, "most free first");
    }

    #[test]
    fn non_chirp_records_are_ignored() {
        let mut other = report("db", "o", 1 << 40);
        other.kind = "gemsdb".into();
        let picked = select(&[other], &PoolPolicy::default());
        assert!(picked.is_empty());
    }
}

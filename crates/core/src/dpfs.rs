//! DPFS — the *distributed private filesystem*.
//!
//! One user harnesses the aggregate storage of multiple file servers
//! in a single image. The directory structure lives in a local Unix
//! filesystem of the user's choosing; where it indicates a file, a
//! stub points at the data on some server. Because the metadata is
//! private to one user, no sharing is possible — that is what
//! [`crate::Dsfs`] adds by moving the tree onto a file server.

use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::localfs::LocalFs;
use crate::placement::Placement;
use crate::stubfs::{delegate_filesystem, DataServer, StubFs, StubFsOptions};

/// A distributed private filesystem.
pub struct Dpfs {
    inner: StubFs,
}

impl Dpfs {
    /// Create (or reattach to) a DPFS whose directory tree lives at
    /// the local path `meta_root`, spreading new files over `pool`.
    pub fn new(meta_root: impl AsRef<Path>, pool: Vec<DataServer>) -> io::Result<Dpfs> {
        Dpfs::with_options(
            meta_root,
            pool,
            Placement::round_robin(),
            StubFsOptions::default(),
        )
    }

    /// Full-control constructor.
    pub fn with_options(
        meta_root: impl AsRef<Path>,
        pool: Vec<DataServer>,
        placement: Placement,
        options: StubFsOptions,
    ) -> io::Result<Dpfs> {
        let meta = Arc::new(LocalFs::new(meta_root.as_ref())?);
        let fs = StubFs::new(meta, pool, placement, options);
        Ok(Dpfs { inner: fs })
    }

    /// Create each pool server's volume directory if missing. Part of
    /// "to create a new filesystem, one must specify a list of hosts,
    /// create a new directory root, and create new storage directories
    /// on each server".
    pub fn ensure_volumes(&self) -> io::Result<()> {
        self.inner.ensure_volumes()
    }

    /// The underlying stub engine.
    pub fn stubfs(&self) -> &StubFs {
        &self.inner
    }
}

delegate_filesystem!(Dpfs, inner);

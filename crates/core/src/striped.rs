//! Transparent striping — the first of the conclusion's "wide array
//! of variations": a filesystem whose files are striped across
//! multiple disks for single-file bandwidth beyond one server's port.
//!
//! Layout: a file is cut into fixed-size stripes dealt round-robin
//! over `k` servers chosen at create time. Each server holds its
//! stripes compacted into one part file, so stripe `s` of a `k`-way
//! file lives in part `s mod k` at offset `(s div k) * stripe_size`.
//! The directory tree (any [`FileSystem`], as with DPFS/DSFS) stores a
//! stripe-stub naming the layout.
//!
//! Like every TSS abstraction this is built *entirely* on the ordinary
//! file interface of the servers — no new server code was required to
//! add striping, which is the architectural point being demonstrated.

use std::io;
use std::sync::Arc;

use chirp_proto::{OpenFlags, StatBuf};

use crate::cfs::is_transport_error;
use crate::fanout::run_fanout;
use crate::fs::{FileHandle, FileSystem};
use crate::placement::{unique_data_name, Placement};
use crate::pool::ServerPool;
use crate::stubfs::{DataServer, StubFsOptions};

/// First line of a stripe stub.
pub const STRIPE_MAGIC: &str = "#tss-stripe-v1";

/// The parsed layout of one striped file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeLayout {
    /// Bytes per stripe.
    pub stripe_size: u64,
    /// `(endpoint, part path)` in stripe order.
    pub parts: Vec<(String, String)>,
}

impl StripeLayout {
    /// Render to the stub format. The header carries the part count so
    /// a torn (prefix-truncated) stub can never parse as a healthy
    /// narrower layout.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{STRIPE_MAGIC}\n{} {}\n",
            self.stripe_size,
            self.parts.len()
        );
        for (endpoint, path) in &self.parts {
            out.push_str(&format!("{endpoint} {path}\n"));
        }
        out
    }

    /// Parse a stripe stub.
    ///
    /// Strict: the final newline is required and the part list must
    /// match the declared count, so every strict prefix of a rendered
    /// layout — what a crash mid-write leaves behind — is invalid
    /// rather than a plausible layout missing stripes.
    pub fn parse(text: &str) -> io::Result<StripeLayout> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        if !text.ends_with('\n') {
            return Err(bad("stripe stub truncated"));
        }
        let mut lines = text.lines();
        if lines.next() != Some(STRIPE_MAGIC) {
            return Err(bad("not a stripe stub"));
        }
        let (stripe_size, count) = lines
            .next()
            .and_then(|l| l.split_once(' '))
            .and_then(|(s, c)| Some((s.parse::<u64>().ok()?, c.parse::<usize>().ok()?)))
            .filter(|&(s, c)| s > 0 && c > 0)
            .ok_or_else(|| bad("bad stripe size"))?;
        let mut parts = Vec::new();
        for line in lines {
            let (endpoint, path) = line
                .split_once(' ')
                .filter(|(_, p)| p.starts_with('/'))
                .ok_or_else(|| bad("bad part line"))?;
            parts.push((endpoint.to_string(), path.to_string()));
        }
        if parts.len() != count {
            return Err(bad("stripe part count mismatch"));
        }
        Ok(StripeLayout { stripe_size, parts })
    }

    /// Where byte `offset` lives: `(part index, offset within part)`.
    pub fn locate(&self, offset: u64) -> (usize, u64) {
        let k = self.parts.len() as u64;
        let stripe = offset / self.stripe_size;
        let within = offset % self.stripe_size;
        let part = (stripe % k) as usize;
        let part_offset = (stripe / k) * self.stripe_size + within;
        (part, part_offset)
    }

    /// Bytes from `offset` to the end of its stripe.
    pub fn stripe_remaining(&self, offset: u64) -> u64 {
        self.stripe_size - (offset % self.stripe_size)
    }
}

/// A filesystem that stripes each file over several servers.
pub struct StripedFs {
    meta: Arc<dyn FileSystem>,
    pool: ServerPool,
    placement: Placement,
    /// Servers per file (stripe width).
    width: usize,
    /// Bytes per stripe.
    stripe_size: u64,
}

impl StripedFs {
    /// Build a striped filesystem: directory tree on `meta`, data
    /// striped `width`-ways in `stripe_size` units over `pool`.
    pub fn new(
        meta: Arc<dyn FileSystem>,
        pool: Vec<DataServer>,
        width: usize,
        stripe_size: u64,
        options: StubFsOptions,
    ) -> io::Result<StripedFs> {
        if width == 0 || pool.len() < width {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "stripe width exceeds pool",
            ));
        }
        if stripe_size == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "zero stripe"));
        }
        Ok(StripedFs {
            meta,
            pool: ServerPool::new(pool, options),
            placement: Placement::round_robin(),
            width,
            stripe_size,
        })
    }

    /// Create pool volumes.
    pub fn ensure_volumes(&self) -> io::Result<()> {
        self.pool.ensure_volumes()
    }

    /// A snapshot of the data-connection pool counters.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    /// The metadata filesystem holding the stripe stubs.
    pub fn meta(&self) -> &Arc<dyn FileSystem> {
        &self.meta
    }

    /// The data pool.
    pub fn pool(&self) -> &[DataServer] {
        self.pool.servers()
    }

    /// Check out a pooled data connection to `endpoint` (fsck and
    /// other maintenance walks).
    pub fn data_conn(&self, endpoint: &str) -> io::Result<crate::pool::PooledConn> {
        Ok(self.pool.checkout(endpoint))
    }

    fn read_layout(&self, path: &str) -> io::Result<StripeLayout> {
        let text = self.meta.read_file(path)?;
        if text.is_empty() {
            // A zero-length stub is a create that died before the
            // layout write: mandated to read as "file not found",
            // like the plain dsfs.
            return Err(io::Error::new(io::ErrorKind::NotFound, "file not found"));
        }
        let text = String::from_utf8(text)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stub not utf-8"))?;
        StripeLayout::parse(&text)
    }

    /// Open every part, one pooled connection per part, concurrently
    /// when fan-out is enabled. The first error in part order wins.
    fn open_parts(
        &self,
        layout: &StripeLayout,
        flags: OpenFlags,
    ) -> io::Result<Vec<Box<dyn FileHandle>>> {
        let pool = &self.pool;
        let jobs: Vec<_> = layout
            .parts
            .iter()
            .map(|(endpoint, path)| move || pool.open(endpoint, path, flags, 0o644))
            .collect();
        run_fanout(pool.parallel_fanout() && layout.parts.len() > 1, jobs)
            .into_iter()
            .collect()
    }

    fn create_file(&self, path: &str, flags: OpenFlags) -> io::Result<Box<dyn FileHandle>> {
        // Choose `width` distinct servers starting at a rotating
        // offset, so load spreads across files.
        let first = self.placement.choose(self.pool.len());
        let mut parts = Vec::with_capacity(self.width);
        for i in 0..self.width {
            let server = &self.pool.servers()[(first + i) % self.pool.len()];
            parts.push((
                server.endpoint.clone(),
                format!("{}/{}", server.volume, unique_data_name()),
            ));
        }
        let layout = StripeLayout {
            stripe_size: self.stripe_size,
            parts,
        };
        // Stub first (exclusive), then the part files, as in the DSFS
        // create protocol.
        let mut stub = self.meta.open(
            path,
            OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE,
            0o644,
        )?;
        stub.pwrite(layout.render().as_bytes(), 0)?;
        drop(stub);
        let create = flags | OpenFlags::WRITE | OpenFlags::CREATE;
        match self.open_parts(&layout, create) {
            Ok(handles) => Ok(Box::new(StripedHandle::new(
                layout, handles, &self.pool, create,
            ))),
            Err(e) => {
                let _ = self.meta.unlink(path);
                Err(e)
            }
        }
    }
}

/// One stripe part: where it lives plus the open handle serving it.
/// Keeping the address next to the handle lets a part recover from a
/// dead connection by re-opening itself mid-operation.
struct PartSlot {
    endpoint: String,
    path: String,
    handle: Box<dyn FileHandle>,
}

impl PartSlot {
    /// Per-stripe retry (the step before first-error-wins): when an
    /// RPC fails with a transport error, re-open this part over a
    /// fresh pooled connection and run `op` once more. The pool's
    /// breaker hears about the outcome either way.
    fn with_reopen<T>(
        &mut self,
        pool: &ServerPool,
        flags: OpenFlags,
        mut op: impl FnMut(&mut Box<dyn FileHandle>) -> io::Result<T>,
    ) -> io::Result<T> {
        match op(&mut self.handle) {
            Ok(v) => Ok(v),
            Err(first) if is_transport_error(&first) => {
                pool.report_failure(&self.endpoint);
                match pool.open(&self.endpoint, &self.path, flags, 0o644) {
                    Ok(fresh) => {
                        self.handle = fresh;
                        match op(&mut self.handle) {
                            Ok(v) => {
                                pool.report_success(&self.endpoint);
                                Ok(v)
                            }
                            Err(second) => {
                                if is_transport_error(&second) {
                                    pool.report_failure(&self.endpoint);
                                }
                                Err(second)
                            }
                        }
                    }
                    Err(_) => Err(first),
                }
            }
            Err(e) => Err(e),
        }
    }
}

struct StripedHandle {
    layout: StripeLayout,
    parts: Vec<PartSlot>,
    pool: ServerPool,
    /// Flags a part may be re-opened with after a transport failure:
    /// the open flags minus one-shot bits (`CREATE`/`TRUNCATE`/
    /// `EXCLUSIVE`), so recovery never clobbers data.
    reopen_flags: OpenFlags,
    /// Fan per-part RPCs out over scoped threads. Each part has its
    /// own pooled connection, so parts genuinely proceed concurrently.
    parallel: bool,
}

/// The outcome of one stripe-chunk RPC, tagged with its position in
/// logical-offset order so partial results merge deterministically.
type ChunkResult = (usize, io::Result<usize>);

/// Strip one-shot bits so mid-operation re-opens are idempotent.
fn reopen_flags_of(flags: OpenFlags) -> OpenFlags {
    let mut out = OpenFlags::empty();
    for f in [
        OpenFlags::READ,
        OpenFlags::WRITE,
        OpenFlags::APPEND,
        OpenFlags::SYNC,
    ] {
        if flags.contains(f) {
            out |= f;
        }
    }
    if out.bits() == 0 {
        out = OpenFlags::READ;
    }
    out
}

impl StripedHandle {
    fn new(
        layout: StripeLayout,
        handles: Vec<Box<dyn FileHandle>>,
        pool: &ServerPool,
        flags: OpenFlags,
    ) -> StripedHandle {
        let parts = layout
            .parts
            .iter()
            .cloned()
            .zip(handles)
            .map(|((endpoint, path), handle)| PartSlot {
                endpoint,
                path,
                handle,
            })
            .collect();
        StripedHandle {
            layout,
            parts,
            pool: pool.clone(),
            reopen_flags: reopen_flags_of(flags),
            parallel: pool.parallel_fanout(),
        }
    }

    fn use_threads(&self, parts_in_play: usize) -> bool {
        self.parallel && parts_in_play > 1
    }

    /// Run `per_part` RPCs over every part concurrently (each with the
    /// per-stripe re-open retry) and return the first error in part
    /// order, if any.
    fn for_each_part(
        &mut self,
        per_handle: impl Fn(&mut Box<dyn FileHandle>) -> io::Result<()> + Sync,
    ) -> io::Result<()> {
        let parallel = self.use_threads(self.parts.len());
        let per_handle = &per_handle;
        let pool = &self.pool;
        let flags = self.reopen_flags;
        let jobs: Vec<_> = self
            .parts
            .iter_mut()
            .map(|slot| move || slot.with_reopen(pool, flags, per_handle))
            .collect();
        run_fanout(parallel, jobs).into_iter().collect()
    }
}

impl FileHandle for StripedHandle {
    fn pread(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        // Split the request into per-stripe chunks of disjoint buffer
        // slices, grouped by part; each part's chunks run in logical
        // order on that part's own connection, and parts run
        // concurrently.
        let mut plans: Vec<Vec<(usize, u64, &mut [u8])>> =
            (0..self.parts.len()).map(|_| Vec::new()).collect();
        let mut chunk_lens = Vec::new();
        let mut rest = buf;
        let mut pos = 0u64;
        while !rest.is_empty() {
            let off = offset + pos;
            let (part, part_off) = self.layout.locate(off);
            let len = rest.len().min(self.layout.stripe_remaining(off) as usize);
            let (chunk, tail) = rest.split_at_mut(len);
            plans[part].push((chunk_lens.len(), part_off, chunk));
            chunk_lens.push(len);
            rest = tail;
            pos += len as u64;
        }
        let parallel = self.use_threads(plans.iter().filter(|p| !p.is_empty()).count());
        let pool = &self.pool;
        let flags = self.reopen_flags;
        let jobs: Vec<_> = self
            .parts
            .iter_mut()
            .zip(plans)
            .filter(|(_, plan)| !plan.is_empty())
            .map(|(slot, plan)| {
                move || {
                    let mut out: Vec<ChunkResult> = Vec::with_capacity(plan.len());
                    for (order, part_off, chunk) in plan {
                        let want = chunk.len();
                        match slot.with_reopen(pool, flags, |h| h.pread(chunk, part_off)) {
                            Ok(n) => {
                                out.push((order, Ok(n)));
                                if n < want {
                                    break; // this part hit end of file
                                }
                            }
                            Err(e) => {
                                out.push((order, Err(e)));
                                break;
                            }
                        }
                    }
                    out
                }
            })
            .collect();
        // Merge in logical order, reproducing the sequential loop's
        // semantics: stop at the first short chunk (end of file),
        // surface the first erroring chunk.
        let mut by_order: Vec<Option<io::Result<usize>>> =
            chunk_lens.iter().map(|_| None).collect();
        for part_out in run_fanout(parallel, jobs) {
            for (order, res) in part_out {
                by_order[order] = Some(res);
            }
        }
        let mut filled = 0usize;
        for (i, res) in by_order.into_iter().enumerate() {
            match res {
                Some(Ok(n)) => {
                    filled += n;
                    if n < chunk_lens[i] {
                        break;
                    }
                }
                Some(Err(e)) => return Err(e),
                // Not attempted: an earlier chunk of the same part
                // stopped, and the global walk stops there first.
                None => break,
            }
        }
        Ok(filled)
    }

    fn pwrite(&mut self, buf: &[u8], offset: u64) -> io::Result<usize> {
        let mut plans: Vec<Vec<(usize, u64, &[u8])>> =
            (0..self.parts.len()).map(|_| Vec::new()).collect();
        let mut chunk_lens = Vec::new();
        let mut rest = buf;
        let mut pos = 0u64;
        while !rest.is_empty() {
            let off = offset + pos;
            let (part, part_off) = self.layout.locate(off);
            let len = rest.len().min(self.layout.stripe_remaining(off) as usize);
            let (chunk, tail) = rest.split_at(len);
            plans[part].push((chunk_lens.len(), part_off, chunk));
            chunk_lens.push(len);
            rest = tail;
            pos += len as u64;
        }
        let parallel = self.use_threads(plans.iter().filter(|p| !p.is_empty()).count());
        let pool = &self.pool;
        let flags = self.reopen_flags;
        let jobs: Vec<_> = self
            .parts
            .iter_mut()
            .zip(plans)
            .filter(|(_, plan)| !plan.is_empty())
            .map(|(slot, plan)| {
                move || {
                    let mut out: Vec<(usize, io::Result<()>)> = Vec::with_capacity(plan.len());
                    for (order, part_off, chunk) in plan {
                        // Positional writes are idempotent, so a
                        // re-opened part may safely repeat the chunk.
                        match slot.with_reopen(pool, flags, |h| h.pwrite(chunk, part_off)) {
                            Ok(_) => out.push((order, Ok(()))),
                            Err(e) => {
                                out.push((order, Err(e)));
                                break;
                            }
                        }
                    }
                    out
                }
            })
            .collect();
        let mut by_order: Vec<Option<io::Result<()>>> = chunk_lens.iter().map(|_| None).collect();
        for part_out in run_fanout(parallel, jobs) {
            for (order, res) in part_out {
                by_order[order] = Some(res);
            }
        }
        let mut written = 0usize;
        for (i, res) in by_order.into_iter().enumerate() {
            match res {
                Some(Ok(())) => written += chunk_lens[i],
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok(written)
    }

    fn fstat(&mut self) -> io::Result<StatBuf> {
        // The logical size is the sum of the compacted part sizes;
        // every part is queried concurrently.
        let parallel = self.use_threads(self.parts.len());
        let pool = &self.pool;
        let flags = self.reopen_flags;
        let jobs: Vec<_> = self
            .parts
            .iter_mut()
            .map(|slot| move || slot.with_reopen(pool, flags, |h| h.fstat()))
            .collect();
        let stats: io::Result<Vec<StatBuf>> = run_fanout(parallel, jobs).into_iter().collect();
        let stats = stats?;
        let mut base = stats[0];
        base.size = stats.iter().map(|st| st.size).sum();
        Ok(base)
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.for_each_part(|h| h.fsync())
    }

    fn ftruncate(&mut self, size: u64) -> io::Result<()> {
        // Compute each part's new length: whole stripes dealt round
        // robin plus the partial tail.
        let k = self.layout.parts.len() as u64;
        let ss = self.layout.stripe_size;
        let full = size / ss;
        let tail = size % ss;
        let part_lens: Vec<u64> = (0..self.parts.len() as u64)
            .map(|i| {
                // Stripes this part holds among the first `full`
                // stripes; the tail stripe replaces that part's next
                // stripe slot (when tail == 0 nothing is added).
                let whole = full / k + u64::from(i < full % k);
                let mut part_len = whole * ss;
                if i == full % k {
                    part_len += tail;
                }
                part_len
            })
            .collect();
        let parallel = self.use_threads(self.parts.len());
        let pool = &self.pool;
        let flags = self.reopen_flags;
        let jobs: Vec<_> = self
            .parts
            .iter_mut()
            .zip(part_lens)
            .map(|(slot, len)| move || slot.with_reopen(pool, flags, |h| h.ftruncate(len)))
            .collect();
        run_fanout(parallel, jobs).into_iter().collect()
    }
}

impl FileSystem for StripedFs {
    fn open(&self, path: &str, flags: OpenFlags, _mode: u32) -> io::Result<Box<dyn FileHandle>> {
        if flags.contains(OpenFlags::CREATE) {
            match self.create_file(path, flags) {
                Ok(h) => return Ok(h),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if flags.contains(OpenFlags::EXCLUSIVE) {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let layout = self.read_layout(path)?;
        let mut open_flags = OpenFlags::empty();
        for f in [OpenFlags::READ, OpenFlags::WRITE, OpenFlags::SYNC] {
            if flags.contains(f) {
                open_flags |= f;
            }
        }
        let handles = self.open_parts(&layout, open_flags)?;
        let mut striped = StripedHandle::new(layout, handles, &self.pool, open_flags);
        if flags.contains(OpenFlags::TRUNCATE) {
            striped.ftruncate(0)?;
        }
        Ok(Box::new(striped))
    }

    fn stat(&self, path: &str) -> io::Result<StatBuf> {
        match self.read_layout(path) {
            Ok(layout) => {
                // One `STATMULTI` batch per endpoint instead of one
                // `STAT` round trip per part: an endpoint's parts all
                // settle in a single exchange, and the (now fewer)
                // exchanges still fan out concurrently. The logical
                // size is the sum of the part sizes.
                let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
                for (i, (endpoint, _)) in layout.parts.iter().enumerate() {
                    match groups.iter_mut().find(|(e, _)| *e == endpoint) {
                        Some((_, idxs)) => idxs.push(i),
                        None => groups.push((endpoint.as_str(), vec![i])),
                    }
                }
                let pool = &self.pool;
                let jobs: Vec<_> = groups
                    .iter()
                    .map(|(endpoint, idxs)| {
                        let paths: Vec<String> =
                            idxs.iter().map(|&i| layout.parts[i].1.clone()).collect();
                        move || pool.with_conn(endpoint, |cfs| cfs.stat_multi(&paths))
                    })
                    .collect();
                let answers = run_fanout(pool.parallel_fanout() && groups.len() > 1, jobs);
                // Scatter the batched verdicts back into part order so
                // error precedence matches the per-part fan-out.
                let mut by_part: Vec<Option<io::Result<StatBuf>>> =
                    layout.parts.iter().map(|_| None).collect();
                for ((_, idxs), answer) in groups.iter().zip(answers) {
                    match answer {
                        Ok(verdicts) => {
                            for (&i, v) in idxs.iter().zip(verdicts) {
                                by_part[i] = Some(v.map_err(io::Error::from));
                            }
                        }
                        Err(e) => {
                            for &i in idxs {
                                by_part[i] = Some(Err(io::Error::new(e.kind(), e.to_string())));
                            }
                        }
                    }
                }
                let stats: io::Result<Vec<StatBuf>> = by_part
                    .into_iter()
                    .map(|v| v.expect("every part belongs to a group"))
                    .collect();
                let stats = stats?;
                let mut st = stats[0];
                st.size = stats.iter().map(|s| s.size).sum();
                Ok(st)
            }
            Err(e) if e.kind() == io::ErrorKind::IsADirectory => self.meta.stat(path),
            Err(e) => Err(e),
        }
    }

    fn unlink(&self, path: &str) -> io::Result<()> {
        let layout = self.read_layout(path)?;
        // Delete every part concurrently (data first, then stub, as in
        // the DSFS delete protocol). Parts already gone are fine.
        let pool = &self.pool;
        let jobs: Vec<_> = layout
            .parts
            .iter()
            .map(|(endpoint, part)| {
                move || {
                    pool.with_conn(endpoint, |cfs| match cfs.unlink(part) {
                        Ok(()) => Ok(()),
                        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                        Err(e) => Err(e),
                    })
                }
            })
            .collect();
        run_fanout(pool.parallel_fanout() && layout.parts.len() > 1, jobs)
            .into_iter()
            .collect::<io::Result<Vec<()>>>()?;
        self.meta.unlink(path)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.meta.rename(from, to)
    }

    fn mkdir(&self, path: &str, mode: u32) -> io::Result<()> {
        self.meta.mkdir(path, mode)
    }

    fn rmdir(&self, path: &str) -> io::Result<()> {
        self.meta.rmdir(path)
    }

    fn readdir(&self, path: &str) -> io::Result<Vec<String>> {
        self.meta.readdir(path)
    }

    fn truncate(&self, path: &str, size: u64) -> io::Result<()> {
        let mut h = self.open(path, OpenFlags::WRITE, 0)?;
        h.ftruncate(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trip() {
        let l = StripeLayout {
            stripe_size: 65536,
            parts: vec![
                ("h1:9094".into(), "/vol/a".into()),
                ("h2:9094".into(), "/vol/b".into()),
            ],
        };
        assert_eq!(StripeLayout::parse(&l.render()).unwrap(), l);
    }

    #[test]
    fn layout_rejects_garbage() {
        assert!(StripeLayout::parse("").is_err());
        assert!(StripeLayout::parse("#tss-stripe-v1\n0 1\nh /p\n").is_err());
        assert!(StripeLayout::parse("#tss-stripe-v1\n64\n").is_err());
        assert!(StripeLayout::parse("#tss-stripe-v1\n64 1\nnospacepath\n").is_err());
        // Declared width must match the part list exactly.
        assert!(StripeLayout::parse("#tss-stripe-v1\n64 2\nh /p\n").is_err());
        assert!(StripeLayout::parse("#tss-stripe-v1\n64 1\nh /p\nh2 /q\n").is_err());
    }

    #[test]
    fn every_torn_prefix_is_invalid() {
        // A torn stub write leaves a strict prefix; none may parse.
        // In particular a 2-part layout cut after its first part line
        // must NOT parse as a healthy 1-part layout.
        let full = StripeLayout {
            stripe_size: 65536,
            parts: vec![
                ("h1:9094".into(), "/vol/a".into()),
                ("h2:9094".into(), "/vol/b".into()),
            ],
        }
        .render();
        for k in 0..full.len() {
            assert!(
                StripeLayout::parse(&full[..k]).is_err(),
                "torn prefix of {k} bytes parsed as healthy"
            );
        }
    }

    #[test]
    fn locate_deals_stripes_round_robin() {
        let l = StripeLayout {
            stripe_size: 100,
            parts: vec![
                ("a".into(), "/a".into()),
                ("b".into(), "/b".into()),
                ("c".into(), "/c".into()),
            ],
        };
        assert_eq!(l.locate(0), (0, 0));
        assert_eq!(l.locate(99), (0, 99));
        assert_eq!(l.locate(100), (1, 0));
        assert_eq!(l.locate(250), (2, 50));
        // Second round: stripe 3 -> part 0 at its second slot.
        assert_eq!(l.locate(300), (0, 100));
        assert_eq!(l.locate(599), (2, 199));
        assert_eq!(l.stripe_remaining(0), 100);
        assert_eq!(l.stripe_remaining(130), 70);
    }
}

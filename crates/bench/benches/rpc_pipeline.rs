//! The request-pipelining benchmark: small-op (1 KiB `PREAD` and
//! `STAT`) throughput on one Chirp stream at pipeline depths 1/2/4/8.
//! Depth 1 is the classic one-RPC-at-a-time loop the paper's §4
//! ablation measures; deeper windows amortize the round trip over
//! `depth` requests, which is the whole point of pipelining (the same
//! latency term that makes NFS's per-component `LOOKUP` slow in
//! Fig 4, and the dominant cost of the SP5 init phase in §8).
//!
//! Loopback hides the term being attacked — a small RPC completes in
//! microseconds of syscall time — so the rig models a real network
//! two ways: the server charges a per-RPC service time (disk seek),
//! and the client's dialer charges a turnaround latency per
//! write→read switch (propagation round trip). With `n` requests in
//! batches of `depth` the client pays `ceil(n / depth)` turnarounds
//! instead of `n`; the service time stays serial on the server, so
//! the measured speedup is honestly bounded by the RTT share, not a
//! free `depth`×.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chirp_client::Connection;
use chirp_proto::testutil::TempDir;
use chirp_proto::transport::Dialer;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use tss_bench::{auth, latency_dialer, pipelined_preads, pipelined_stats};

/// Small ops per measured iteration.
const OPS: usize = 64;
/// Per-RPC server-side service time (disk-seek stand-in).
const SERVICE_DELAY: Duration = Duration::from_micros(50);
/// Client-observed turnaround per round trip (WAN RTT stand-in).
const TURNAROUND: Duration = Duration::from_micros(300);

struct Rig {
    _host: TempDir,
    _server: FileServer,
    conn: Connection,
    fd: i32,
}

fn rig() -> Rig {
    let host = TempDir::new();
    let server = FileServer::start(
        ServerConfig::localhost(host.path(), "bench")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap())
            .with_service_delay(SERVICE_DELAY),
    )
    .expect("start chirp server");
    let dialer = latency_dialer(Dialer::tcp(), TURNAROUND);
    let mut conn =
        Connection::connect_via(&dialer, &server.endpoint(), Duration::from_secs(10)).unwrap();
    conn.authenticate(&auth()).unwrap();
    conn.putfile("/small", 0o644, &vec![5u8; 1024]).unwrap();
    let fd = conn.open("/small", OpenFlags::READ, 0).unwrap();
    Rig {
        _host: host,
        _server: server,
        conn,
        fd,
    }
}

fn bench_pread_1k(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpc_pipeline_pread1k");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g.sample_size(10);
    g.throughput(Throughput::Elements(OPS as u64));
    for depth in [1usize, 2, 4, 8] {
        let mut r = rig();
        g.bench_function(BenchmarkId::new("depth", depth), |b| {
            b.iter(|| pipelined_preads(&mut r.conn, r.fd, 1024, OPS, depth))
        });
    }
    g.finish();
}

fn bench_stat(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpc_pipeline_stat");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g.sample_size(10);
    g.throughput(Throughput::Elements(OPS as u64));
    for depth in [1usize, 2, 4, 8] {
        let mut r = rig();
        g.bench_function(BenchmarkId::new("depth", depth), |b| {
            b.iter(|| pipelined_stats(&mut r.conn, "/small", OPS, depth))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pread_1k, bench_stat);
criterion_main!(benches);

//! Criterion micro-benchmarks backing Figures 3–5: per-call latency
//! of each backend and bulk-transfer bandwidth, measured live over
//! loopback. The `fig*` binaries print the paper-style tables; these
//! benches give the statistically rigorous per-op numbers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chirp_proto::OpenFlags;
use tss_bench::fixtures;
use tss_core::fs::FileSystem;

/// Figure 3: local syscall-shaped ops, direct vs through the adapter.
fn bench_fig3_syscalls(c: &mut Criterion) {
    let f = fixtures();
    f.local.write_file("/f", &vec![0u8; 8192]).unwrap();
    let adapter =
        tss_core::adapter::Adapter::new(tss_core::adapter::AdapterConfig::default()).unwrap();
    adapter.register("/direct", f.local.clone());

    let mut g = c.benchmark_group("fig3_syscall_latency");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("stat/direct", |b| b.iter(|| f.local.stat("/f").unwrap()));
    g.bench_function("stat/adapter", |b| {
        b.iter(|| adapter.stat("/direct/f").unwrap())
    });
    g.bench_function("open_close/direct", |b| {
        b.iter(|| drop(f.local.open("/f", OpenFlags::READ, 0).unwrap()))
    });
    g.bench_function("open_close/adapter", |b| {
        b.iter(|| drop(adapter.open("/direct/f", OpenFlags::READ, 0).unwrap()))
    });
    g.finish();
}

/// Figure 4: remote I/O call latency — CFS vs NFS vs DSFS.
fn bench_fig4_io_latency(c: &mut Criterion) {
    let f = fixtures();
    let systems: Vec<(&str, std::sync::Arc<dyn FileSystem>)> = vec![
        ("cfs", f.cfs.clone()),
        ("nfs", f.nfs.clone()),
        ("dsfs", f.dsfs.clone()),
    ];
    for (_, fs) in &systems {
        fs.write_file("/f", &vec![7u8; 8192]).unwrap();
    }
    let mut g = c.benchmark_group("fig4_io_latency");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (name, fs) in &systems {
        g.bench_with_input(BenchmarkId::new("stat", name), fs, |b, fs| {
            b.iter(|| fs.stat("/f").unwrap())
        });
        g.bench_with_input(BenchmarkId::new("open_close", name), fs, |b, fs| {
            b.iter(|| drop(fs.open("/f", OpenFlags::READ, 0).unwrap()))
        });
        let mut h = fs.open("/f", OpenFlags::read_write(), 0).unwrap();
        let mut buf = vec![0u8; 8192];
        g.bench_function(BenchmarkId::new("read8k", name), |b| {
            b.iter(|| h.pread(&mut buf, 0).unwrap())
        });
        let data = vec![1u8; 8192];
        g.bench_function(BenchmarkId::new("write8k", name), |b| {
            b.iter(|| h.pwrite(&data, 0).unwrap())
        });
    }
    g.finish();
}

/// Figure 5: bulk write bandwidth per backend at a 64 KiB block size.
fn bench_fig5_bandwidth(c: &mut Criterion) {
    let f = fixtures();
    let total = 4 << 20;
    let block = 64 * 1024;
    let systems: Vec<(&str, std::sync::Arc<dyn FileSystem>)> = vec![
        ("unix", f.local.clone()),
        ("cfs", f.cfs.clone()),
        ("nfs", f.nfs.clone()),
    ];
    let mut g = c.benchmark_group("fig5_bandwidth_64k_blocks");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g.throughput(Throughput::Bytes(total as u64));
    g.sample_size(10);
    for (name, fs) in &systems {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                tss_bench::measure_write_bandwidth(fs.as_ref(), "/bw", block, total);
            })
        });
    }
    g.finish();
}

/// Figures 6–8: one representative simulated cluster point each, so
/// regressions in the simulator's cost show up in `cargo bench`.
fn bench_cluster_sim(c: &mut Criterion) {
    let model = simnet::CostModel::default();
    let mut g = c.benchmark_group("fig6_8_cluster_sim");
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g.bench_function("fig6_4srv_16cli", |b| {
        b.iter(|| simnet::cluster::run(&model, simnet::cluster::ClusterParams::fig6(4, 16)))
    });
    g.bench_function("fig8_8srv_16cli", |b| {
        b.iter(|| simnet::cluster::run(&model, simnet::cluster::ClusterParams::fig8(8, 16)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig3_syscalls,
    bench_fig4_io_latency,
    bench_fig5_bandwidth,
    bench_cluster_sim
);
criterion_main!(benches);

//! Retry-layer overhead on the fault-free fast path.
//!
//! The recovery layer threads a `RetryPolicy` through every CFS
//! operation: each op sets up a `RetryState`, and each success exits
//! the retry loop on its first iteration. This bench pins down what
//! that costs when nothing ever fails, by running the same loopback
//! workload under `RetryPolicy::none()` and the default policy. The
//! acceptance bar is ≤2% on per-op latency — the fault-free path must
//! not pay for the faulty one.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use tss_bench::auth;
use tss_core::cfs::{Cfs, CfsConfig};
use tss_core::fs::FileSystem;
use tss_core::RetryPolicy;

fn open_server(root: &std::path::Path) -> FileServer {
    FileServer::start(
        ServerConfig::localhost(root, "bench")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
    )
    .expect("start chirp server")
}

fn cfs(endpoint: &str, retry: RetryPolicy) -> Cfs {
    let mut cfg = CfsConfig::new(endpoint, auth());
    cfg.timeout = Duration::from_secs(10);
    cfg.retry = retry;
    Cfs::new(cfg)
}

fn bench_retry_overhead(c: &mut Criterion) {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut g = c.benchmark_group("retry_overhead");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    for (name, policy) in [
        ("none", RetryPolicy::none()),
        ("default", RetryPolicy::default()),
    ] {
        let fs = cfs(&server.endpoint(), policy);
        fs.write_file("/f", &vec![7u8; 8192]).unwrap();
        g.bench_function(BenchmarkId::new("stat", name), |b| {
            b.iter(|| fs.stat("/f").unwrap())
        });
        g.bench_function(BenchmarkId::new("open_close", name), |b| {
            b.iter(|| drop(fs.open("/f", OpenFlags::READ, 0).unwrap()))
        });
        let mut h = fs.open("/f", OpenFlags::read_write(), 0).unwrap();
        let mut buf = vec![0u8; 8192];
        g.bench_function(BenchmarkId::new("read8k", name), |b| {
            b.iter(|| h.pread(&mut buf, 0).unwrap())
        });
        let data = vec![1u8; 8192];
        g.bench_function(BenchmarkId::new("write8k", name), |b| {
            b.iter(|| h.pwrite(&data, 0).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_retry_overhead);
criterion_main!(benches);

//! The parallel-fan-out benchmark: striped read/write throughput at
//! stripe widths 1/2/4/8, with the fan-out loop running sequentially
//! (`parallel_fanout: false`, the pre-pool data path) and in parallel
//! (scoped threads, one pooled connection per part). The interesting
//! number is the aggregate throughput ratio at width ≥ 2: with one
//! RPC in flight per server concurrently, a width-`k` stripe should
//! approach `k`× one server's port speed, which is the whole point of
//! striping (paper §7, Figure 6).
//!
//! Each server adds a 1 ms service time per data RPC, standing in for
//! the per-request disk seek + network round trip of the paper's real
//! cluster (on a 100 Mb/s port a 256 KiB stripe alone takes ~20 ms).
//! Raw loopback has no latency to overlap — it is a memcpy — so
//! without this the benchmark would measure memory bandwidth on one
//! core, not the data path the abstraction exists for.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use tss_bench::auth;
use tss_core::fs::FileSystem;
use tss_core::stubfs::{DataServer, StubFsOptions};
use tss_core::{LocalFs, StripedFs};

const FILE_SIZE: usize = 8 * 1024 * 1024;
const STRIPE_SIZE: u64 = 256 * 1024;
const SERVICE_DELAY: Duration = Duration::from_millis(1);

/// A loopback server with the per-RPC service time applied.
fn open_delayed_server(root: &std::path::Path) -> FileServer {
    FileServer::start(
        ServerConfig::localhost(root, "bench")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap())
            .with_service_delay(SERVICE_DELAY),
    )
    .expect("start chirp server")
}

struct Rig {
    // Held for their Drop side effects: servers stop, dirs vanish.
    _hosts: Vec<TempDir>,
    _servers: Vec<chirp_server::FileServer>,
    _meta: TempDir,
    fs: StripedFs,
}

/// A striped filesystem of `width` loopback servers with one test
/// file already written, fan-out on or off.
fn rig(width: usize, parallel: bool) -> Rig {
    let hosts: Vec<TempDir> = (0..width).map(|_| TempDir::new()).collect();
    let servers: Vec<chirp_server::FileServer> = hosts
        .iter()
        .map(|d| open_delayed_server(d.path()))
        .collect();
    let pool: Vec<DataServer> = servers
        .iter()
        .map(|s| DataServer::new(&s.endpoint(), "/vol", auth()))
        .collect();
    let meta = TempDir::new();
    let options = StubFsOptions {
        timeout: Duration::from_secs(10),
        parallel_fanout: parallel,
        ..StubFsOptions::default()
    };
    let fs = StripedFs::new(
        Arc::new(LocalFs::new(meta.path()).unwrap()),
        pool,
        width,
        STRIPE_SIZE,
        options,
    )
    .unwrap();
    fs.ensure_volumes().unwrap();
    fs.write_file("/bench", &vec![7u8; FILE_SIZE]).unwrap();
    Rig {
        _hosts: hosts,
        _servers: servers,
        _meta: meta,
        fs,
    }
}

fn bench_striped_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("striped_read");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g.sample_size(10);
    g.throughput(Throughput::Bytes(FILE_SIZE as u64));
    for width in [1usize, 2, 4, 8] {
        for (mode, parallel) in [("seq", false), ("par", true)] {
            let r = rig(width, parallel);
            let mut buf = vec![0u8; FILE_SIZE];
            g.bench_function(BenchmarkId::new(mode, width), |b| {
                b.iter(|| {
                    let mut h = r.fs.open("/bench", OpenFlags::READ, 0).unwrap();
                    let n = h.pread(&mut buf, 0).unwrap();
                    assert_eq!(n, FILE_SIZE);
                })
            });
        }
    }
    g.finish();
}

fn bench_striped_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("striped_write");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g.sample_size(10);
    g.throughput(Throughput::Bytes(FILE_SIZE as u64));
    let data = vec![9u8; FILE_SIZE];
    for width in [1usize, 2, 4, 8] {
        for (mode, parallel) in [("seq", false), ("par", true)] {
            let r = rig(width, parallel);
            g.bench_function(BenchmarkId::new(mode, width), |b| {
                b.iter(|| {
                    let mut h = r.fs.open("/bench", OpenFlags::WRITE, 0).unwrap();
                    let n = h.pwrite(&data, 0).unwrap();
                    assert_eq!(n, FILE_SIZE);
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_striped_read, bench_striped_write);
criterion_main!(benches);

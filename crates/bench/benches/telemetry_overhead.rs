//! Cost of the telemetry fast path, and its tax on the data path.
//!
//! Two acceptance bars from the issue: a counter increment or
//! histogram record must stay under 50 ns (they are single relaxed
//! atomic RMWs), and the instrumented CFS read path must stay within
//! 2% of its pre-telemetry latency. The second bar is approximated
//! here by comparing an 8 KiB loopback read against the same numbers
//! `retry_overhead`/`microbench` established before instrumentation —
//! both are recorded side by side in EXPERIMENTS.md.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use tss_bench::auth;
use tss_core::cfs::{Cfs, CfsConfig};
use tss_core::fs::FileSystem;

fn bench_primitives(c: &mut Criterion) {
    let registry = telemetry::Registry::default();
    let mut g = c.benchmark_group("telemetry");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    let counter = registry.counter("bench.counter");
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let gauge = registry.gauge("bench.gauge");
    g.bench_function("gauge_set", |b| b.iter(|| gauge.set(black_box(42))));

    let hist = registry.histogram("bench.hist");
    let mut v = 0u64;
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(v >> 32));
        })
    });

    g.bench_function("span_start_elapsed", |b| {
        b.iter(|| {
            let span = telemetry::SpanTimer::start();
            black_box(span.elapsed_ns())
        })
    });

    // Registration-path lookup (name hash + lock), for contrast with
    // the prebuilt-handle fast path above.
    g.bench_function("counter_lookup_inc", |b| {
        b.iter(|| registry.counter("bench.counter").inc())
    });

    // Snapshot cost with a realistically-sized registry (the server
    // takes one per catalog report).
    let loaded = telemetry::Registry::default();
    for i in 0..32 {
        loaded.counter(&format!("rpc.op{i}.count")).add(i);
    }
    for name in ["rpc.latency_ns", "rpc.data.latency_ns"] {
        let h = loaded.histogram(name);
        for v in 0..1000u64 {
            h.record(v * 977);
        }
    }
    g.bench_function("registry_snapshot_34", |b| {
        b.iter(|| black_box(loaded.snapshot()))
    });
    g.finish();
}

fn bench_instrumented_read(c: &mut Criterion) {
    let dir = TempDir::new();
    let server = FileServer::start(
        ServerConfig::localhost(dir.path(), "bench")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
    )
    .expect("start chirp server");
    let mut cfg = CfsConfig::new(&server.endpoint(), auth());
    cfg.timeout = Duration::from_secs(10);
    let fs = Cfs::new(cfg);
    fs.write_file("/f", &vec![7u8; 8192]).unwrap();

    let mut g = c.benchmark_group("telemetry");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let mut h = fs.open("/f", OpenFlags::READ, 0).unwrap();
    let mut buf = vec![0u8; 8192];
    // Compare against `retry_overhead/read8k/default` (the same path
    // before instrumentation): must be within 2%.
    g.bench_function("instrumented_read8k", |b| {
        b.iter(|| h.pread(&mut buf, 0).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_primitives, bench_instrumented_read);
criterion_main!(benches);

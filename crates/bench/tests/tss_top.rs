//! `tss-top` end-to-end: boot a real server and catalog, drive RPCs,
//! then run the actual binary one iteration against the catalog and
//! check the rendered table names the server with non-zero activity.

use std::sync::Arc;
use std::time::Duration;

use catalog::{CatalogConfig, CatalogServer};
use chirp_client::{AuthMethod, Connection};
use chirp_proto::testutil::TempDir;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use controlplane::{FedCatalog, FedConfig};

#[test]
fn tss_top_renders_live_server_metrics() {
    let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(30))).unwrap();
    let dir = TempDir::new();
    let mut cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap())
        .with_catalog(cat.udp_addr(), Duration::from_millis(50));
    cfg.server_name = Some("bench-node".to_string());
    cfg.cache_bytes = Some(1 << 20);
    let server = FileServer::start(cfg).unwrap();

    let mut conn = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    conn.putfile("/x", 0o644, b"payload").unwrap();
    for _ in 0..4 {
        conn.stat("/x").unwrap();
    }
    // Cached reads, so the CACHE% / RES(KB) columns have something to
    // show: the first read populates, the rest hit.
    let fd = conn.open("/x", chirp_proto::OpenFlags::READ, 0).unwrap();
    for _ in 0..4 {
        conn.pread(fd, 7, 0).unwrap();
    }
    drop(conn);

    // Wait until the catalog has a report carrying RPC and cache
    // counters from after the driven traffic.
    for _ in 0..400 {
        let l = cat.listing();
        if l.first().is_some_and(|r| {
            r.metrics.counter_sum("rpc.") > 0 && r.metrics.counter("cache.hits").unwrap_or(0) > 0
        }) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tss-top"))
        .arg(cat.tcp_addr().to_string())
        .args(["--iterations", "1", "--interval", "0.1"])
        .output()
        .expect("run tss-top");
    assert!(out.status.success(), "tss-top exited non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("NAME"), "header row missing:\n{stdout}");
    assert!(
        stdout.contains("bench-node"),
        "server row missing:\n{stdout}"
    );
    let row = stdout
        .lines()
        .find(|l| l.starts_with("bench-node"))
        .expect("server row");
    let rpcs: u64 = row.split_whitespace().nth(2).unwrap().parse().unwrap();
    assert!(rpcs >= 5, "RPC total should cover the driven ops: {row}");
    let hit_pct: f64 = row.split_whitespace().nth(8).unwrap().parse().unwrap();
    assert!(
        hit_pct > 0.0,
        "CACHE% should reflect the repeated preads: {row}"
    );
    let resident_kb: i64 = row.split_whitespace().nth(9).unwrap().parse().unwrap();
    assert!(
        resident_kb > 0,
        "RES(KB) should show the populated page: {row}"
    );
    // Against a classic catalog the federation columns degrade: SHARD
    // is `-` and no PEERS footer is printed.
    assert_eq!(row.split_whitespace().nth(10), Some("-"));
    assert!(!stdout.contains("PEERS"), "no federation footer:\n{stdout}");
}

#[test]
fn tss_top_shows_shard_homes_and_federation_footer() {
    // Two federation shards on real TCP, the transport tss-top uses.
    let listeners: Vec<std::net::TcpListener> = (0..2)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: Vec<(String, String)> = ["fed-a", "fed-b"]
        .iter()
        .zip(&listeners)
        .map(|(n, l)| (n.to_string(), l.local_addr().unwrap().to_string()))
        .collect();
    let shards: Vec<FedCatalog> = peers
        .clone()
        .into_iter()
        .zip(listeners)
        .map(|((name, endpoint), listener)| {
            FedCatalog::start(FedConfig::new(&name, &endpoint), Arc::new(listener), &peers).unwrap()
        })
        .collect();

    // One real server report, fed to shard 0 and gossiped across.
    let dir = TempDir::new();
    let mut cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    cfg.server_name = Some("fed-node".to_string());
    let server = FileServer::start(cfg).unwrap();
    let mut conn = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    conn.putfile("/x", 0o644, b"payload").unwrap();
    drop(conn);
    shards[0].ingest(catalog::ServerReport::parse(&server.compose_report()).unwrap());
    shards[0].gossip_once().unwrap();

    for shard in &shards {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_tss-top"))
            .arg(shard.endpoint())
            .args(["--iterations", "1", "--interval", "0.1"])
            .output()
            .expect("run tss-top");
        assert!(out.status.success(), "tss-top exited non-zero");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let row = stdout
            .lines()
            .find(|l| l.starts_with("fed-node"))
            .unwrap_or_else(|| panic!("server row missing:\n{stdout}"));
        // The SHARD column names the server's home shard — the same
        // one from either vantage point, since the ring is shared.
        let home = row.split_whitespace().nth(10).unwrap();
        assert!(
            home == "fed-a" || home == "fed-b",
            "SHARD column should name a shard: {row}"
        );
        // The footer lists this shard as `self` plus its peer.
        assert!(stdout.contains("PEERS"), "federation footer:\n{stdout}");
        for (name, _) in &peers {
            assert!(stdout.contains(name.as_str()), "footer lists {name}");
        }
        assert!(stdout.contains("self"));
    }
}

//! Fast-mode THIRDPUT distribution-tree bench for
//! `scripts/verify.sh --fed`: 8 real TCP file servers with an
//! injected per-data-RPC service time (loopback otherwise hides the
//! transfer cost the tree amortizes), comparing three ways to place
//! 8 replicas of one file:
//!
//! * **direct** — one source→target push, the unit of cost;
//! * **serial** — the naive loop, 7 pushes from the source, ~7 units;
//! * **tree** — `controlplane::tree::distribute`'s depot-to-depot
//!   doubling, where every completed replica immediately pushes to
//!   the next orphan, so wall time is ~⌈log2⌉ units.
//!
//! The asserted floor is the ISSUE's acceptance bar — the 8-replica
//! tree lands within 4× of one direct push — with the true ratio on
//! this rig ~3× (depth 3), so a loaded CI machine has real slack.
//! The printed table feeds EXPERIMENTS.md.

use std::sync::Arc;
use std::time::{Duration, Instant};

use chirp_proto::testutil::TempDir;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use controlplane::{distribute, ideal_depth, TreeConfig, TreeTarget};
use tss_bench::auth;
use tss_core::cfs::{Cfs, CfsConfig};

const SERVICE_DELAY: Duration = Duration::from_millis(25);
const PAYLOAD_LEN: usize = 64 * 1024;
const REPLICAS: usize = 8;

fn cfs_for(endpoint: &str) -> Arc<Cfs> {
    Arc::new(Cfs::new(CfsConfig::new(endpoint, auth())))
}

/// Best-of-3 wall time, to shrug off load spikes on a shared CI box
/// (same idiom as `pipeline_smoke`) — pushes are idempotent, so
/// repeating a round just overwrites the same replica bytes.
fn best_of_3<T>(mut run: impl FnMut() -> T) -> (Duration, T) {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            let out = run();
            (t.elapsed(), out)
        })
        .min_by_key(|(d, _)| *d)
        .unwrap()
}

#[test]
fn eight_replica_tree_lands_within_4x_of_one_direct_push() {
    let dirs: Vec<TempDir> = (0..REPLICAS).map(|_| TempDir::new()).collect();
    let servers: Vec<FileServer> = dirs
        .iter()
        .map(|d| {
            FileServer::start(
                ServerConfig::localhost(d.path(), "bench")
                    .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap())
                    .with_service_delay(SERVICE_DELAY),
            )
            .expect("start chirp server")
        })
        .collect();
    let endpoints: Vec<String> = servers.iter().map(|s| s.endpoint()).collect();

    let payload: Vec<u8> = (0..PAYLOAD_LEN as u32).map(|i| (i % 251) as u8).collect();
    let source_cfs = cfs_for(&endpoints[0]);
    source_cfs.putfile("/payload", 0o644, &payload).unwrap();

    // One direct push: the unit every strategy is priced in.
    let (direct, ()) = best_of_3(|| {
        source_cfs
            .thirdput("/payload", &endpoints[1], "/payload")
            .unwrap();
    });

    // The naive loop: the source pushes to all 7 targets itself.
    let t = Instant::now();
    for ep in &endpoints[1..] {
        source_cfs.thirdput("/payload", ep, "/payload").unwrap();
    }
    let serial = t.elapsed();

    // The doubling tree over the same 7 targets.
    let source = TreeTarget::new(&endpoints[0], "/payload");
    let targets: Vec<TreeTarget> = endpoints[1..]
        .iter()
        .map(|ep| TreeTarget::new(ep, "/payload"))
        .collect();
    let (tree, report) = best_of_3(|| {
        distribute(
            &source,
            &targets,
            |ep| cfs_for(ep),
            &TreeConfig::default(),
            None,
            None,
        )
    });

    assert_eq!(report.failed.len(), 0, "fault-free run must not fail");
    assert_eq!(report.completed.len(), REPLICAS - 1);
    assert_eq!(report.depth, ideal_depth(REPLICAS - 1));
    for d in &dirs[1..] {
        assert_eq!(std::fs::read(d.path().join("payload")).unwrap(), payload);
    }

    let ratio = |d: Duration| d.as_secs_f64() / direct.as_secs_f64();
    println!(
        "tree_smoke: {REPLICAS} replicas, {PAYLOAD_LEN} B payload, {SERVICE_DELAY:?} service delay"
    );
    println!(
        "  direct 1 push   {:>8.1} ms   1.0x",
        direct.as_secs_f64() * 1e3
    );
    println!(
        "  serial 7 pushes {:>8.1} ms   {:.1}x",
        serial.as_secs_f64() * 1e3,
        ratio(serial)
    );
    println!(
        "  tree depth {}    {:>8.1} ms   {:.1}x   ({} hops, {} B relayed)",
        report.depth,
        tree.as_secs_f64() * 1e3,
        ratio(tree),
        report.hops,
        report.bytes_relayed
    );

    // The acceptance bar: the whole 8-replica tree within 4x of one
    // push. The ideal is ~3x (depth 3); 4x absorbs CI scheduling.
    assert!(
        tree <= direct * 4,
        "8-replica tree took {tree:?}, more than 4x one direct push ({direct:?})"
    );
    // And it must actually beat the naive serial loop.
    assert!(
        tree < serial,
        "tree ({tree:?}) should beat 7 serial pushes ({serial:?})"
    );
}

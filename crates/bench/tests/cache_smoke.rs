//! Fast-mode buffer-cache smoke for `scripts/verify.sh --cache`: the
//! acceptance floor for the server-side page cache, measured at the
//! handler layer (no sockets) so the cache's effect is not drowned in
//! loopback round trips.
//!
//! * **Hot**: 8 KiB `PREAD`s over a working set that fits the cache
//!   must run ≥2× faster than the same reads through a cacheless
//!   server (which still enjoys the OS page cache — the floor is
//!   against the *best* read-through case, syscall included).
//! * **Cold/oversized**: reads past the bypass threshold must stay
//!   near the read-through baseline — the cache can lose a little to
//!   bookkeeping but must never fall off a cliff.
//!
//! Thresholds are deliberately lax versions of the measured ratios
//! (see EXPERIMENTS.md) so only a real regression trips them. The
//! timing floors are release-only: both sides of the comparison are
//! CPU-bound handler code, and an unoptimized build skews the ratio
//! meaninglessly. Debug runs still check every correctness property
//! (byte equality, reply variants, hit rate).

use std::net::IpAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chirp_proto::message::Request;
use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::handlers::{Reply, Session};
use chirp_server::server::Shared;
use chirp_server::ServerConfig;

const PAGE: u64 = 8192;
const WORKING_SET: u64 = 2 << 20; // 2 MiB = 256 pages
const CACHE: u64 = 8 << 20; // holds the whole working set
const READS: usize = 4_000;

fn rig(root: &std::path::Path, cache: Option<u64>) -> (Arc<Shared>, Session, i32) {
    let mut cfg = ServerConfig::localhost(root, "bench")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    cfg.cache_bytes = cache;
    let shared = Shared::new(cfg).unwrap();
    let ip: IpAddr = "127.0.0.1".parse().unwrap();
    let mut s = Session::new(shared.clone(), ip);
    s.handle(
        Request::Auth {
            method: "hostname".into(),
            name: "localhost".into(),
            credential: String::new(),
        },
        None,
    )
    .unwrap();
    let Ok(Reply::Value(fd)) = s.handle(
        Request::Open {
            path: "/data".into(),
            flags: OpenFlags::read_write() | OpenFlags::CREATE,
            mode: 0o644,
        },
        None,
    ) else {
        panic!("open");
    };
    let fd = fd as i32;
    // Lay down the working set page by page.
    for i in 0..WORKING_SET / PAGE {
        let chunk = vec![(i % 251) as u8; PAGE as usize];
        s.handle(
            Request::Pwrite {
                fd,
                length: PAGE,
                offset: i * PAGE,
            },
            Some(chunk),
        )
        .unwrap();
    }
    (shared, s, fd)
}

/// Drive `READS` page-aligned 8 KiB preads at LCG-picked offsets.
/// Returns total bytes delivered (same for every rig — checked).
fn read_loop(s: &mut Session, fd: i32) -> u64 {
    let pages = WORKING_SET / PAGE;
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut total = 0u64;
    for _ in 0..READS {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let offset = ((state >> 33) % pages) * PAGE;
        match s.handle(
            Request::Pread {
                fd,
                length: PAGE,
                offset,
            },
            None,
        ) {
            Ok(Reply::Pages(p)) => total += p.total() as u64,
            Ok(Reply::Scratch(n)) => total += n as u64,
            other => panic!("pread: {other:?}"),
        }
    }
    total
}

/// Best-of-3 wall time, to shrug off load spikes.
fn best_of_3(mut run: impl FnMut() -> u64) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut bytes = 0;
    for _ in 0..3 {
        let t = Instant::now();
        bytes = run();
        best = best.min(t.elapsed());
    }
    (best, bytes)
}

#[test]
fn hot_cached_reads_are_at_least_twice_read_through() {
    let dir_hot = TempDir::new();
    let dir_cold = TempDir::new();
    let (shared, mut hot, fd_hot) = rig(dir_hot.path(), Some(CACHE));
    let (_, mut base, fd_base) = rig(dir_cold.path(), None);

    // Warm both: the cached rig populates its pages, the baseline
    // warms the OS page cache (the fairest possible read-through).
    read_loop(&mut hot, fd_hot);
    read_loop(&mut base, fd_base);

    let (t_hot, b_hot) = best_of_3(|| read_loop(&mut hot, fd_hot));
    let (t_base, b_base) = best_of_3(|| read_loop(&mut base, fd_base));
    assert_eq!(b_hot, b_base, "both rigs must deliver identical bytes");

    let ratio = t_base.as_secs_f64() / t_hot.as_secs_f64();
    println!("hot 8KiB preads: cached {t_hot:?}, read-through {t_base:?} ({ratio:.1}x)");
    assert!(
        cfg!(debug_assertions) || ratio >= 2.0,
        "cached hot reads only {ratio:.2}x read-through (floor is 2x)"
    );

    // The workload fits the cache, so after warm-up the hit rate must
    // be essentially perfect.
    let reg = shared.telemetry.registry();
    let hits = reg.counter("cache.hits").get();
    let misses = reg.counter("cache.misses").get();
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        rate > 0.95,
        "resident working set should hit >95%, got {rate:.3} ({hits} hits / {misses} misses)"
    );
}

#[test]
fn oversized_reads_stay_near_the_baseline() {
    let dir_a = TempDir::new();
    let dir_b = TempDir::new();
    let (_, mut cached, fd_c) = rig(dir_a.path(), Some(CACHE));
    let (_, mut base, fd_b) = rig(dir_b.path(), None);

    // Reads larger than the bypass threshold (CACHE/2 = 4 MiB) take
    // the scratch read-through path even on a cache-enabled server;
    // grow the file past that first.
    let big = 6 << 20;
    for (s, fd) in [(&mut cached, fd_c), (&mut base, fd_b)] {
        s.handle(
            Request::Pwrite {
                fd,
                length: PAGE,
                offset: big - PAGE,
            },
            Some(vec![1u8; PAGE as usize]),
        )
        .unwrap();
    }
    let sweep = |s: &mut Session, fd: i32| -> u64 {
        let mut total = 0;
        for _ in 0..8 {
            match s.handle(
                Request::Pread {
                    fd,
                    length: big,
                    offset: 0,
                },
                None,
            ) {
                Ok(Reply::Scratch(n)) => total += n as u64,
                other => panic!("oversized pread should read through, got {other:?}"),
            }
        }
        total
    };
    sweep(&mut cached, fd_c);
    sweep(&mut base, fd_b);
    let (t_cached, b1) = best_of_3(|| sweep(&mut cached, fd_c));
    let (t_base, b2) = best_of_3(|| sweep(&mut base, fd_b));
    assert_eq!(b1, b2);
    let ratio = t_cached.as_secs_f64() / t_base.as_secs_f64();
    println!("oversized 6MiB preads: cached rig {t_cached:?}, baseline {t_base:?} ({ratio:.2}x)");
    // Measured ~1.0x (the bypass check is one compare); 1.5 leaves CI
    // headroom without letting a real cliff through.
    assert!(
        cfg!(debug_assertions) || ratio <= 1.5,
        "oversized reads on the cached server are {ratio:.2}x the baseline"
    );
}

//! Fast-mode `rpc_pipeline` smoke for `scripts/verify.sh --pipeline`:
//! the same rig as `benches/rpc_pipeline.rs` with a larger injected
//! round trip and fewer ops, asserting the acceptance floor — ≥2×
//! small-op throughput at pipeline depth 8 vs depth 1 — in a couple
//! hundred milliseconds instead of a full Criterion run.
//!
//! The margin is deliberate: the true ratio on this rig is ~6× (the
//! 2 ms turnaround dominates and is paid once per batch of 8), so a
//! loaded CI machine has to be pathologically unfair to drop it
//! below 2.

use std::time::{Duration, Instant};

use chirp_client::Connection;
use chirp_proto::testutil::TempDir;
use chirp_proto::transport::Dialer;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use tss_bench::{auth, latency_dialer, pipelined_preads, pipelined_stats};

const OPS: usize = 32;
const SERVICE_DELAY: Duration = Duration::from_micros(50);
const TURNAROUND: Duration = Duration::from_millis(2);

fn rig() -> (TempDir, FileServer, Connection, i32) {
    let host = TempDir::new();
    let server = FileServer::start(
        ServerConfig::localhost(host.path(), "bench")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap())
            .with_service_delay(SERVICE_DELAY),
    )
    .expect("start chirp server");
    let dialer = latency_dialer(Dialer::tcp(), TURNAROUND);
    let mut conn =
        Connection::connect_via(&dialer, &server.endpoint(), Duration::from_secs(10)).unwrap();
    conn.authenticate(&auth()).unwrap();
    conn.putfile("/small", 0o644, &vec![5u8; 1024]).unwrap();
    let fd = conn.open("/small", OpenFlags::READ, 0).unwrap();
    (host, server, conn, fd)
}

/// Best-of-3 wall time for one batch run, to shrug off load spikes.
fn best_of_3(mut run: impl FnMut()) -> Duration {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed()
        })
        .min()
        .unwrap()
}

#[test]
fn depth_8_is_at_least_twice_depth_1_for_small_ops() {
    let (_host, _server, mut conn, fd) = rig();

    let pread_d1 = best_of_3(|| pipelined_preads(&mut conn, fd, 1024, OPS, 1));
    let pread_d8 = best_of_3(|| pipelined_preads(&mut conn, fd, 1024, OPS, 8));
    let stat_d1 = best_of_3(|| pipelined_stats(&mut conn, "/small", OPS, 1));
    let stat_d8 = best_of_3(|| pipelined_stats(&mut conn, "/small", OPS, 8));

    let pread_ratio = pread_d1.as_secs_f64() / pread_d8.as_secs_f64();
    let stat_ratio = stat_d1.as_secs_f64() / stat_d8.as_secs_f64();
    println!(
        "pread 1KiB: depth1 {pread_d1:?}, depth8 {pread_d8:?} ({pread_ratio:.1}x); \
         stat: depth1 {stat_d1:?}, depth8 {stat_d8:?} ({stat_ratio:.1}x)"
    );
    assert!(
        pread_ratio >= 2.0,
        "pipelined 1 KiB preads at depth 8 only {pread_ratio:.2}x depth 1"
    );
    assert!(
        stat_ratio >= 2.0,
        "pipelined stats at depth 8 only {stat_ratio:.2}x depth 1"
    );
}

//! `tss-top` — live per-server RPC activity from a catalog.
//!
//! Polls a catalog's `metrics-json` query interface and renders a
//! table of per-server RPC totals, rates (from successive samples),
//! error counts, and latency quantiles — the observability face of
//! the telemetry the file servers fold into their reports.
//!
//! Usage: `tss-top <catalog-host:port> [--interval SECS]
//! [--iterations N]`. With `--iterations 0` (default) it runs until
//! interrupted; tests pass a small count to get a bounded run.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use controlplane::HashRing;
use telemetry::json::Value;
use telemetry::{MetricValue, MetricsSnapshot};

struct Row {
    name: String,
    address: String,
    rpcs: u64,
    rate: f64,
    errors: u64,
    p50_us: f64,
    p99_us: f64,
    free: Option<u64>,
    /// Buffer-cache hit rate and resident bytes, when the server runs
    /// one (`--cache-bytes`); servers without a cache report neither
    /// counter and show `-`.
    cache: Option<(f64, i64)>,
    /// Home catalog shard when the queried catalog is federated; `-`
    /// against a classic single catalog.
    shard: Option<String>,
    /// Reactor slow-reader backpressure events; `-` for servers that
    /// predate the reactor core and report no `reactor.*` counters.
    backpressure: Option<u64>,
}

/// A federated catalog's `fed-status` self-description: enough to
/// rebuild its hash ring and attribute each server to a home shard.
struct FedStatus {
    shard: String,
    endpoint: String,
    entries: u64,
    forwarded: u64,
    /// (name, endpoint, alive, forwarded) per peer.
    peers: Vec<(String, String, bool, u64)>,
    ring: HashRing,
}

/// Ask the catalog whether it is a federation shard. A classic
/// catalog answers the unknown `fed-status` verb with its text
/// listing, which does not parse as a JSON object — that is the
/// "not federated" signal, so the columns degrade to `-`.
fn fed_status(addr: SocketAddr, timeout: Duration) -> Option<FedStatus> {
    let body = catalog::client::query_raw_via(
        &chirp_proto::transport::Dialer::tcp(),
        &addr.to_string(),
        timeout,
        "fed-status",
    )
    .ok()?;
    let parsed = Value::parse(body.trim())?;
    let shard = parsed.get("shard")?.as_str()?.to_string();
    let endpoint = parsed.get("endpoint")?.as_str()?.to_string();
    let seed = parsed.get("seed")?.as_u64()?;
    let vnodes = parsed.get("vnodes")?.as_u64()? as usize;
    let entries = parsed.get("entries")?.as_u64()?;
    let forwarded = parsed.get("forwarded")?.as_u64()?;
    let mut peers = Vec::new();
    for peer in parsed.get("peers")?.as_array()? {
        let alive = matches!(peer.get("alive")?, Value::Bool(true));
        peers.push((
            peer.get("name")?.as_str()?.to_string(),
            peer.get("endpoint")?.as_str()?.to_string(),
            alive,
            peer.get("forwarded")?.as_u64()?,
        ));
    }
    let members = std::iter::once(shard.clone()).chain(peers.iter().map(|p| p.0.clone()));
    let ring = HashRing::with_peers(seed, vnodes, members);
    Some(FedStatus {
        shard,
        endpoint,
        entries,
        forwarded,
        peers,
        ring,
    })
}

fn fetch(
    addr: SocketAddr,
    timeout: Duration,
) -> std::io::Result<Vec<(String, String, MetricsSnapshot)>> {
    let body = catalog::client::query_metrics_json(addr, timeout)?;
    let parsed = Value::parse(body.trim())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad JSON"))?;
    let mut out = Vec::new();
    for entry in parsed.as_array().unwrap_or(&[]) {
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let address = entry
            .get("address")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let snap = entry
            .get("metrics")
            .and_then(MetricsSnapshot::from_json_value)
            .unwrap_or_default();
        out.push((name, address, snap));
    }
    Ok(out)
}

/// Free space per server comes from the full listing, not the metrics
/// view; fold it in opportunistically.
fn free_by_name(addr: SocketAddr, timeout: Duration) -> HashMap<String, u64> {
    catalog::query(addr, timeout)
        .map(|reports| reports.into_iter().map(|r| (r.name, r.free)).collect())
        .unwrap_or_default()
}

fn rows(
    servers: &[(String, String, MetricsSnapshot)],
    prev: &HashMap<String, (u64, Instant)>,
    free: &HashMap<String, u64>,
    fed: Option<&FedStatus>,
) -> Vec<Row> {
    servers
        .iter()
        .map(|(name, address, snap)| {
            let rpcs = snap
                .metrics
                .iter()
                .filter(|(k, _)| k.starts_with("rpc.") && k.ends_with(".count"))
                .map(|(_, v)| match v {
                    MetricValue::Counter(n) => *n,
                    _ => 0,
                })
                .sum::<u64>();
            let rate = prev
                .get(name)
                .map(|(old, at)| {
                    let dt = at.elapsed().as_secs_f64();
                    if dt > 0.0 {
                        rpcs.saturating_sub(*old) as f64 / dt
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0);
            let (p50_us, p99_us) = snap
                .histogram("rpc.latency_ns")
                .map(|h| (h.quantile(0.50) as f64 / 1e3, h.quantile(0.99) as f64 / 1e3))
                .unwrap_or((0.0, 0.0));
            let cache = snap.counter("cache.hits").map(|hits| {
                let misses = snap.counter("cache.misses").unwrap_or(0);
                let rate = if hits + misses > 0 {
                    hits as f64 / (hits + misses) as f64
                } else {
                    0.0
                };
                let resident = match snap.metrics.get("cache.resident_bytes") {
                    Some(MetricValue::Gauge(b)) => *b,
                    _ => 0,
                };
                (rate, resident)
            });
            Row {
                name: name.clone(),
                address: address.clone(),
                rpcs,
                rate,
                errors: snap.counter("rpc.errors").unwrap_or(0),
                p50_us,
                p99_us,
                free: free.get(name).copied(),
                cache,
                shard: fed.and_then(|f| f.ring.shard_for(name).map(str::to_string)),
                backpressure: snap.counter("reactor.backpressure"),
            }
        })
        .collect()
}

fn render(rows: &[Row]) {
    // New columns go at the end: scripts (and the tss_top test)
    // address existing ones by position.
    println!(
        "{:<28} {:<22} {:>8} {:>8} {:>6} {:>9} {:>9} {:>10} {:>7} {:>9} {:<12} {:>6}",
        "NAME",
        "ADDRESS",
        "RPCS",
        "RPC/S",
        "ERRS",
        "P50(us)",
        "P99(us)",
        "FREE(MB)",
        "CACHE%",
        "RES(KB)",
        "SHARD",
        "BACKP"
    );
    for r in rows {
        let free = r
            .free
            .map(|f| format!("{}", f / (1 << 20)))
            .unwrap_or_else(|| "-".to_string());
        let (hit, res) = r
            .cache
            .map(|(rate, resident)| {
                (
                    format!("{:.1}", rate * 100.0),
                    format!("{}", resident / 1024),
                )
            })
            .unwrap_or_else(|| ("-".to_string(), "-".to_string()));
        let shard = r.shard.as_deref().unwrap_or("-");
        let backp = r
            .backpressure
            .map(|b| b.to_string())
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<28} {:<22} {:>8} {:>8.1} {:>6} {:>9.1} {:>9.1} {:>10} {:>7} {:>9} {:<12} {:>6}",
            r.name,
            r.address,
            r.rpcs,
            r.rate,
            r.errors,
            r.p50_us,
            r.p99_us,
            free,
            hit,
            res,
            shard,
            backp
        );
    }
    if rows.is_empty() {
        println!("(no servers reporting)");
    }
}

/// The federation footer: one row per catalog shard — the one we are
/// querying plus every peer it gossips with — with liveness and the
/// forwarded-report rate computed from successive samples.
fn render_federation(fed: &FedStatus, prev_fwd: &HashMap<String, (u64, Instant)>) {
    let fwd_rate = |name: &str, fwd: u64| -> f64 {
        prev_fwd
            .get(name)
            .map(|(old, at)| {
                let dt = at.elapsed().as_secs_f64();
                if dt > 0.0 {
                    fwd.saturating_sub(*old) as f64 / dt
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0)
    };
    println!();
    println!(
        "{:<12} {:<22} {:>7} {:>9} {:>8} {:>8}",
        "PEERS", "ENDPOINT", "ALIVE", "ENTRIES", "FWD", "FWD/S"
    );
    println!(
        "{:<12} {:<22} {:>7} {:>9} {:>8} {:>8.1}",
        fed.shard,
        fed.endpoint,
        "self",
        fed.entries,
        fed.forwarded,
        fwd_rate(&fed.shard, fed.forwarded)
    );
    for (name, endpoint, alive, forwarded) in &fed.peers {
        println!(
            "{:<12} {:<22} {:>7} {:>9} {:>8} {:>8.1}",
            name,
            endpoint,
            if *alive { "yes" } else { "no" },
            "-",
            forwarded,
            fwd_rate(name, *forwarded)
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut catalog_addr: Option<SocketAddr> = None;
    let mut interval = Duration::from_secs(2);
    let mut iterations: u64 = 0;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--interval" => {
                i += 1;
                let secs: f64 = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--interval needs a number of seconds");
                    std::process::exit(2);
                });
                interval = Duration::from_secs_f64(secs);
            }
            "--iterations" => {
                i += 1;
                iterations = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--iterations needs a count");
                    std::process::exit(2);
                });
            }
            other => {
                catalog_addr = other.parse().ok();
                if catalog_addr.is_none() {
                    eprintln!("unrecognized argument or bad address: {other}");
                    eprintln!(
                        "usage: tss-top <catalog-host:port> [--interval SECS] [--iterations N]"
                    );
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    let Some(addr) = catalog_addr else {
        eprintln!("usage: tss-top <catalog-host:port> [--interval SECS] [--iterations N]");
        std::process::exit(2);
    };

    let timeout = Duration::from_secs(5);
    let mut prev: HashMap<String, (u64, Instant)> = HashMap::new();
    let mut prev_fwd: HashMap<String, (u64, Instant)> = HashMap::new();
    let mut round = 0u64;
    loop {
        match fetch(addr, timeout) {
            Ok(servers) => {
                let free = free_by_name(addr, timeout);
                let fed = fed_status(addr, timeout);
                let table = rows(&servers, &prev, &free, fed.as_ref());
                let now = Instant::now();
                for r in &table {
                    prev.insert(r.name.clone(), (r.rpcs, now));
                }
                println!();
                render(&table);
                if let Some(fed) = &fed {
                    render_federation(fed, &prev_fwd);
                    prev_fwd.insert(fed.shard.clone(), (fed.forwarded, now));
                    for (name, _, _, forwarded) in &fed.peers {
                        prev_fwd.insert(name.clone(), (*forwarded, now));
                    }
                }
            }
            Err(e) => eprintln!("query {addr} failed: {e}"),
        }
        round += 1;
        if iterations > 0 && round >= iterations {
            break;
        }
        std::thread::sleep(interval);
    }
}

//! `tss-top` — live per-server RPC activity from a catalog.
//!
//! Polls a catalog's `metrics-json` query interface and renders a
//! table of per-server RPC totals, rates (from successive samples),
//! error counts, and latency quantiles — the observability face of
//! the telemetry the file servers fold into their reports.
//!
//! Usage: `tss-top <catalog-host:port> [--interval SECS]
//! [--iterations N]`. With `--iterations 0` (default) it runs until
//! interrupted; tests pass a small count to get a bounded run.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use telemetry::json::Value;
use telemetry::{MetricValue, MetricsSnapshot};

struct Row {
    name: String,
    address: String,
    rpcs: u64,
    rate: f64,
    errors: u64,
    p50_us: f64,
    p99_us: f64,
    free: Option<u64>,
    /// Buffer-cache hit rate and resident bytes, when the server runs
    /// one (`--cache-bytes`); servers without a cache report neither
    /// counter and show `-`.
    cache: Option<(f64, i64)>,
}

fn fetch(
    addr: SocketAddr,
    timeout: Duration,
) -> std::io::Result<Vec<(String, String, MetricsSnapshot)>> {
    let body = catalog::client::query_metrics_json(addr, timeout)?;
    let parsed = Value::parse(body.trim())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad JSON"))?;
    let mut out = Vec::new();
    for entry in parsed.as_array().unwrap_or(&[]) {
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let address = entry
            .get("address")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let snap = entry
            .get("metrics")
            .and_then(MetricsSnapshot::from_json_value)
            .unwrap_or_default();
        out.push((name, address, snap));
    }
    Ok(out)
}

/// Free space per server comes from the full listing, not the metrics
/// view; fold it in opportunistically.
fn free_by_name(addr: SocketAddr, timeout: Duration) -> HashMap<String, u64> {
    catalog::query(addr, timeout)
        .map(|reports| reports.into_iter().map(|r| (r.name, r.free)).collect())
        .unwrap_or_default()
}

fn rows(
    servers: &[(String, String, MetricsSnapshot)],
    prev: &HashMap<String, (u64, Instant)>,
    free: &HashMap<String, u64>,
) -> Vec<Row> {
    servers
        .iter()
        .map(|(name, address, snap)| {
            let rpcs = snap
                .metrics
                .iter()
                .filter(|(k, _)| k.starts_with("rpc.") && k.ends_with(".count"))
                .map(|(_, v)| match v {
                    MetricValue::Counter(n) => *n,
                    _ => 0,
                })
                .sum::<u64>();
            let rate = prev
                .get(name)
                .map(|(old, at)| {
                    let dt = at.elapsed().as_secs_f64();
                    if dt > 0.0 {
                        rpcs.saturating_sub(*old) as f64 / dt
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0);
            let (p50_us, p99_us) = snap
                .histogram("rpc.latency_ns")
                .map(|h| (h.quantile(0.50) as f64 / 1e3, h.quantile(0.99) as f64 / 1e3))
                .unwrap_or((0.0, 0.0));
            let cache = snap.counter("cache.hits").map(|hits| {
                let misses = snap.counter("cache.misses").unwrap_or(0);
                let rate = if hits + misses > 0 {
                    hits as f64 / (hits + misses) as f64
                } else {
                    0.0
                };
                let resident = match snap.metrics.get("cache.resident_bytes") {
                    Some(MetricValue::Gauge(b)) => *b,
                    _ => 0,
                };
                (rate, resident)
            });
            Row {
                name: name.clone(),
                address: address.clone(),
                rpcs,
                rate,
                errors: snap.counter("rpc.errors").unwrap_or(0),
                p50_us,
                p99_us,
                free: free.get(name).copied(),
                cache,
            }
        })
        .collect()
}

fn render(rows: &[Row]) {
    // New columns go at the end: scripts (and the tss_top test)
    // address existing ones by position.
    println!(
        "{:<28} {:<22} {:>8} {:>8} {:>6} {:>9} {:>9} {:>10} {:>7} {:>9}",
        "NAME",
        "ADDRESS",
        "RPCS",
        "RPC/S",
        "ERRS",
        "P50(us)",
        "P99(us)",
        "FREE(MB)",
        "CACHE%",
        "RES(KB)"
    );
    for r in rows {
        let free = r
            .free
            .map(|f| format!("{}", f / (1 << 20)))
            .unwrap_or_else(|| "-".to_string());
        let (hit, res) = r
            .cache
            .map(|(rate, resident)| {
                (
                    format!("{:.1}", rate * 100.0),
                    format!("{}", resident / 1024),
                )
            })
            .unwrap_or_else(|| ("-".to_string(), "-".to_string()));
        println!(
            "{:<28} {:<22} {:>8} {:>8.1} {:>6} {:>9.1} {:>9.1} {:>10} {:>7} {:>9}",
            r.name, r.address, r.rpcs, r.rate, r.errors, r.p50_us, r.p99_us, free, hit, res
        );
    }
    if rows.is_empty() {
        println!("(no servers reporting)");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut catalog_addr: Option<SocketAddr> = None;
    let mut interval = Duration::from_secs(2);
    let mut iterations: u64 = 0;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--interval" => {
                i += 1;
                let secs: f64 = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--interval needs a number of seconds");
                    std::process::exit(2);
                });
                interval = Duration::from_secs_f64(secs);
            }
            "--iterations" => {
                i += 1;
                iterations = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--iterations needs a count");
                    std::process::exit(2);
                });
            }
            other => {
                catalog_addr = other.parse().ok();
                if catalog_addr.is_none() {
                    eprintln!("unrecognized argument or bad address: {other}");
                    eprintln!(
                        "usage: tss-top <catalog-host:port> [--interval SECS] [--iterations N]"
                    );
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    let Some(addr) = catalog_addr else {
        eprintln!("usage: tss-top <catalog-host:port> [--interval SECS] [--iterations N]");
        std::process::exit(2);
    };

    let timeout = Duration::from_secs(5);
    let mut prev: HashMap<String, (u64, Instant)> = HashMap::new();
    let mut round = 0u64;
    loop {
        match fetch(addr, timeout) {
            Ok(servers) => {
                let free = free_by_name(addr, timeout);
                let table = rows(&servers, &prev, &free);
                let now = Instant::now();
                for r in &table {
                    prev.insert(r.name.clone(), (r.rpcs, now));
                }
                println!();
                render(&table);
            }
            Err(e) => eprintln!("query {addr} failed: {e}"),
        }
        round += 1;
        if iterations > 0 && round >= iterations {
            break;
        }
        std::thread::sleep(interval);
    }
}

//! Retry-layer tax on the fault-free fast path.
//!
//! Every CFS operation now enters the recovery loop: it builds a
//! `RetryState`, runs the RPC, and exits on first success. This binary
//! measures what that costs when nothing fails, with an *interleaved*
//! A/B design — each round times the same loopback workload under
//! `RetryPolicy::none()` and the default policy back to back,
//! alternating order, with the fastest round per variant reported so
//! scheduler interference drops out. The acceptance bar recorded in EXPERIMENTS.md is ≤2%.

use std::time::{Duration, Instant};

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use tss_bench::{auth, open_server};
use tss_core::cfs::{Cfs, CfsConfig};
use tss_core::fs::FileSystem;
use tss_core::RetryPolicy;

const ROUNDS: usize = 40;
const ITERS: usize = 400;

fn client(endpoint: &str, retry: RetryPolicy) -> Cfs {
    let mut cfg = CfsConfig::new(endpoint, auth());
    cfg.timeout = Duration::from_secs(10);
    cfg.retry = retry;
    Cfs::new(cfg)
}

/// Minimum of the per-round means — the classic low-noise latency
/// estimator: every source of interference only ever adds time, so the
/// fastest round is the cleanest look at the code path itself.
fn best(v: Vec<f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

/// Best per-op microseconds over `ROUNDS` interleaved rounds for the
/// two variants, `(none, default)`.
fn ab(mut op_none: impl FnMut(), mut op_default: impl FnMut()) -> (f64, f64) {
    let time = |op: &mut dyn FnMut()| -> f64 {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            op();
        }
        t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64
    };
    let mut none = Vec::with_capacity(ROUNDS);
    let mut def = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        if round % 2 == 0 {
            none.push(time(&mut op_none));
            def.push(time(&mut op_default));
        } else {
            def.push(time(&mut op_default));
            none.push(time(&mut op_none));
        }
    }
    (best(none), best(def))
}

fn main() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let fs_none = client(&server.endpoint(), RetryPolicy::none());
    let fs_def = client(&server.endpoint(), RetryPolicy::default());
    fs_none.write_file("/f", &vec![7u8; 8192]).unwrap();

    println!("retry-layer tax, fault-free loopback ({ITERS} ops x {ROUNDS} rounds, best round)");
    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "op", "none (us)", "default (us)", "overhead"
    );

    let report = |name: &str, (a, b): (f64, f64)| {
        println!(
            "{name:<12} {a:>12.2} {b:>14.2} {:>9.1}%",
            (b / a - 1.0) * 100.0
        );
    };

    report(
        "stat",
        ab(
            || {
                fs_none.stat("/f").unwrap();
            },
            || {
                fs_def.stat("/f").unwrap();
            },
        ),
    );
    report(
        "open_close",
        ab(
            || drop(fs_none.open("/f", OpenFlags::READ, 0).unwrap()),
            || drop(fs_def.open("/f", OpenFlags::READ, 0).unwrap()),
        ),
    );

    let mut h_none = fs_none.open("/f", OpenFlags::read_write(), 0).unwrap();
    let mut h_def = fs_def.open("/f", OpenFlags::read_write(), 0).unwrap();
    let mut buf_a = vec![0u8; 8192];
    let mut buf_b = vec![0u8; 8192];
    report(
        "read8k",
        ab(
            || {
                h_none.pread(&mut buf_a, 0).unwrap();
            },
            || {
                h_def.pread(&mut buf_b, 0).unwrap();
            },
        ),
    );
    let data = vec![1u8; 8192];
    report(
        "write8k",
        ab(
            || {
                h_none.pwrite(&data, 0).unwrap();
            },
            || {
                h_def.pwrite(&data, 0).unwrap();
            },
        ),
    );
}

//! Live buffer-cache sweep against the simnet prediction.
//!
//! The paper's method in miniature: `simnet` *predicts* how the hit
//! rate of an LRU cache moves as its budget crosses the working set
//! (`predict_uniform_hit_rate`, the same law behind the Figure 7
//! crossover), and this binary *measures* the real server — the
//! production handler stack with the page cache enabled — under the
//! identical uniform access stream, then prints both side by side.
//! A model that disagrees with the live system here is wrong about
//! the one mechanism the scaling experiments lean on.
//!
//! Run with `cargo run --release -p tss-bench --bin cache-sweep`.

use std::net::IpAddr;
use std::sync::Arc;
use std::time::Instant;

use chirp_proto::message::Request;
use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::handlers::{Reply, Session};
use chirp_server::server::Shared;
use chirp_server::ServerConfig;
use simnet::cache::predict_uniform_hit_rate;
use tss_bench::print_table;

const PAGE: u64 = 8192;
const FILES: u64 = 256; // one page per "file": 2 MiB working set
const READS: u64 = 40_000;

fn rig(root: &std::path::Path, cache: Option<u64>) -> (Arc<Shared>, Session, i32) {
    let mut cfg = ServerConfig::localhost(root, "sweep")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    cfg.cache_bytes = cache;
    let shared = Shared::new(cfg).unwrap();
    let ip: IpAddr = "127.0.0.1".parse().unwrap();
    let mut s = Session::new(shared.clone(), ip);
    s.handle(
        Request::Auth {
            method: "hostname".into(),
            name: "localhost".into(),
            credential: String::new(),
        },
        None,
    )
    .unwrap();
    let Ok(Reply::Value(fd)) = s.handle(
        Request::Open {
            path: "/ws".into(),
            flags: OpenFlags::read_write() | OpenFlags::CREATE,
            mode: 0o644,
        },
        None,
    ) else {
        panic!("open");
    };
    let fd = fd as i32;
    for i in 0..FILES {
        s.handle(
            Request::Pwrite {
                fd,
                length: PAGE,
                offset: i * PAGE,
            },
            Some(vec![(i % 251) as u8; PAGE as usize]),
        )
        .unwrap();
    }
    (shared, s, fd)
}

/// Uniform page-aligned preads; the same access law the predictor
/// runs. Returns (wall seconds, delivered bytes).
fn drive(s: &mut Session, fd: i32, reads: u64) -> (f64, u64) {
    let mut state: u64 = 0x2545_f491_4f6c_dd1d;
    let mut total = 0u64;
    let t = Instant::now();
    for _ in 0..reads {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let offset = ((state >> 33) % FILES) * PAGE;
        match s.handle(
            Request::Pread {
                fd,
                length: PAGE,
                offset,
            },
            None,
        ) {
            Ok(Reply::Pages(p)) => total += p.total() as u64,
            Ok(Reply::Scratch(n)) => total += n as u64,
            other => panic!("pread: {other:?}"),
        }
    }
    (t.elapsed().as_secs_f64(), total)
}

fn main() {
    let ws = FILES * PAGE;
    // Sweep the budget across the working set: deep thrash, the
    // crossover region, exact fit, and head-room.
    let sweep: &[u64] = &[ws / 8, ws / 4, ws / 2, (ws * 3) / 4, ws, ws * 2];

    // Read-through baseline for the throughput column.
    let base_dir = TempDir::new();
    let (_, mut base, fd) = rig(base_dir.path(), None);
    drive(&mut base, fd, READS / 4); // warm the OS page cache
    let (base_secs, base_bytes) = drive(&mut base, fd, READS);
    let base_mbs = base_bytes as f64 / base_secs / 1e6;

    let mut rows = Vec::new();
    for &cache in sweep {
        let dir = TempDir::new();
        let (shared, mut sess, fd) = rig(dir.path(), Some(cache));
        // Warm to steady state, then reset the counters' baseline by
        // sampling before the measured run.
        drive(&mut sess, fd, READS / 4);
        let reg = shared.telemetry.registry();
        let (h0, m0) = (
            reg.counter("cache.hits").get(),
            reg.counter("cache.misses").get(),
        );
        let (secs, bytes) = drive(&mut sess, fd, READS);
        let (h1, m1) = (
            reg.counter("cache.hits").get(),
            reg.counter("cache.misses").get(),
        );
        let live = (h1 - h0) as f64 / ((h1 - h0) + (m1 - m0)) as f64;
        let predicted = predict_uniform_hit_rate(cache, FILES, PAGE, READS);
        rows.push(vec![
            format!("{}", cache >> 10),
            format!("{:.0}", 100.0 * cache as f64 / ws as f64),
            format!("{:.3}", predicted),
            format!("{:.3}", live),
            format!("{:+.3}", live - predicted),
            format!("{:.0}", bytes as f64 / secs / 1e6),
        ]);
    }
    print_table(
        &format!(
            "Buffer cache sweep: live server vs simnet LRU prediction\n\
             (working set {} KiB as {FILES} x 8 KiB pages, {READS} uniform reads,\n\
             \x20read-through baseline {base_mbs:.0} MB/s)",
            ws >> 10
        ),
        &[
            "cache KiB",
            "% of WS",
            "predicted hit",
            "live hit",
            "delta",
            "MB/s",
        ],
        &rows,
    );
    println!(
        "  the live curve should track the predicted one within a few\n\
         \x20 percent: under uniform access an LRU's hit rate is the\n\
         \x20 fraction of the working set it holds, saturating at 1.0 —\n\
         \x20 the same crossover simnet's Figure 7 model turns on."
    );
}

//! Figure 5 — Single Client Bandwidth vs block size, writing 16 MB:
//! Unix (798 MB/s), Parrot (431 MB/s), Parrot+CFS (80 MB/s on 1 GbE),
//! Unix+NFS (10 MB/s).
//!
//! Model sweep at the paper's constants plus a live loopback sweep of
//! the real stacks. The ordering claim — local ≫ CFS ≫ NFS, with NFS
//! pinned by its 4 KB serial RPCs — is hardware-independent.

use simnet::micro::{fig5_bandwidth, fig5_blocks};
use simnet::CostModel;
use std::sync::Arc;
use tss_bench::{best_write_bandwidth, fixtures, fmt_mbs, measure_read_bandwidth, print_table};
use tss_core::fs::FileSystem;

fn main() {
    let model = CostModel::default();
    let blocks: Vec<u64> = fig5_blocks().into_iter().filter(|b| *b >= 128).collect();
    let rows: Vec<Vec<String>> = fig5_bandwidth(&model, &blocks)
        .into_iter()
        .map(|r| {
            let mut row = vec![r.block.to_string()];
            for (_, v) in &r.systems {
                row.push(fmt_mbs(*v));
            }
            row
        })
        .collect();
    print_table(
        "Figure 5 (modelled): bandwidth writing 16MB, MB/s by block size",
        &["block", "unix", "parrot", "parrot+cfs", "unix+nfs"],
        &rows,
    );
    println!("  paper plateaus: unix 798, parrot 431, cfs 80 (1GbE), nfs 10 MB/s");

    // -- live loopback sweep ------------------------------------------
    let f = fixtures();
    let total = 16 << 20;
    let blocks = [4096usize, 16 << 10, 64 << 10, 256 << 10, 1 << 20];
    let systems: Vec<(&str, Arc<dyn FileSystem>)> = vec![
        ("unix", f.local.clone()),
        ("cfs", f.cfs.clone()),
        ("nfs", f.nfs.clone()),
    ];
    let mut rows = Vec::new();
    for block in blocks {
        let mut row = vec![block.to_string()];
        for (name, fs) in &systems {
            let path = format!("/bw-{name}-{block}");
            let bw = best_write_bandwidth(fs.as_ref(), &path, block, total, 3);
            row.push(fmt_mbs(bw));
        }
        rows.push(row);
    }
    print_table(
        "Figure 5 (measured, loopback): bandwidth writing 16MB, MB/s",
        &["block", "unix", "cfs", "nfs"],
        &rows,
    );
    println!(
        "  expected shape: unix >> cfs >> nfs at large blocks; nfs flat (4KB\n\
         \x20 serial RPCs ignore the caller's block size); absolute numbers differ\n\
         \x20 from 2005 hardware."
    );

    // "Similar results are obtained for reading data."
    let mut rows = Vec::new();
    for block in [64 << 10, 1 << 20] {
        let mut row = vec![block.to_string()];
        for (name, fs) in &systems {
            let path = format!("/bw-{name}-{block}");
            let bw = (0..3)
                .map(|_| measure_read_bandwidth(fs.as_ref(), &path, block, total))
                .fold(0.0f64, f64::max);
            row.push(fmt_mbs(bw));
        }
        rows.push(row);
    }
    print_table(
        "Figure 5 (measured, loopback): bandwidth reading 16MB back, MB/s",
        &["block", "unix", "cfs", "nfs"],
        &rows,
    );
}

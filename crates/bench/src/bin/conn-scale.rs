//! `conn-scale` — aggregate small-op throughput vs client count,
//! thread-per-connection core against the reactor core.
//!
//! For each client count N, starts one loopback file server under each
//! [`CoreKind`], connects N clients over real TCP, and has every client
//! issue serial 64-byte preads for a fixed window. The table reports
//! aggregate ops/s per (core, N) and the reactor/threads ratio — the
//! connection-scaling claim behind the reactor PR. EXPERIMENTS.md
//! records a run.
//!
//! Env knobs: `CONN_SCALE_CLIENTS` (comma list, default `64,256,1000`
//! scaled by `SCENARIO_SCALE` — the same knob that resizes the
//! scenario suite and the idle soak), `CONN_SCALE_SECS` (measurement
//! window per cell, default 2).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use chirp_client::Connection;
use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::config::CoreKind;
use chirp_server::{FileServer, ServerConfig};
use tss_bench::{auth, print_table};

const READ_BYTES: u64 = 64;
const TIMEOUT: Duration = Duration::from_secs(10);

fn env_csv(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

/// Connect, authenticate, and open the benchmark file, retrying the
/// whole sequence: thousands of simultaneous SYNs can overflow the
/// accept backlog, and a connection the stampede got refused or
/// dropped mid-handshake is ramp-up noise, not signal. `None` after
/// the retry budget — the caller must still reach the start barrier
/// (a panic here would strand every other participant on it), so a
/// failed session becomes a zero-op client counted in the table's
/// `failed` column.
fn session(endpoint: &str) -> Option<(Connection, i32)> {
    for _ in 0..150 {
        let attempt = Connection::connect(endpoint, TIMEOUT).and_then(|mut conn| {
            conn.authenticate(&auth())?;
            let fd = conn.open("/small", OpenFlags::READ, 0)?;
            Ok((conn, fd))
        });
        match attempt {
            Ok(ready) => return Some(ready),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    None
}

/// Aggregate ops/s for `clients` serial-pread clients against one
/// server running `core`, plus how many clients never got a session.
fn measure(core: CoreKind, clients: usize, window: Duration) -> (f64, usize) {
    let dir = TempDir::new();
    let mut cfg = ServerConfig::localhost(dir.path(), "bench")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap())
        .with_core(core);
    cfg.max_connections = clients + 16;
    let server = FileServer::start(cfg).expect("start server");
    std::fs::write(dir.path().join("small"), vec![0x42u8; READ_BYTES as usize]).unwrap();

    let endpoint = server.endpoint();
    let start = Arc::new(Barrier::new(clients + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::with_capacity(clients);
    for _ in 0..clients {
        let endpoint = endpoint.clone();
        let start = Arc::clone(&start);
        let stop = Arc::clone(&stop);
        // Small stacks: 1000 default-sized client threads would be the
        // benchmark's own memory story, not the server's.
        let t = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(move || {
                let ready = session(&endpoint);
                start.wait();
                let (mut conn, fd) = ready?;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let data = conn.pread(fd, READ_BYTES, 0).expect("pread");
                    assert_eq!(data.len() as u64, READ_BYTES);
                    ops += 1;
                }
                Some(ops)
            })
            .expect("spawn client");
        workers.push(t);
    }

    start.wait();
    let t0 = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut total = 0u64;
    let mut failed = 0usize;
    for w in workers {
        match w.join().expect("client thread") {
            Some(ops) => total += ops,
            None => failed += 1,
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(server);
    (total as f64 / elapsed, failed)
}

fn main() {
    // The default fleet sizes ride the shared SCENARIO_SCALE knob via
    // fleet_size; an explicit CONN_SCALE_CLIENTS list still wins.
    let default: Vec<usize> = [64, 256, 1000]
        .iter()
        .map(|&n| simharness::scenario::fleet_size(n, n))
        .collect();
    let counts = env_csv("CONN_SCALE_CLIENTS", &default);
    let secs: u64 = std::env::var("CONN_SCALE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let window = Duration::from_secs(secs);

    let mut rows = Vec::new();
    for &n in &counts {
        let (threads, t_failed) = measure(CoreKind::Threads, n, window);
        let (reactor, r_failed) = measure(CoreKind::Reactor, n, window);
        rows.push(vec![
            n.to_string(),
            format!("{threads:.0}"),
            format!("{reactor:.0}"),
            format!("{:.2}x", reactor / threads),
            format!("{t_failed}/{r_failed}"),
        ]);
    }
    print_table(
        "Connection scaling: aggregate 64 B pread ops/s, threads vs reactor",
        &[
            "clients",
            "threads ops/s",
            "reactor ops/s",
            "reactor/threads",
            "failed t/r",
        ],
        &rows,
    );
    println!(
        "  {} s window per cell, serial preads per client, loopback TCP,\n\
         \x20 {} host cores. The threads core pays one OS thread per\n\
         \x20 connection; the reactor multiplexes every connection onto a\n\
         \x20 fixed worker pool.",
        secs,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
}

//! Figure 4 — I/O Call Latency over the network: Parrot+CFS vs
//! Unix+NFS (no cache, async) vs Parrot+DSFS.
//!
//! Model view (calibrated to 1 GbE) plus a live loopback measurement
//! of this library's real protocol stacks. The claims under test:
//! CFS ≤ NFS on metadata (whole-path RPCs vs per-component lookups),
//! DSFS ≈ 2× CFS on metadata (stub + data), data ops identical CFS vs
//! DSFS, and everything dominated by round trips rather than by the
//! adapter.

use chirp_proto::OpenFlags;
use simnet::micro::fig4_io_latency;
use simnet::CostModel;
use std::sync::Arc;
use tss_bench::{fixtures, fmt_us, measure_latency, print_table};
use tss_core::fs::FileSystem;

fn main() {
    let model = CostModel::default();
    let rows: Vec<Vec<String>> = fig4_io_latency(&model)
        .into_iter()
        .map(|r| {
            let mut row = vec![r.call.clone()];
            for (_, v) in &r.systems {
                row.push(fmt_us(*v));
            }
            row
        })
        .collect();
    print_table(
        "Figure 4 (modelled 1GbE testbed): I/O call latency, us",
        &["call", "parrot+cfs", "unix+nfs", "parrot+dsfs"],
        &rows,
    );
    println!("  paper: CFS beats NFS on stat/open (no lookups); DSFS pays 2x metadata");

    // -- live loopback measurement ------------------------------------
    let f = fixtures();
    let deep = "/a/b/c";
    for fs in [
        f.cfs.clone() as Arc<dyn FileSystem>,
        f.nfs.clone() as Arc<dyn FileSystem>,
        f.dsfs.clone() as Arc<dyn FileSystem>,
    ] {
        fs.mkdir("/a", 0o755).unwrap();
        fs.mkdir("/a/b", 0o755).unwrap();
        fs.mkdir("/a/b/c", 0o755).unwrap();
        fs.write_file("/a/b/c/f", &vec![7u8; 8192]).unwrap();
    }
    let path = format!("{deep}/f");
    let iters = 1500;
    let systems: Vec<(&str, Arc<dyn FileSystem>)> = vec![
        ("cfs", f.cfs.clone()),
        ("nfs", f.nfs.clone()),
        ("dsfs", f.dsfs.clone()),
    ];

    let mut rows = Vec::new();
    // stat
    let mut row = vec!["stat".to_string()];
    for (_, fs) in &systems {
        let (mean, _) = measure_latency(
            || {
                fs.stat(&path).unwrap();
            },
            50,
            iters,
        );
        row.push(fmt_us(mean));
    }
    rows.push(row);
    // open/close
    let mut row = vec!["open/close".to_string()];
    for (_, fs) in &systems {
        let (mean, _) = measure_latency(
            || {
                drop(fs.open(&path, OpenFlags::READ, 0).unwrap());
            },
            50,
            iters,
        );
        row.push(fmt_us(mean));
    }
    rows.push(row);
    // read 8kb / write 8kb on an open handle
    let mut buf = vec![0u8; 8192];
    let mut row_r = vec!["read 8kb".to_string()];
    let mut row_w = vec!["write 8kb".to_string()];
    for (_, fs) in &systems {
        let mut h = fs.open(&path, OpenFlags::read_write(), 0).unwrap();
        let (mean_r, _) = measure_latency(
            || {
                h.pread(&mut buf, 0).unwrap();
            },
            50,
            iters,
        );
        row_r.push(fmt_us(mean_r));
        let data = vec![1u8; 8192];
        let (mean_w, _) = measure_latency(
            || {
                h.pwrite(&data, 0).unwrap();
            },
            50,
            iters,
        );
        row_w.push(fmt_us(mean_w));
    }
    rows.push(row_r);
    rows.push(row_w);

    print_table(
        "Figure 4 (measured, loopback TCP, 3-deep path): latency, us",
        &["call", "parrot+cfs", "unix+nfs", "parrot+dsfs"],
        &rows,
    );
    println!(
        "  expected shape: cfs < nfs on stat/open (1 RPC vs per-component\n\
         \x20 lookups); dsfs ~2x cfs on metadata; 8kb ops: nfs pays two 4KB RPCs."
    );
}

//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. control+data on one TCP stream (Chirp) vs FTP-style split
//!    connections with per-file slow start;
//! 2. the recursive-abstraction stub access path: one `GETFILE` RPC
//!    vs an open/stat/read/close sequence (measured live);
//! 3. per-server buffer cache size vs the Figure 7 crossover.

use simnet::ablation::{access_skew_sweep, cache_sweep, chirp_batch, ftp_batch};
use simnet::CostModel;
use tss_bench::{fixtures, fmt_us, measure_latency, print_table};
use tss_core::fs::FileSystem;

fn main() {
    let m = CostModel::default();

    // -- 1: single-stream vs split control/data ------------------------
    let mut rows = Vec::new();
    for (files, bytes) in [
        (1000u64, 16u64 << 10),
        (1000, 64 << 10),
        (100, 1 << 20),
        (10, 64 << 20),
    ] {
        let chirp = chirp_batch(&m, files, bytes);
        let ftp = ftp_batch(&m, files, bytes);
        rows.push(vec![
            format!("{files} x {}KB", bytes >> 10),
            format!("{:.2}", chirp),
            format!("{:.2}", ftp),
            format!("{:.1}x", ftp / chirp),
        ]);
    }
    print_table(
        "Ablation 1 (modelled): batch transfer, one stream vs FTP-style, seconds",
        &["workload", "chirp", "ftp-style", "ftp/chirp"],
        &rows,
    );
    println!(
        "  the paper's claim: splitting data from control re-pays TCP slow\n\
         \x20 start per file; the penalty is largest for many small files."
    );

    // -- 2: recursive stub access, measured -----------------------------
    let f = fixtures();
    f.cfs
        .write_file("/stub", b"#tss-stub-v1\nh:1\n/x\n")
        .unwrap();
    let iters = 1500;
    let single = measure_latency(
        || {
            f.cfs.read_file("/stub").unwrap();
        },
        50,
        iters,
    );
    let multi = measure_latency(
        || {
            // The naive path: open, fstat, read, close — what the stub
            // read would cost without the whole-file RPC.
            let mut h = f
                .cfs
                .open("/stub", chirp_proto::OpenFlags::READ, 0)
                .unwrap();
            let size = h.fstat().unwrap().size as usize;
            let mut buf = vec![0u8; size];
            h.pread(&mut buf, 0).unwrap();
        },
        50,
        iters,
    );
    print_table(
        "Ablation 2 (measured): stub read via GETFILE vs open/stat/read/close, us",
        &["path", "latency"],
        &[
            vec!["getfile (1 RPC)".into(), fmt_us(single.0)],
            vec!["open/stat/read/close (4 RPCs)".into(), fmt_us(multi.0)],
        ],
    );
    println!(
        "  DSFS metadata ops ride the single-RPC path, which is what keeps\n\
         \x20 them at ~2x CFS latency in Figure 4 instead of ~4x."
    );

    // -- 3: buffer cache sweep ------------------------------------------
    let caches = [128u64 << 20, 256 << 20, 512 << 20, 1024 << 20];
    let servers = [1usize, 2, 3, 4];
    let rows: Vec<Vec<String>> = cache_sweep(&m, &caches, &servers)
        .into_iter()
        .map(|row| {
            let mut cells = vec![format!("{} MB", row.cache >> 20)];
            for (_, mbps) in row.throughput {
                cells.push(format!("{mbps:.0}"));
            }
            cells
        })
        .collect();
    print_table(
        "Ablation 3 (simulated): Figure 7 throughput (MB/s) vs per-server cache",
        &["cache", "1 srv", "2 srv", "3 srv", "4 srv"],
        &rows,
    );
    println!(
        "  the paper's 3-server crossover is a property of the 512 MB nodes:\n\
         \x20 double the RAM and two servers suffice; halve it and four are needed."
    );

    // -- 3b: replication path, measured -----------------------------------
    // THIRDPUT (server pushes to server) vs pull-push through the
    // replicating client: same bytes, one network traversal instead of
    // two plus a client copy.
    {
        use tss_bench::open_server;
        let dir_a = chirp_proto::testutil::TempDir::new();
        let dir_b = chirp_proto::testutil::TempDir::new();
        let a_srv = open_server(dir_a.path());
        let b_srv = open_server(dir_b.path());
        let cfs_a = tss_core::Cfs::connect(&a_srv.endpoint(), tss_bench::auth());
        let cfs_b = tss_core::Cfs::connect(&b_srv.endpoint(), tss_bench::auth());
        let payload = vec![0x5au8; 8 << 20];
        cfs_a.putfile("/src", 0o644, &payload).unwrap();
        let (third, _) = tss_bench::measure_latency(
            || {
                cfs_a
                    .thirdput("/src", &b_srv.endpoint(), "/dst-third")
                    .unwrap();
            },
            2,
            10,
        );
        let (pullpush, _) = tss_bench::measure_latency(
            || {
                let data = cfs_a.getfile("/src").unwrap();
                cfs_b.putfile("/dst-pp", 0o644, &data).unwrap();
            },
            2,
            10,
        );
        print_table(
            "Ablation 3b (measured): replicating 8 MiB between servers, ms",
            &["path", "time"],
            &[
                vec![
                    "thirdput (server-to-server)".into(),
                    format!("{:.1}", third * 1e3),
                ],
                vec![
                    "pull+push (via client)".into(),
                    format!("{:.1}", pullpush * 1e3),
                ],
            ],
        );
        println!(
            "  the GEMS replicator directs THIRDPUT so bulk repair traffic never\n\
             \x20 visits the replicator host."
        );
    }

    // -- 4: access skew vs server scaling --------------------------------
    let rows: Vec<Vec<String>> = access_skew_sweep(&m, 2.0, &[1, 2, 4, 8])
        .into_iter()
        .map(|(s, uni, zipf)| vec![s.to_string(), format!("{uni:.0}"), format!("{zipf:.0}")])
        .collect();
    print_table(
        "Ablation 4 (simulated): Figure 6 throughput (MB/s), uniform vs Zipf(2.0) access",
        &["servers", "uniform", "zipf"],
        &rows,
    );
    println!(
        "  the paper's linear scaling assumes clients pick files uniformly; a\n\
         \x20 hot-set workload pins load on whichever server holds the popular\n\
         \x20 files, and adding servers stops helping."
    );
}

//! §8 table — SP5/BaBar on four substrates: init time and time per
//! simulation event for Unix, LAN/NFS, LAN/TSS, and WAN/TSS.

use simnet::sp5::{table, Sp5Params};
use simnet::CostModel;
use tss_bench::print_table;

fn main() {
    let rows_model = table(&CostModel::default(), Sp5Params::default());
    let paper: [(&str, &str, &str); 4] = [
        ("Unix", "446 +/- 46", "64"),
        ("LAN / NFS", "4464 +/- 172", "113"),
        ("LAN / TSS", "4505 +/- 155", "113"),
        ("WAN / TSS", "6275 +/- 330", "88"),
    ];
    let rows: Vec<Vec<String>> = rows_model
        .iter()
        .zip(paper)
        .map(|(r, (label, p_init, p_evt))| {
            vec![
                label.to_string(),
                p_init.to_string(),
                format!("{:.0} +/- {:.0}", r.init_mean, r.init_dev),
                p_evt.to_string(),
                format!("{:.0}", r.time_per_event),
            ]
        })
        .collect();
    print_table(
        "Section 8 table: SP5 init and per-event time, seconds",
        &[
            "configuration",
            "paper init",
            "model init",
            "paper t/event",
            "model t/event",
        ],
        &rows,
    );
    println!(
        "  shape claims: init inflates ~10x on any remote substrate; NFS and\n\
         \x20 TSS within a few percent; WAN costs ~40% more init; events within\n\
         \x20 2x of local, WAN events faster on its faster CPU."
    );
}

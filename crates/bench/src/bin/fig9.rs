//! Figure 9 — Data Preservation in the GEMS Distributed Shared
//! Database: a 14 GB dataset under a 40 GB budget, replicated to the
//! budget, surviving induced failures of 1, 5, and 10 disks.
//!
//! Two views: the paper-scale simulation (`simnet::gems`) and a real
//! mini-run of the actual `gems` crate against live Chirp servers,
//! with data forcibly deleted from 1, 2, and 3 of 12 servers —
//! proportionally the paper's 1/5/10 of 120.

use std::time::Duration;

use chirp_client::AuthMethod;
use chirp_proto::testutil::TempDir;
use simnet::gems::{run, GemsParams};
use tss_bench::{open_server, print_table};
use tss_core::stubfs::DataServer;

fn main() {
    // -- paper-scale simulation ---------------------------------------
    let p = GemsParams::default();
    let r = run(&p);
    let mut rows = Vec::new();
    // Downsample the series for a readable table.
    for s in r.series.iter().step_by(10) {
        rows.push(vec![
            format!("{:.0}", s.time),
            format!("{:.1}", s.stored as f64 / (1u64 << 30) as f64),
            s.files_alive.to_string(),
        ]);
    }
    print_table(
        "Figure 9 (simulated, paper scale): GEMS preservation",
        &["t (s)", "stored (GB)", "files alive"],
        &rows,
    );
    println!(
        "  14 GB dataset, 40 GB budget, {} disks; failures wipe 1, 5, 10 disks\n\
         \x20 at t=2500/5000/7500; the auditor+replicator restore the budget.\n\
         \x20 files lost: {}",
        p.disks, r.files_lost
    );

    // -- real mini-run against live servers ---------------------------
    println!("\n== Figure 9 (real mini-run): live gems crate, 12 servers ==");
    let db = gems::DbServer::start_ephemeral().unwrap();
    let mut dirs = Vec::new();
    let mut servers = Vec::new();
    let mut pool = Vec::new();
    for _ in 0..12 {
        let dir = TempDir::new();
        let server = open_server(dir.path());
        pool.push(DataServer::new(
            &server.endpoint(),
            "/gems",
            vec![AuthMethod::Hostname],
        ));
        dirs.push(dir);
        servers.push(server);
    }
    let mut config = gems::GemsConfig::new(db.addr(), pool);
    config.default_target = 3;
    config.timeout = Duration::from_secs(5);
    let g = gems::Gems::connect(config).unwrap();

    // "Dataset": 56 files x 256 KB = 14 MB (scale 1:1000).
    let file_bytes = 256 * 1024;
    for i in 0..56u64 {
        let data: Vec<u8> = (0..file_bytes as u64)
            .map(|j| ((i * 31 + j * 7) % 251) as u8)
            .collect();
        g.ingest(
            &format!("dataset/file{i:03}"),
            &[("project", "fig9")],
            &data,
        )
        .unwrap();
    }
    let stored = |dirs: &Vec<TempDir>| -> u64 {
        dirs.iter()
            .map(|d| chirp_server::handlers::disk_usage(&d.path().join("gems")))
            .sum()
    };
    println!(
        "  after ingest (1 copy each):   {:>6.1} MB stored",
        stored(&dirs) as f64 / 1e6
    );
    g.maintain().unwrap();
    println!(
        "  after replication (target 3): {:>6.1} MB stored",
        stored(&dirs) as f64 / 1e6
    );

    for wipe in [1usize, 2, 3] {
        for dir in dirs.iter().take(wipe) {
            let vol = dir.path().join("gems");
            for entry in std::fs::read_dir(&vol).unwrap().flatten() {
                if entry.file_name() != ".__acl" {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        println!(
            "  wiped {wipe} server(s):          {:>6.1} MB stored",
            stored(&dirs) as f64 / 1e6
        );
        let (audit, repair) = g.maintain().unwrap();
        println!(
            "  audit found {} missing; replicator copied {}: {:>6.1} MB stored",
            audit.missing,
            repair.copied,
            stored(&dirs) as f64 / 1e6
        );
    }
    // Final integrity check: every file still fetchable and intact.
    let mut intact = 0;
    for i in 0..56u64 {
        if g.fetch(&format!("dataset/file{i:03}")).is_ok() {
            intact += 1;
        }
    }
    println!("  files intact after all failures: {intact}/56");
}

//! Figure 8 — DSFS Scalability, Disk-Bound: 1280 files × 10 MB from
//! 1–8 servers. 12.8 GB never fits the buffer caches, so every
//! configuration is disk-bound: one server sustains the ~10 MB/s raw
//! disk rate and throughput grows roughly linearly with servers.

use simnet::cluster::{run, ClusterParams};
use simnet::CostModel;
use tss_bench::print_table;

fn main() {
    let model = CostModel::default();
    let servers = [1usize, 2, 3, 4, 8];
    let clients = [1usize, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    for &c in &clients {
        let mut row = vec![c.to_string()];
        for &s in &servers {
            let r = run(&model, ClusterParams::fig8(s, c));
            row.push(format!("{:.1}", r.mb_per_s()));
        }
        rows.push(row);
    }
    print_table(
        "Figure 8 (simulated): DSFS disk-bound throughput, MB/s (1280 x 10MB)",
        &["clients", "1 srv", "2 srv", "3 srv", "4 srv", "8 srv"],
        &rows,
    );
    println!(
        "  paper: ~10 MB/s per server (raw disk), scaling roughly linearly\n\
         \x20 from 1 to 8 servers."
    );
}

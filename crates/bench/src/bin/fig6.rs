//! Figure 6 — DSFS Scalability, Net-Bound: 128 files × 1 MB served
//! from 1–8 servers on a 1 Gb/s switch. All data fits in server buffer
//! caches; one server saturates its port at ~100 MB/s; three or more
//! saturate the commodity switch backplane at ~300 MB/s.

use simnet::cluster::{run, ClusterParams};
use simnet::CostModel;
use tss_bench::print_table;

fn main() {
    let model = CostModel::default();
    let servers = [1usize, 2, 3, 4, 8];
    let clients = [1usize, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    for &c in &clients {
        let mut row = vec![c.to_string()];
        for &s in &servers {
            let r = run(&model, ClusterParams::fig6(s, c));
            row.push(format!("{:.0}", r.mb_per_s()));
        }
        rows.push(row);
    }
    print_table(
        "Figure 6 (simulated): DSFS net-bound throughput, MB/s (128 x 1MB)",
        &["clients", "1 srv", "2 srv", "3 srv", "4 srv", "8 srv"],
        &rows,
    );
    println!(
        "  paper: one server ~100 MB/s (one port); >=3 servers plateau at the\n\
         \x20 300 MB/s switch backplane regardless of further servers."
    );
    let hit = run(&model, ClusterParams::fig6(4, 16)).cache_hit_rate;
    println!(
        "  cache hit rate at 4 servers: {:.0}% (all data memory-resident)",
        hit * 100.0
    );
}

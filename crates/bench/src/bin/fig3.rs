//! Figure 3 — System Call Latency: the overhead charged on individual
//! system calls by the Parrot adapter (Unix vs Parrot).
//!
//! Two views: the calibrated testbed model (2.8 GHz P4, ptrace traps),
//! and a live measurement of this library's adapter layer (direct
//! `LocalFs` vs through the `Adapter` namespace), which shares the
//! figure's *shape*: every call pays a fixed interposition tax that is
//! large relative to the raw syscall.

use chirp_proto::OpenFlags;
use simnet::micro::fig3_syscall_latency;
use simnet::CostModel;
use tss_bench::{fixtures, fmt_us, measure_latency, print_table};
use tss_core::adapter::{Adapter, AdapterConfig};
use tss_core::fs::FileSystem;

fn main() {
    // -- the calibrated model, matching the paper's testbed ----------
    let model = CostModel::default();
    let rows: Vec<Vec<String>> = fig3_syscall_latency(&model)
        .into_iter()
        .map(|r| {
            let unix = r.systems[0].1;
            let parrot = r.systems[1].1;
            vec![
                r.call.clone(),
                fmt_us(unix),
                fmt_us(parrot),
                format!("{:.1}x", parrot / unix),
            ]
        })
        .collect();
    print_table(
        "Figure 3 (modelled 2005 testbed): syscall latency, us",
        &["call", "unix", "parrot", "slowdown"],
        &rows,
    );
    println!("  paper: most calls slowed by an order of magnitude under the adapter");

    // -- live measurement of this implementation's adapter layer -----
    let f = fixtures();
    f.local.write_file("/f", &vec![0u8; 8192]).unwrap();
    let adapter = Adapter::new(AdapterConfig::default()).unwrap();
    adapter.register("/direct", f.local.clone());

    let iters = 2000;
    let mut rows = Vec::new();
    {
        let direct = measure_latency(
            || {
                f.local.stat("/f").unwrap();
            },
            100,
            iters,
        );
        let viaadapter = measure_latency(
            || {
                adapter.stat("/direct/f").unwrap();
            },
            100,
            iters,
        );
        rows.push(vec![
            "stat".to_string(),
            fmt_us(direct.0),
            fmt_us(viaadapter.0),
            format!("{:.1}x", viaadapter.0 / direct.0),
        ]);
    }
    {
        let direct = measure_latency(
            || {
                drop(f.local.open("/f", OpenFlags::READ, 0).unwrap());
            },
            100,
            iters,
        );
        let viaadapter = measure_latency(
            || {
                drop(adapter.open("/direct/f", OpenFlags::READ, 0).unwrap());
            },
            100,
            iters,
        );
        rows.push(vec![
            "open/close".to_string(),
            fmt_us(direct.0),
            fmt_us(viaadapter.0),
            format!("{:.1}x", viaadapter.0 / direct.0),
        ]);
    }
    {
        let mut buf = vec![0u8; 8192];
        let mut hd = f.local.open("/f", OpenFlags::READ, 0).unwrap();
        let direct = measure_latency(
            || {
                hd.pread(&mut buf, 0).unwrap();
            },
            100,
            iters,
        );
        let mut ha = adapter
            .open_handle("/direct/f", OpenFlags::READ, 0)
            .unwrap();
        let viaadapter = measure_latency(
            || {
                ha.pread(&mut buf, 0).unwrap();
            },
            100,
            iters,
        );
        rows.push(vec![
            "read 8kb".to_string(),
            fmt_us(direct.0),
            fmt_us(viaadapter.0),
            format!("{:.1}x", viaadapter.0 / direct.0),
        ]);
    }
    print_table(
        "Figure 3 (measured, this library): direct vs adapter, us",
        &["call", "direct", "adapter", "slowdown"],
        &rows,
    );
    println!(
        "  note: the library adapter interposes in-process (no ptrace), so its\n\
         \x20 tax is smaller than Parrot's; the shape (constant per-call overhead,\n\
         \x20 dwarfed by any network RTT — see fig4) is what carries over."
    );
}

//! Figure 7 — DSFS Scalability, Mixed-Bound: 1280 files × 1 MB from
//! 1–8 servers. With fewer than three servers the 1280 MB working set
//! overflows the per-server 512 MB buffer caches and the system runs
//! at disk speeds; with three or more, everything fits in aggregate
//! memory and the switch backplane binds.

use simnet::cluster::{run, ClusterParams};
use simnet::CostModel;
use tss_bench::print_table;

fn main() {
    let model = CostModel::default();
    let servers = [1usize, 2, 3, 4, 8];
    let clients = [1usize, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    for &c in &clients {
        let mut row = vec![c.to_string()];
        for &s in &servers {
            let r = run(&model, ClusterParams::fig7(s, c));
            row.push(format!("{:.0}", r.mb_per_s()));
        }
        rows.push(row);
    }
    print_table(
        "Figure 7 (simulated): DSFS mixed-bound throughput, MB/s (1280 x 1MB)",
        &["clients", "1 srv", "2 srv", "3 srv", "4 srv", "8 srv"],
        &rows,
    );
    println!(
        "  paper: <3 servers disk-bound; >=3 servers all data fits in memory\n\
         \x20 and the system is bound only by the switch (~300 MB/s)."
    );
    for s in [1usize, 4] {
        let r = run(&model, ClusterParams::fig7(s, 16));
        println!(
            "  {s} server(s): {:.0} MB/s at {:.0}% cache hits",
            r.mb_per_s(),
            r.cache_hit_rate * 100.0
        );
    }
}

//! Shared harness for the figure-regeneration binaries and Criterion
//! benches: loopback fixtures for every backend, latency measurement,
//! and table printing.
//!
//! Each paper figure/table has a binary (`fig3` … `fig9`,
//! `sp5_table`) that prints the paper's reported numbers next to what
//! this reproduction produces — a calibrated model where the original
//! needed 2005 hardware, plus live loopback measurements where the
//! protocol shape itself is the claim. EXPERIMENTS.md records the
//! outputs.

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use chirp_client::AuthMethod;
use chirp_proto::testutil::TempDir;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use tss_core::cfs::{Cfs, CfsConfig, RetryPolicy};
use tss_core::fs::FileSystem;
use tss_core::stubfs::DataServer;
use tss_core::{Dsfs, LocalFs};

/// Default network timeout for fixtures.
pub const TIMEOUT: Duration = Duration::from_secs(10);

/// A ready-to-measure set of backends over loopback: the same four
/// systems Figure 4/5 compares.
pub struct Fixtures {
    /// Keeps the temp trees alive.
    pub dirs: Vec<TempDir>,
    /// Keeps the servers alive.
    pub chirp_servers: Vec<FileServer>,
    /// Keeps the NFS server alive.
    pub nfs_server: nfs_sim::NfsServer,
    /// Plain host filesystem ("Unix").
    pub local: Arc<LocalFs>,
    /// Chirp-backed central filesystem ("Parrot+CFS").
    pub cfs: Arc<Cfs>,
    /// NFS-shaped baseline ("Unix+NFS").
    pub nfs: Arc<nfs_sim::NfsFs>,
    /// Distributed shared filesystem ("Parrot+DSFS").
    pub dsfs: Arc<Dsfs>,
}

/// Hostname auth for loopback.
pub fn auth() -> Vec<AuthMethod> {
    vec![AuthMethod::Hostname]
}

/// Start a wide-open loopback file server on `root`.
pub fn open_server(root: &std::path::Path) -> FileServer {
    FileServer::start(
        ServerConfig::localhost(root, "bench")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
    )
    .expect("start chirp server")
}

/// Build all four backends on loopback.
pub fn fixtures() -> Fixtures {
    let local_dir = TempDir::new();
    let local = Arc::new(LocalFs::new(local_dir.path()).unwrap());

    let cfs_dir = TempDir::new();
    let cfs_server = open_server(cfs_dir.path());
    let mut cfg = CfsConfig::new(&cfs_server.endpoint(), auth());
    cfg.timeout = TIMEOUT;
    cfg.retry = RetryPolicy::default();
    let cfs = Arc::new(Cfs::new(cfg));

    let nfs_dir = TempDir::new();
    let nfs_server =
        nfs_sim::NfsServer::start(nfs_sim::NfsServerConfig::localhost(nfs_dir.path())).unwrap();
    let nfs = Arc::new(nfs_sim::NfsFs::connect(nfs_server.addr(), TIMEOUT).unwrap());

    let meta_dir = TempDir::new();
    let data_dir = TempDir::new();
    let dir_server = open_server(meta_dir.path());
    let data_server = open_server(data_dir.path());
    let pool = vec![DataServer::new(&data_server.endpoint(), "/vol", auth())];
    let dsfs =
        Arc::new(Dsfs::format(&dir_server.endpoint(), "/tree", auth(), pool).expect("format dsfs"));

    Fixtures {
        dirs: vec![local_dir, cfs_dir, nfs_dir, meta_dir, data_dir],
        chirp_servers: vec![cfs_server, dir_server, data_server],
        nfs_server,
        local,
        cfs,
        nfs,
        dsfs,
    }
}

/// Mean and standard deviation of `op`'s latency over `iters` calls
/// after `warmup` unmeasured ones.
pub fn measure_latency(mut op: impl FnMut(), warmup: u32, iters: u32) -> (f64, f64) {
    for _ in 0..warmup {
        op();
    }
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        op();
        samples.push(t0.elapsed().as_secs_f64());
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    (mean, var.sqrt())
}

/// Copy `total` bytes into `path` on `fs` using `block`-sized writes;
/// returns achieved bandwidth in bytes/s. Asynchronous writes, as in
/// the paper's Figure 5 ("we show asynchronous writes in order to
/// evaluate maximum performance").
pub fn measure_write_bandwidth(fs: &dyn FileSystem, path: &str, block: usize, total: usize) -> f64 {
    let data = vec![0x5au8; block];
    let mut h = fs
        .open(
            path,
            chirp_proto::OpenFlags::WRITE
                | chirp_proto::OpenFlags::CREATE
                | chirp_proto::OpenFlags::TRUNCATE,
            0o644,
        )
        .expect("open for bandwidth");
    let t0 = Instant::now();
    let mut written = 0usize;
    while written < total {
        let n = (total - written).min(block);
        h.pwrite(&data[..n], written as u64).expect("pwrite");
        written += n;
    }
    total as f64 / t0.elapsed().as_secs_f64()
}

/// Best of `reps` bandwidth runs: the maximum filters out background
/// page-cache writeback stalls that would otherwise dominate the
/// variance on a shared host.
pub fn best_write_bandwidth(
    fs: &dyn FileSystem,
    path: &str,
    block: usize,
    total: usize,
    reps: u32,
) -> f64 {
    (0..reps)
        .map(|_| measure_write_bandwidth(fs, path, block, total))
        .fold(0.0, f64::max)
}

/// Read `total` bytes back in `block`-sized reads; bytes/s.
pub fn measure_read_bandwidth(fs: &dyn FileSystem, path: &str, block: usize, total: usize) -> f64 {
    let mut buf = vec![0u8; block];
    let mut h = fs
        .open(path, chirp_proto::OpenFlags::READ, 0)
        .expect("open for read bandwidth");
    let t0 = Instant::now();
    let mut read = 0usize;
    while read < total {
        let n = h.pread(&mut buf, read as u64).expect("pread");
        assert!(n > 0, "short file during bandwidth read");
        read += n;
    }
    total as f64 / t0.elapsed().as_secs_f64()
}

/// Print an aligned table: `headers` then `rows` of equal length.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format seconds as a human latency (µs with 1 decimal).
pub fn fmt_us(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e6)
}

/// Format bytes/s as MB/s.
pub fn fmt_mbs(bytes_per_s: f64) -> String {
    format!("{:.1}", bytes_per_s / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_come_up_and_serve_all_backends() {
        let f = fixtures();
        for (name, fs) in [
            ("local", f.local.clone() as Arc<dyn FileSystem>),
            ("cfs", f.cfs.clone() as Arc<dyn FileSystem>),
            ("nfs", f.nfs.clone() as Arc<dyn FileSystem>),
            ("dsfs", f.dsfs.clone() as Arc<dyn FileSystem>),
        ] {
            fs.write_file("/probe", b"x")
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(fs.read_file("/probe").unwrap(), b"x", "{name}");
        }
    }

    #[test]
    fn bandwidth_measurement_is_positive() {
        let f = fixtures();
        let bw = measure_write_bandwidth(f.local.as_ref(), "/bw", 64 * 1024, 1 << 20);
        assert!(bw > 0.0);
        let rbw = measure_read_bandwidth(f.local.as_ref(), "/bw", 64 * 1024, 1 << 20);
        assert!(rbw > 0.0);
    }

    #[test]
    fn latency_measurement_returns_sane_stats() {
        let (mean, dev) = measure_latency(
            || {
                std::hint::black_box(1 + 1);
            },
            10,
            100,
        );
        assert!(mean >= 0.0 && dev >= 0.0);
    }
}

// ---- pipelining fixtures ---------------------------------------------------

/// A [`Dialer`] wrapper charging a fixed turnaround latency every time
/// a connection switches from writing to reading — one sleep per
/// client-observed round trip. Loopback TCP completes a small RPC in
/// microseconds, so without this a pipelining benchmark would measure
/// syscall overhead; with it, the benchmark measures what request
/// pipelining actually buys: `ceil(n / depth)` round trips for `n`
/// requests instead of `n`.
pub fn latency_dialer(
    inner: chirp_proto::transport::Dialer,
    turnaround: Duration,
) -> chirp_proto::transport::Dialer {
    chirp_proto::transport::Dialer::from_arc(Arc::new(LatencyDial { inner, turnaround }))
}

struct LatencyDial {
    inner: chirp_proto::transport::Dialer,
    turnaround: Duration,
}

impl chirp_proto::transport::Dial for LatencyDial {
    fn dial(
        &self,
        endpoint: &str,
        timeout: Duration,
    ) -> std::io::Result<Box<dyn chirp_proto::transport::Transport>> {
        let inner = self.inner.dial(endpoint, timeout)?;
        Ok(Box::new(LatencyTransport {
            inner,
            turnaround: self.turnaround,
            wrote: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }))
    }
}

/// See [`latency_dialer`]. The write-then-read flag is shared across
/// [`Transport::try_clone`] halves so the buffered reader and writer
/// of one connection observe a single turnaround state.
#[derive(Debug)]
struct LatencyTransport {
    inner: Box<dyn chirp_proto::transport::Transport>,
    turnaround: Duration,
    wrote: Arc<std::sync::atomic::AtomicBool>,
}

impl std::io::Read for LatencyTransport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.wrote.swap(false, std::sync::atomic::Ordering::SeqCst) {
            std::thread::sleep(self.turnaround);
        }
        self.inner.read(buf)
    }
}

impl std::io::Write for LatencyTransport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.wrote.store(true, std::sync::atomic::Ordering::SeqCst);
        self.inner.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl chirp_proto::transport::Transport for LatencyTransport {
    fn try_clone(&self) -> std::io::Result<Box<dyn chirp_proto::transport::Transport>> {
        Ok(Box::new(LatencyTransport {
            inner: self.inner.try_clone()?,
            turnaround: self.turnaround,
            wrote: Arc::clone(&self.wrote),
        }))
    }
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }
    fn read_timeout(&self) -> std::io::Result<Option<Duration>> {
        self.inner.read_timeout()
    }
    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_write_timeout(timeout)
    }
    fn peer_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.inner.peer_addr()
    }
    fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.inner.local_addr()
    }
    fn shutdown(&self) -> std::io::Result<()> {
        self.inner.shutdown()
    }
}

/// Issue `count` 1 KiB-class `PREAD`s for `(fd, len)` over one
/// connection in pipelined batches of `depth` (depth 1 = the classic
/// one-RPC-at-a-time loop), asserting every reply returns `len` bytes.
pub fn pipelined_preads(
    conn: &mut chirp_client::Connection,
    fd: i32,
    len: u64,
    count: usize,
    depth: usize,
) {
    use chirp_proto::{ReplyShape, Request};
    let mut done = 0usize;
    while done < count {
        let batch = depth.min(count - done);
        conn.pipeline(depth, |pipe| {
            for _ in 0..batch {
                pipe.send(
                    &Request::Pread {
                        fd,
                        length: len,
                        offset: 0,
                    },
                    None,
                    ReplyShape::Body,
                )?;
            }
            pipe.flush()?;
            for _ in 0..batch {
                let body = pipe.recv()?.into_body();
                assert_eq!(body.len() as u64, len);
            }
            Ok(())
        })
        .expect("pipelined pread batch");
        done += batch;
    }
}

/// Issue `count` `STAT`s for `path` over one connection in pipelined
/// batches of `depth`, asserting every reply carries stat words.
pub fn pipelined_stats(
    conn: &mut chirp_client::Connection,
    path: &str,
    count: usize,
    depth: usize,
) {
    use chirp_proto::{ReplyShape, Request};
    let mut done = 0usize;
    while done < count {
        let batch = depth.min(count - done);
        conn.pipeline(depth, |pipe| {
            for _ in 0..batch {
                pipe.send(
                    &Request::Stat {
                        path: path.to_string(),
                    },
                    None,
                    ReplyShape::Status,
                )?;
            }
            pipe.flush()?;
            for _ in 0..batch {
                let st = pipe.recv()?;
                assert!(!st.status().words.is_empty());
            }
            Ok(())
        })
        .expect("pipelined stat batch");
        done += batch;
    }
}

//! The server self-description record and its `key value` line codec.
//!
//! The format matches what `chirp-server`'s reporting thread emits:
//! one lowercase key per line, the rest of the line is the value, with
//! free-text values percent-escaped by the sender. Keys under the
//! `m.` prefix carry telemetry metric tokens (see
//! [`telemetry::MetricValue::encode`]); everything else unknown is
//! preserved verbatim so old catalogs survive new servers.

use std::collections::BTreeMap;

use telemetry::{MetricValue, MetricsSnapshot};

use crate::json::Value;

/// One file server's self-description as last reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerReport {
    /// Record type; always `chirp` for file servers.
    pub kind: String,
    /// Server name (unique key in the catalog).
    pub name: String,
    /// Human owner.
    pub owner: String,
    /// `host:port` clients should connect to.
    pub address: String,
    /// Protocol version.
    pub version: u32,
    /// Advertised capacity in bytes.
    pub total: u64,
    /// Free bytes at report time.
    pub free: u64,
    /// Rendered top-level ACL.
    pub topacl: String,
    /// Telemetry snapshot the server folded into the report (`m.*`
    /// keys): per-op RPC counts, error counters, latency histograms.
    pub metrics: MetricsSnapshot,
    /// Any additional keys the server sent, preserved verbatim
    /// (including `m.*` keys whose value token failed to decode).
    pub extra: BTreeMap<String, String>,
}

impl ServerReport {
    /// Parse one report packet. Unknown keys are preserved in
    /// [`ServerReport::extra`] so old catalogs survive new servers.
    pub fn parse(text: &str) -> Option<ServerReport> {
        let mut fields: BTreeMap<String, String> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            fields.insert(key.to_string(), value.to_string());
        }
        let unescape = |s: &str| -> String {
            chirp_proto::escape::unescape(s)
                .and_then(|b| String::from_utf8(b).ok())
                .unwrap_or_else(|| s.to_string())
        };
        let mut take = |k: &str| fields.remove(k);
        let mut report = ServerReport {
            kind: take("type")?,
            name: unescape(&take("name")?),
            owner: unescape(&take("owner")?),
            address: take("address")?,
            version: take("version")?.parse().ok()?,
            total: take("total")?.parse().ok()?,
            free: take("free")?.parse().ok()?,
            topacl: unescape(&take("topacl").unwrap_or_default()),
            metrics: MetricsSnapshot::default(),
            extra: fields,
        };
        let mut metrics = MetricsSnapshot::default();
        report.extra.retain(|key, value| {
            let Some(name) = key.strip_prefix("m.") else {
                return true;
            };
            match MetricValue::decode(value) {
                Some(mv) => {
                    metrics.metrics.insert(name.to_string(), mv);
                    false
                }
                // Undecodable token (a newer sender's kind): keep the
                // raw line so render() republishes it untouched.
                None => true,
            }
        });
        report.metrics = metrics;
        Some(report)
    }

    /// Render back to the packet format (inverse of [`parse`] up to
    /// key order).
    ///
    /// [`parse`]: ServerReport::parse
    pub fn render(&self) -> String {
        let e = |s: &str| chirp_proto::escape::escape(s.as_bytes());
        let mut out = String::new();
        out.push_str(&format!("type {}\n", self.kind));
        out.push_str(&format!("name {}\n", e(&self.name)));
        out.push_str(&format!("owner {}\n", e(&self.owner)));
        out.push_str(&format!("address {}\n", self.address));
        out.push_str(&format!("version {}\n", self.version));
        out.push_str(&format!("total {}\n", self.total));
        out.push_str(&format!("free {}\n", self.free));
        out.push_str(&format!("topacl {}\n", e(&self.topacl)));
        for (k, v) in &self.extra {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.metrics.metrics {
            out.push_str(&format!("m.{k} {}\n", v.encode()));
        }
        out
    }

    /// This record as a JSON object. Metrics render as a nested
    /// `"metrics"` object (omitted when the server sent none).
    pub fn to_json(&self) -> String {
        let mut obj: Vec<(String, Value)> = vec![
            ("type".into(), Value::from(self.kind.as_str())),
            ("name".into(), Value::from(self.name.as_str())),
            ("owner".into(), Value::from(self.owner.as_str())),
            ("address".into(), Value::from(self.address.as_str())),
            ("version".into(), Value::Uint(self.version as u64)),
            ("total".into(), Value::Uint(self.total)),
            ("free".into(), Value::Uint(self.free)),
            ("topacl".into(), Value::from(self.topacl.as_str())),
        ];
        for (k, v) in &self.extra {
            obj.push((k.clone(), Value::from(v.as_str())));
        }
        if !self.metrics.is_empty() {
            obj.push(("metrics".into(), self.metrics.to_json_value()));
        }
        Value::Object(obj).render()
    }

    /// The server's metrics as a ClassAd-style text record: `name` and
    /// `address` lines followed by one `metric.<key> <token>` line per
    /// metric, with derived `.p50`/`.p99`/`.mean` lines appended after
    /// every histogram.
    pub fn metrics_classad(&self) -> String {
        let e = |s: &str| chirp_proto::escape::escape(s.as_bytes());
        let mut out = String::new();
        out.push_str(&format!("name {}\n", e(&self.name)));
        out.push_str(&format!("address {}\n", self.address));
        for (k, v) in &self.metrics.metrics {
            out.push_str(&format!("metric.{k} {}\n", v.encode()));
            if let MetricValue::Histogram(h) = v {
                out.push_str(&format!("metric.{k}.p50 {}\n", h.quantile(0.50)));
                out.push_str(&format!("metric.{k}.p99 {}\n", h.quantile(0.99)));
                out.push_str(&format!("metric.{k}.mean {}\n", h.mean()));
            }
        }
        out
    }

    /// The server's metrics as a JSON object value; histogram members
    /// gain derived `p50`/`p99`/`mean` fields (which
    /// [`telemetry::MetricValue::from_json_value`] ignores on decode,
    /// so the enriched form still round-trips).
    pub fn metrics_json_value(&self) -> Value {
        let mut metrics: Vec<(String, Value)> = Vec::new();
        for (k, v) in &self.metrics.metrics {
            let mut member = v.to_json_value();
            if let (MetricValue::Histogram(h), Value::Object(fields)) = (v, &mut member) {
                fields.push(("p50".into(), Value::Uint(h.quantile(0.50))));
                fields.push(("p99".into(), Value::Uint(h.quantile(0.99))));
                fields.push(("mean".into(), Value::Uint(h.mean())));
            }
            metrics.push((k.clone(), member));
        }
        Value::Object(vec![
            ("name".into(), Value::from(self.name.as_str())),
            ("address".into(), Value::from(self.address.as_str())),
            ("metrics".into(), Value::Object(metrics)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::HistogramSnapshot;

    fn sample() -> ServerReport {
        ServerReport {
            kind: "chirp".into(),
            name: "node05.cse.nd.edu:9094".into(),
            owner: "doug thain".into(),
            address: "10.0.0.5:9094".into(),
            version: 1,
            total: 250_000_000_000,
            free: 100_000_000_000,
            topacl: "hostname:*.cse.nd.edu rwl\n".into(),
            metrics: MetricsSnapshot::default(),
            extra: BTreeMap::from([("requests".to_string(), "42".to_string())]),
        }
    }

    fn sample_with_metrics() -> ServerReport {
        let mut r = sample();
        r.metrics
            .metrics
            .insert("rpc.open.count".into(), MetricValue::Counter(17));
        let mut h = HistogramSnapshot::default();
        for v in [900, 1100, 40_000] {
            h.record(v);
        }
        r.metrics
            .metrics
            .insert("rpc.latency_ns".into(), MetricValue::Histogram(h));
        r
    }

    #[test]
    fn parse_render_round_trip() {
        let r = sample();
        let again = ServerReport::parse(&r.render()).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn metrics_round_trip_through_the_packet() {
        let r = sample_with_metrics();
        let again = ServerReport::parse(&r.render()).unwrap();
        assert_eq!(r, again);
        assert_eq!(again.metrics.counter("rpc.open.count"), Some(17));
        assert_eq!(again.metrics.histogram("rpc.latency_ns").unwrap().count, 3);
    }

    #[test]
    fn undecodable_metric_tokens_stay_in_extra() {
        let mut text = sample().render();
        text.push_str("m.future z42|weird\n");
        let r = ServerReport::parse(&text).unwrap();
        assert!(r.metrics.is_empty());
        assert_eq!(r.extra.get("m.future").unwrap(), "z42|weird");
        // And they survive a re-render unchanged.
        let again = ServerReport::parse(&r.render()).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn parse_rejects_incomplete_reports() {
        assert!(ServerReport::parse("type chirp\nname x\n").is_none());
        assert!(ServerReport::parse("").is_none());
    }

    #[test]
    fn parse_tolerates_unknown_keys() {
        let mut text = sample().render();
        text.push_str("futurefield something new\n");
        let r = ServerReport::parse(&text).unwrap();
        assert_eq!(r.extra.get("futurefield").unwrap(), "something new");
    }

    #[test]
    fn escaped_values_survive() {
        let mut r = sample();
        r.owner = "owner with spaces\nand newline".into();
        let again = ServerReport::parse(&r.render()).unwrap();
        assert_eq!(again.owner, r.owner);
    }

    #[test]
    fn json_contains_fields() {
        let j = sample().to_json();
        assert!(j.contains("\"name\""));
        assert!(j.contains("node05.cse.nd.edu:9094"));
        assert!(j.contains("\"free\""));
        assert!(!j.contains("\"metrics\""), "empty metrics are omitted");
        let j = sample_with_metrics().to_json();
        assert!(j.contains("\"metrics\""));
        assert!(j.contains("\"rpc.open.count\""));
    }

    #[test]
    fn classad_metrics_view_has_quantiles() {
        let text = sample_with_metrics().metrics_classad();
        assert!(text.contains("metric.rpc.open.count c17"));
        let p50 = text
            .lines()
            .find(|l| l.starts_with("metric.rpc.latency_ns.p50 "))
            .expect("p50 line");
        let p50: u64 = p50.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(
            (1100..40_000).contains(&p50),
            "p50 {p50} should be mid-range"
        );
        assert!(text.contains("metric.rpc.latency_ns.p99 "));
    }

    #[test]
    fn json_metrics_view_round_trips_and_has_quantiles() {
        let r = sample_with_metrics();
        let v = r.metrics_json_value();
        let rendered = v.render();
        assert_eq!(v.get("name").unwrap().as_str(), Some(r.name.as_str()));
        let parsed = Value::parse(&rendered).unwrap();
        let hist = parsed
            .get("metrics")
            .unwrap()
            .get("rpc.latency_ns")
            .unwrap();
        assert!(hist.get("p50").unwrap().as_u64().unwrap() >= 1023);
        assert!(hist.get("p99").unwrap().as_u64().is_some());
        // Stripping nothing, the enriched members still decode.
        let snap =
            MetricsSnapshot::from_json_value(parsed.get("metrics").unwrap()).expect("decodes");
        assert_eq!(snap, r.metrics);
    }
}

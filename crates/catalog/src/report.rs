//! The server self-description record and its `key value` line codec.
//!
//! The format matches what `chirp-server`'s reporting thread emits:
//! one lowercase key per line, the rest of the line is the value, with
//! free-text values percent-escaped by the sender.

use std::collections::BTreeMap;

/// One file server's self-description as last reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerReport {
    /// Record type; always `chirp` for file servers.
    pub kind: String,
    /// Server name (unique key in the catalog).
    pub name: String,
    /// Human owner.
    pub owner: String,
    /// `host:port` clients should connect to.
    pub address: String,
    /// Protocol version.
    pub version: u32,
    /// Advertised capacity in bytes.
    pub total: u64,
    /// Free bytes at report time.
    pub free: u64,
    /// Rendered top-level ACL.
    pub topacl: String,
    /// Any additional keys the server sent, preserved verbatim.
    pub extra: BTreeMap<String, String>,
}

impl ServerReport {
    /// Parse one report packet. Unknown keys are preserved in
    /// [`ServerReport::extra`] so old catalogs survive new servers.
    pub fn parse(text: &str) -> Option<ServerReport> {
        let mut fields: BTreeMap<String, String> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            fields.insert(key.to_string(), value.to_string());
        }
        let unescape = |s: &str| -> String {
            chirp_proto::escape::unescape(s)
                .and_then(|b| String::from_utf8(b).ok())
                .unwrap_or_else(|| s.to_string())
        };
        let mut take = |k: &str| fields.remove(k);
        let report = ServerReport {
            kind: take("type")?,
            name: unescape(&take("name")?),
            owner: unescape(&take("owner")?),
            address: take("address")?,
            version: take("version")?.parse().ok()?,
            total: take("total")?.parse().ok()?,
            free: take("free")?.parse().ok()?,
            topacl: unescape(&take("topacl").unwrap_or_default()),
            extra: fields,
        };
        Some(report)
    }

    /// Render back to the packet format (inverse of [`parse`] up to
    /// key order).
    ///
    /// [`parse`]: ServerReport::parse
    pub fn render(&self) -> String {
        let e = |s: &str| chirp_proto::escape::escape(s.as_bytes());
        let mut out = String::new();
        out.push_str(&format!("type {}\n", self.kind));
        out.push_str(&format!("name {}\n", e(&self.name)));
        out.push_str(&format!("owner {}\n", e(&self.owner)));
        out.push_str(&format!("address {}\n", self.address));
        out.push_str(&format!("version {}\n", self.version));
        out.push_str(&format!("total {}\n", self.total));
        out.push_str(&format!("free {}\n", self.free));
        out.push_str(&format!("topacl {}\n", e(&self.topacl)));
        for (k, v) in &self.extra {
            out.push_str(&format!("{k} {v}\n"));
        }
        out
    }

    /// This record as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj: Vec<(String, crate::json::Value)> = vec![
            ("type".into(), crate::json::Value::from(self.kind.as_str())),
            ("name".into(), crate::json::Value::from(self.name.as_str())),
            (
                "owner".into(),
                crate::json::Value::from(self.owner.as_str()),
            ),
            (
                "address".into(),
                crate::json::Value::from(self.address.as_str()),
            ),
            (
                "version".into(),
                crate::json::Value::Number(self.version as f64),
            ),
            (
                "total".into(),
                crate::json::Value::Number(self.total as f64),
            ),
            ("free".into(), crate::json::Value::Number(self.free as f64)),
            (
                "topacl".into(),
                crate::json::Value::from(self.topacl.as_str()),
            ),
        ];
        for (k, v) in &self.extra {
            obj.push((k.clone(), crate::json::Value::from(v.as_str())));
        }
        crate::json::Value::Object(obj).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServerReport {
        ServerReport {
            kind: "chirp".into(),
            name: "node05.cse.nd.edu:9094".into(),
            owner: "doug thain".into(),
            address: "10.0.0.5:9094".into(),
            version: 1,
            total: 250_000_000_000,
            free: 100_000_000_000,
            topacl: "hostname:*.cse.nd.edu rwl\n".into(),
            extra: BTreeMap::from([("requests".to_string(), "42".to_string())]),
        }
    }

    #[test]
    fn parse_render_round_trip() {
        let r = sample();
        let again = ServerReport::parse(&r.render()).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn parse_rejects_incomplete_reports() {
        assert!(ServerReport::parse("type chirp\nname x\n").is_none());
        assert!(ServerReport::parse("").is_none());
    }

    #[test]
    fn parse_tolerates_unknown_keys() {
        let mut text = sample().render();
        text.push_str("futurefield something new\n");
        let r = ServerReport::parse(&text).unwrap();
        assert_eq!(r.extra.get("futurefield").unwrap(), "something new");
    }

    #[test]
    fn escaped_values_survive() {
        let mut r = sample();
        r.owner = "owner with spaces\nand newline".into();
        let again = ServerReport::parse(&r.render()).unwrap();
        assert_eq!(again.owner, r.owner);
    }

    #[test]
    fn json_contains_fields() {
        let j = sample().to_json();
        assert!(j.contains("\"name\""));
        assert!(j.contains("node05.cse.nd.edu:9094"));
        assert!(j.contains("\"free\""));
    }
}

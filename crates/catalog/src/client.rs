//! Querying a catalog for the current set of storage resources.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use chirp_proto::transport::Dialer;

use crate::report::ServerReport;

/// Fetch the text-format listing from a catalog and parse it.
///
/// Returns the live (non-expired) servers the catalog knows of. The
/// result is a *hint*: every field may be stale by the time it is
/// acted upon.
pub fn query(addr: SocketAddr, timeout: Duration) -> std::io::Result<Vec<ServerReport>> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"text\n")?;
    let mut reader = BufReader::new(stream);
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok(parse_listing(&body))
}

/// Fetch the raw JSON listing (for external tools and tests).
pub fn query_json(addr: SocketAddr, timeout: Duration) -> std::io::Result<String> {
    query_raw(addr, timeout, "json")
}

/// Fetch the browsable HTML listing.
pub fn query_html(addr: SocketAddr, timeout: Duration) -> std::io::Result<String> {
    query_raw(addr, timeout, "html")
}

/// Fetch the per-server metrics listing in ClassAd text form
/// (blank-line separated records of `metric.<name> <token>` lines with
/// derived `.p50`/`.p99`/`.mean` values per histogram).
pub fn query_metrics(addr: SocketAddr, timeout: Duration) -> std::io::Result<String> {
    query_raw(addr, timeout, "metrics")
}

/// Fetch the per-server metrics listing as a JSON array.
pub fn query_metrics_json(addr: SocketAddr, timeout: Duration) -> std::io::Result<String> {
    query_raw(addr, timeout, "metrics-json")
}

fn query_raw(addr: SocketAddr, timeout: Duration, format: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(format!("{format}\n").as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok(body)
}

/// Fetch the text-format listing over a [`Dialer`] — the
/// transport-generic twin of [`query`], usable against catalogs bound
/// on the in-memory network as well as TCP.
pub fn query_via(
    dialer: &Dialer,
    endpoint: &str,
    timeout: Duration,
) -> std::io::Result<Vec<ServerReport>> {
    query_raw_via(dialer, endpoint, timeout, "text").map(|body| parse_listing(&body))
}

/// Fetch any listing format over a [`Dialer`], returning the raw body
/// (the transport-generic twin of the `query_*` helpers; also carries
/// the federation's extra verbs, e.g. `fed-status`).
pub fn query_raw_via(
    dialer: &Dialer,
    endpoint: &str,
    timeout: Duration,
    format: &str,
) -> std::io::Result<String> {
    let stream = dialer.dial(endpoint, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(format!("{format}\n").as_bytes())?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok(body)
}

/// Split a text listing (blank-line separated records) into reports.
pub fn parse_listing(body: &str) -> Vec<ServerReport> {
    body.split("\n\n").filter_map(ServerReport::parse).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CatalogConfig, CatalogServer};
    use std::collections::BTreeMap;

    fn report(name: &str, free: u64) -> ServerReport {
        ServerReport {
            kind: "chirp".into(),
            name: name.into(),
            owner: "o".into(),
            address: format!("{name}:9094"),
            version: 1,
            total: 100,
            free,
            topacl: String::new(),
            metrics: Default::default(),
            extra: BTreeMap::new(),
        }
    }

    #[test]
    fn query_round_trips_reports() {
        let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(5))).unwrap();
        cat.ingest(report("alpha", 10));
        cat.ingest(report("beta", 20));
        let listing = query(cat.tcp_addr(), Duration::from_secs(5)).unwrap();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].name, "alpha");
        assert_eq!(listing[1].free, 20);
    }

    #[test]
    fn json_listing_is_an_array() {
        let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(5))).unwrap();
        cat.ingest(report("alpha", 10));
        let json = query_json(cat.tcp_addr(), Duration::from_secs(5)).unwrap();
        let json = json.trim();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"alpha\""));
    }

    #[test]
    fn html_listing_is_browsable_and_escaped() {
        let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(5))).unwrap();
        let mut evil = report("x<script>", 10);
        evil.owner = "a&b".into();
        cat.ingest(evil);
        let html = query_html(cat.tcp_addr(), Duration::from_secs(5)).unwrap();
        assert!(html.contains("<table"));
        assert!(html.contains("x&lt;script&gt;"));
        assert!(html.contains("a&amp;b"));
        assert!(!html.contains("<script>"));
    }

    #[test]
    fn empty_catalog_yields_empty_listing() {
        let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(5))).unwrap();
        let listing = query(cat.tcp_addr(), Duration::from_secs(5)).unwrap();
        assert!(listing.is_empty());
    }

    #[test]
    fn parse_listing_skips_garbage_records() {
        let good = report("ok", 1).render();
        let body = format!("{good}\nnot a record\n\n{good}");
        // First chunk still parses (extra junk key), second is the
        // same record again; name-keyed dedup happens catalog-side,
        // not here.
        let reports = parse_listing(&body);
        assert!(!reports.is_empty());
    }
}

//! The catalog service: UDP ingest, staleness expiry, TCP publication.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use chirp_proto::{Clock, Tick};
use parking_lot::RwLock;

use crate::report::ServerReport;

/// Catalog configuration.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// UDP address for report ingest; port 0 for ephemeral.
    pub bind_udp: SocketAddr,
    /// TCP address for queries; port 0 for ephemeral.
    pub bind_tcp: SocketAddr,
    /// Servers that have not reported within this window are dropped
    /// from the listing.
    pub expiry: Duration,
    /// The clock staleness is measured on. Wall time in production;
    /// the simulation harness and the expiry tests inject a virtual
    /// clock so the boundary is exact and instant.
    pub clock: Clock,
}

impl CatalogConfig {
    /// Loopback config with ephemeral ports and the given expiry.
    pub fn localhost(expiry: Duration) -> CatalogConfig {
        CatalogConfig {
            bind_udp: "127.0.0.1:0".parse().expect("valid literal"),
            bind_tcp: "127.0.0.1:0".parse().expect("valid literal"),
            expiry,
            clock: Clock::wall(),
        }
    }

    /// Measure staleness on `clock` instead of wall time.
    pub fn with_clock(mut self, clock: Clock) -> CatalogConfig {
        self.clock = clock;
        self
    }
}

struct Entry {
    report: ServerReport,
    last_seen: Tick,
}

struct State {
    entries: RwLock<HashMap<String, Entry>>,
    expiry: Duration,
    clock: Clock,
    shutdown: AtomicBool,
}

/// A running catalog server.
pub struct CatalogServer {
    state: Arc<State>,
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    udp_thread: Option<JoinHandle<()>>,
    tcp_thread: Option<JoinHandle<()>>,
}

impl CatalogServer {
    /// Start the catalog; returns once both sockets are bound.
    pub fn start(config: CatalogConfig) -> std::io::Result<CatalogServer> {
        let udp = UdpSocket::bind(config.bind_udp)?;
        udp.set_read_timeout(Some(Duration::from_millis(50)))?;
        let udp_addr = udp.local_addr()?;
        let tcp = TcpListener::bind(config.bind_tcp)?;
        let tcp_addr = tcp.local_addr()?;
        let state = Arc::new(State {
            entries: RwLock::new(HashMap::new()),
            expiry: config.expiry,
            clock: config.clock,
            shutdown: AtomicBool::new(false),
        });
        let udp_state = state.clone();
        let udp_thread = std::thread::Builder::new()
            .name("catalog-udp".into())
            .spawn(move || ingest_loop(udp, udp_state))?;
        let tcp_state = state.clone();
        let tcp_thread = std::thread::Builder::new()
            .name("catalog-tcp".into())
            .spawn(move || query_loop(tcp, tcp_state))?;
        Ok(CatalogServer {
            state,
            udp_addr,
            tcp_addr,
            udp_thread: Some(udp_thread),
            tcp_thread: Some(tcp_thread),
        })
    }

    /// Address file servers should report to.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// Address clients should query.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// Current non-expired listing, newest data first by name order.
    pub fn listing(&self) -> Vec<ServerReport> {
        let now = self.state.clock.now();
        let entries = self.state.entries.read();
        let mut out: Vec<ServerReport> = entries
            .values()
            .filter(|e| now.duration_since(e.last_seen) < self.state.expiry)
            .map(|e| e.report.clone())
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Directly ingest a report (used by tests and simulations; the
    /// production path is UDP).
    pub fn ingest(&self, report: ServerReport) {
        ingest(&self.state, report);
    }

    /// Stop both service threads.
    pub fn shutdown(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the TCP accept loop.
        let _ = TcpStream::connect(self.tcp_addr);
        if let Some(h) = self.udp_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.tcp_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CatalogServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn ingest(state: &State, report: ServerReport) {
    let mut entries = state.entries.write();
    let now = state.clock.now();
    // Opportunistically purge the long-dead so the map stays bounded.
    entries.retain(|_, e| now.duration_since(e.last_seen) < state.expiry * 4);
    entries.insert(
        report.name.clone(),
        Entry {
            report,
            last_seen: now,
        },
    );
}

fn ingest_loop(udp: UdpSocket, state: Arc<State>) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((n, _peer)) = udp.recv_from(&mut buf) else {
            continue; // read timeout: poll the shutdown flag
        };
        let Ok(text) = std::str::from_utf8(&buf[..n]) else {
            continue;
        };
        if let Some(report) = ServerReport::parse(text) {
            ingest(&state, report);
        }
    }
}

fn query_loop(tcp: TcpListener, state: Arc<State>) {
    loop {
        let Ok((stream, _)) = tcp.accept() else {
            if state.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let state = state.clone();
        let _ = std::thread::Builder::new()
            .name("catalog-query".into())
            .spawn(move || {
                let _ = serve_query(stream, &state);
            });
    }
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Protocol: the client sends one line naming a format (`text`,
/// `json`, `html`, `metrics`, or `metrics-json`), the catalog answers
/// with the whole listing and closes. The metrics formats publish only
/// the telemetry portion of each live report, enriched with derived
/// p50/p99/mean values per histogram.
fn serve_query(stream: TcpStream, state: &State) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut format = String::new();
    reader.read_line(&mut format)?;
    let now = state.clock.now();
    let entries = state.entries.read();
    let live: Vec<&ServerReport> = {
        let mut v: Vec<&Entry> = entries
            .values()
            .filter(|e| now.duration_since(e.last_seen) < state.expiry)
            .collect();
        v.sort_by(|a, b| a.report.name.cmp(&b.report.name));
        v.into_iter().map(|e| &e.report).collect()
    };
    writer.write_all(render_listing(format.trim(), &live).as_bytes())?;
    writer.flush()
}

/// Render the live listing in one of the published query formats
/// (`text`, `json`, `html`, `metrics`, `metrics-json`; anything else
/// falls back to `text`).
///
/// This is *the* renderer for catalog faces: the single-process
/// [`CatalogServer`] and the federated control plane both call it, so
/// a federated fleet answers every query byte-for-byte like a lone
/// catalog holding the same live set. Reports must already be
/// expiry-filtered and sorted by name.
pub fn render_listing(format: &str, live: &[&ServerReport]) -> String {
    let mut out = String::new();
    match format {
        "json" => {
            let body: Vec<String> = live.iter().map(|r| r.to_json()).collect();
            out.push('[');
            out.push_str(&body.join(","));
            out.push_str("]\n");
        }
        "metrics" => {
            // ClassAd-style records, blank-line separated like `text`.
            for r in live {
                out.push_str(&r.metrics_classad());
                out.push('\n');
            }
        }
        "metrics-json" => {
            let body: Vec<String> = live
                .iter()
                .map(|r| r.metrics_json_value().render())
                .collect();
            out.push('[');
            out.push_str(&body.join(","));
            out.push_str("]\n");
        }
        "html" => {
            // A browsable listing, as the deployed catalog published.
            out.push_str(
                "<html><body><h1>Tactical Storage Catalog</h1><table border=1>\
                 <tr><th>name</th><th>owner</th><th>address</th>\
                 <th>total</th><th>free</th></tr>\n",
            );
            for r in live {
                out.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                    html_escape(&r.name),
                    html_escape(&r.owner),
                    html_escape(&r.address),
                    r.total,
                    r.free
                ));
            }
            out.push_str("</table></body></html>\n");
        }
        _ => {
            for r in live {
                out.push_str(&r.render());
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn report(name: &str) -> ServerReport {
        ServerReport {
            kind: "chirp".into(),
            name: name.into(),
            owner: "o".into(),
            address: format!("{name}:9094"),
            version: 1,
            total: 100,
            free: 50,
            topacl: String::new(),
            metrics: Default::default(),
            extra: BTreeMap::new(),
        }
    }

    #[test]
    fn udp_report_appears_in_listing() {
        let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(5))).unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(report("n1").render().as_bytes(), cat.udp_addr())
            .unwrap();
        for _ in 0..100 {
            if !cat.listing().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let listing = cat.listing();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].name, "n1");
    }

    #[test]
    fn reports_replace_by_name_and_expire() {
        // Staleness runs on the injected clock: advance it instead of
        // sleeping, so the test is exact and instant.
        let clock = Clock::fresh_virtual();
        let cat = CatalogServer::start(
            CatalogConfig::localhost(Duration::from_millis(80)).with_clock(clock.clone()),
        )
        .unwrap();
        cat.ingest(report("n1"));
        let mut updated = report("n1");
        updated.free = 10;
        cat.ingest(updated);
        let listing = cat.listing();
        assert_eq!(listing.len(), 1, "same name replaces, not duplicates");
        assert_eq!(listing[0].free, 10);
        clock.sleep(Duration::from_millis(150));
        assert!(cat.listing().is_empty(), "stale servers expire");
    }

    #[test]
    fn expiry_boundary_is_exact() {
        // A server is live strictly within the window and gone at the
        // instant the window closes — only demonstrable with
        // controlled timestamps.
        let expiry = Duration::from_secs(300);
        let clock = Clock::fresh_virtual();
        let cat = CatalogServer::start(CatalogConfig::localhost(expiry).with_clock(clock.clone()))
            .unwrap();
        cat.ingest(report("edge"));
        clock.sleep(expiry - Duration::from_nanos(1));
        assert_eq!(cat.listing().len(), 1, "one tick inside the window");
        clock.sleep(Duration::from_nanos(1));
        assert!(cat.listing().is_empty(), "gone exactly at expiry");
    }

    #[test]
    fn refresh_resets_the_staleness_window() {
        let expiry = Duration::from_secs(60);
        let clock = Clock::fresh_virtual();
        let cat = CatalogServer::start(CatalogConfig::localhost(expiry).with_clock(clock.clone()))
            .unwrap();
        cat.ingest(report("n1"));
        clock.sleep(Duration::from_secs(45));
        cat.ingest(report("n1")); // fresh report restarts the window
        clock.sleep(Duration::from_secs(45));
        assert_eq!(cat.listing().len(), 1, "refreshed 45s ago, still live");
        clock.sleep(Duration::from_secs(16));
        assert!(cat.listing().is_empty());
    }

    #[test]
    fn malformed_packets_are_ignored() {
        let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(5))).unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(b"complete garbage \xff\xfe", cat.udp_addr())
            .unwrap();
        sock.send_to(b"type chirp\n", cat.udp_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert!(cat.listing().is_empty());
    }

    #[test]
    fn silent_servers_metrics_expire_with_the_report() {
        use std::io::{Read as _, Write as _};
        let clock = Clock::fresh_virtual();
        let cat = CatalogServer::start(
            CatalogConfig::localhost(Duration::from_millis(120)).with_clock(clock.clone()),
        )
        .unwrap();
        let mut r = report("quiet");
        r.metrics
            .metrics
            .insert("rpc.open.count".into(), telemetry::MetricValue::Counter(99));
        cat.ingest(r);
        let fetch = |format: &str| -> String {
            let mut s = TcpStream::connect(cat.tcp_addr()).unwrap();
            s.write_all(format!("{format}\n").as_bytes()).unwrap();
            let mut body = String::new();
            s.read_to_string(&mut body).unwrap();
            body
        };
        let live = fetch("metrics");
        assert!(live.contains("metric.rpc.open.count c99"));
        let live_json = fetch("metrics-json");
        assert!(live_json.contains("\"rpc.open.count\""));
        // The server goes silent; past the TTL, its metrics must
        // disappear from every query format.
        clock.sleep(Duration::from_millis(200));
        assert!(!fetch("metrics").contains("rpc.open.count"));
        assert_eq!(fetch("metrics-json").trim(), "[]");
        assert!(!fetch("json").contains("rpc.open.count"));
    }

    #[test]
    fn metrics_json_preserves_exact_u64_counters() {
        use std::io::{Read as _, Write as _};
        // Counters near u64::MAX must survive the whole publication
        // path — snapshot → JSON render → wire → parse — without any
        // float rounding (2^64-1 is not representable as f64).
        let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(5))).unwrap();
        let mut r = report("edge");
        r.metrics.metrics.insert(
            "rpc.pwrite.bytes".into(),
            telemetry::MetricValue::Counter(u64::MAX),
        );
        cat.ingest(r);
        let mut s = TcpStream::connect(cat.tcp_addr()).unwrap();
        s.write_all(b"metrics-json\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        assert!(
            body.contains(&u64::MAX.to_string()),
            "digits not verbatim in {body}"
        );
        let parsed = telemetry::json::Value::parse(body.trim()).expect("valid JSON");
        let entry = match &parsed {
            telemetry::json::Value::Array(items) => &items[0],
            other => panic!("expected array, got {other:?}"),
        };
        let counter = entry
            .get("metrics")
            .and_then(|m| m.get("rpc.pwrite.bytes"))
            .expect("counter present");
        // Counters encode as {"counter":N}; demand the exact value.
        let value = counter.get("counter").and_then(|v| v.as_u64());
        assert_eq!(value, Some(u64::MAX));
    }

    #[test]
    fn multiple_catalogs_are_independent() {
        let cat1 = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(5))).unwrap();
        let cat2 = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(5))).unwrap();
        cat1.ingest(report("only-in-1"));
        assert_eq!(cat1.listing().len(), 1);
        assert!(cat2.listing().is_empty());
    }
}

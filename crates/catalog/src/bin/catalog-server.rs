//! `catalog-server` — run a TSS catalog.
//!
//! ```text
//! catalog-server [--udp-port N] [--tcp-port N] [--expiry SECS]
//! ```
//!
//! File servers report over UDP; clients query the listing over TCP
//! (send `text\n` or `json\n`, read the body).

use std::time::Duration;

use catalog::{CatalogConfig, CatalogServer};

fn usage() -> ! {
    eprintln!("usage: catalog-server [--udp-port N] [--tcp-port N] [--expiry SECS]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut udp_port = 9097u16;
    let mut tcp_port = 9097u16;
    let mut expiry = Duration::from_secs(900);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--udp-port" => udp_port = val().parse().unwrap_or_else(|_| usage()),
            "--tcp-port" => tcp_port = val().parse().unwrap_or_else(|_| usage()),
            "--expiry" => expiry = Duration::from_secs(val().parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    let config = CatalogConfig {
        bind_udp: format!("0.0.0.0:{udp_port}").parse().expect("bind"),
        bind_tcp: format!("0.0.0.0:{tcp_port}").parse().expect("bind"),
        expiry,
        clock: chirp_proto::Clock::wall(),
    };
    match CatalogServer::start(config) {
        Ok(server) => {
            println!(
                "catalog-server: reports on udp {}, queries on tcp {}",
                server.udp_addr(),
                server.tcp_addr()
            );
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("catalog-server: {e}");
            std::process::exit(1);
        }
    }
}

//! The TSS catalog server.
//!
//! Each file server periodically reports itself (owner, address,
//! capacity, top-level ACL, activity) to one or more catalogs over
//! UDP. The catalog publishes the aggregate listing over TCP in both a
//! ClassAd-style text format and JSON, and expires servers that stop
//! reporting.
//!
//! All catalog data is necessarily stale: anything a file server
//! reported may have changed between a catalog query and a query to
//! the server itself, so abstractions that discover storage through
//! the catalog must be prepared to revisit any assumption (paper §4).
//!
//! A deployment may run several catalogs covering different, possibly
//! overlapping, subsets of servers — for fault tolerance, load
//! sharing, or policy (e.g. a private rendezvous catalog for transient
//! servers submitted to a batch system).

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod report;
pub mod server;

pub use client::query;
pub use report::ServerReport;
pub use server::{render_listing, CatalogConfig, CatalogServer};

//! JSON for catalog listings.
//!
//! The value tree lives in [`telemetry::json`] so metric snapshots
//! and catalog listings share one representation (and one parser —
//! tools like `tss-top` and the end-to-end tests read listings back).
//! This module re-exports it under the catalog's historical path.

pub use telemetry::json::Value;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listings_render_compactly() {
        let v = Value::Object(vec![
            (
                "servers".into(),
                Value::Array(vec![Value::from("a"), Value::from("b")]),
            ),
            ("count".into(), Value::Uint(2)),
        ]);
        assert_eq!(v.render(), "{\"servers\":[\"a\",\"b\"],\"count\":2}");
    }

    #[test]
    fn large_u64s_do_not_lose_integrality() {
        assert_eq!(Value::Uint(250_000_000_000).render(), "250000000000");
        assert_eq!(Value::Uint(u64::MAX).render(), u64::MAX.to_string());
    }
}

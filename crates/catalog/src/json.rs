//! A minimal JSON *emitter* for catalog listings.
//!
//! The catalog publishes JSON for external tools; nothing in the
//! workspace parses JSON back, so an output-only value type keeps the
//! dependency set flat (see DESIGN.md §5).

/// A JSON value tree for rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Numbers render like JavaScript: integral values without a
    /// fractional part.
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered object (keys render in the order given).
    Object(Vec<(String, Value)>),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl Value {
    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Value::Null.render(), "null");
        assert_eq!(Value::Bool(true).render(), "true");
        assert_eq!(Value::Number(42.0).render(), "42");
        assert_eq!(Value::Number(1.5).render(), "1.5");
        assert_eq!(Value::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Value::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Value::from("\u{01}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_nest() {
        let v = Value::Object(vec![
            (
                "servers".into(),
                Value::Array(vec![Value::from("a"), Value::from("b")]),
            ),
            ("count".into(), Value::Number(2.0)),
        ]);
        assert_eq!(v.render(), "{\"servers\":[\"a\",\"b\"],\"count\":2}");
    }

    #[test]
    fn large_u64s_do_not_lose_integrality() {
        // 250 GB fits comfortably in f64's exact-integer range.
        assert_eq!(Value::Number(250_000_000_000.0).render(), "250000000000");
    }
}

//! End-to-end observability: a real file server performs RPCs for a
//! real client, folds its telemetry into the periodic UDP catalog
//! report, and a real catalog republishes it over TCP in both the
//! ClassAd text and JSON metrics formats — the full pipeline the
//! ISSUE's acceptance gate names.

use std::time::Duration;

use catalog::client::{query_metrics, query_metrics_json};
use catalog::{CatalogConfig, CatalogServer, ServerReport};
use chirp_client::{AuthMethod, Connection};
use chirp_proto::testutil::TempDir;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use telemetry::json::Value;
use telemetry::MetricsSnapshot;

const T: Duration = Duration::from_secs(5);

/// Poll the catalog until a predicate over the listing holds.
fn wait_for(cat: &CatalogServer, pred: impl Fn(&[ServerReport]) -> bool) -> Vec<ServerReport> {
    for _ in 0..400 {
        let listing = cat.listing();
        if pred(&listing) {
            return listing;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "catalog never satisfied the predicate; listing: {:?}",
        cat.listing()
    );
}

#[test]
fn server_metrics_flow_through_the_catalog() {
    let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(30))).unwrap();
    let dir = TempDir::new();
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap())
        .with_catalog(cat.udp_addr(), Duration::from_millis(50));
    let server = FileServer::start(cfg).unwrap();

    // Drive real RPC traffic through the server.
    let mut conn = Connection::connect(server.addr(), T).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    conn.putfile("/hello", 0o644, b"tactical storage").unwrap();
    assert_eq!(conn.getfile("/hello").unwrap(), b"tactical storage");
    for _ in 0..5 {
        conn.stat("/hello").unwrap();
    }
    drop(conn);

    // Wait until a report carrying those RPCs lands in the catalog
    // (reports race with the RPCs above, so wait for the counters,
    // not merely for presence).
    let listing = wait_for(&cat, |l| {
        l.first()
            .map(|r| {
                r.metrics.counter("rpc.stat.count").unwrap_or(0) >= 5
                    && r.metrics.counter("rpc.putfile.count").unwrap_or(0) >= 1
            })
            .unwrap_or(false)
    });
    let report = &listing[0];

    // The structured snapshot made it through the UDP packet intact.
    assert!(report.metrics.counter("rpc.getfile.count").unwrap() >= 1);
    let lat = report
        .metrics
        .histogram("rpc.latency_ns")
        .expect("latency histogram");
    assert!(lat.count >= 8, "every RPC lands in the latency histogram");
    assert!(lat.quantile(0.99) >= lat.quantile(0.50));
    assert!(
        report.metrics.counter_sum("rpc.") > 0,
        "per-op counters present"
    );
    assert!(report.metrics.counter("rpc.bytes_out").unwrap() >= 16);

    // ClassAd metrics view: per-metric lines plus derived quantiles.
    let text = query_metrics(cat.tcp_addr(), T).unwrap();
    assert!(text.contains("metric.rpc.stat.count c"));
    let p99_line = text
        .lines()
        .find(|l| l.starts_with("metric.rpc.latency_ns.p99 "))
        .expect("p99 line in ClassAd metrics");
    let p99: u64 = p99_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(p99 > 0, "p99 must be a positive latency");
    assert!(text.contains("metric.rpc.latency_ns.p50 "));

    // JSON metrics view: an array of per-server objects whose
    // histogram members carry p50/p99 and still decode back into a
    // MetricsSnapshot equal to what the server published.
    let json = query_metrics_json(cat.tcp_addr(), T).unwrap();
    let parsed = Value::parse(json.trim()).expect("valid JSON");
    let servers = parsed.as_array().expect("array of servers");
    assert_eq!(servers.len(), 1);
    let entry = &servers[0];
    assert!(entry.get("name").unwrap().as_str().is_some());
    let hist = entry
        .get("metrics")
        .unwrap()
        .get("rpc.latency_ns")
        .expect("latency histogram in JSON");
    assert!(hist.get("p50").unwrap().as_u64().unwrap() > 0);
    assert!(hist.get("p99").unwrap().as_u64().unwrap() > 0);
    let snap = MetricsSnapshot::from_json_value(entry.get("metrics").unwrap()).expect("decodes");
    assert_eq!(&snap, &report.metrics, "JSON round-trips the snapshot");
}

#[test]
fn acl_denials_are_counted_and_published() {
    let cat = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(30))).unwrap();
    let dir = TempDir::new();
    // Read/list only: writes draw NotAuthorized.
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rl").unwrap())
        .with_catalog(cat.udp_addr(), Duration::from_millis(50));
    let server = FileServer::start(cfg).unwrap();

    let mut conn = Connection::connect(server.addr(), T).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    for _ in 0..3 {
        conn.mkdir("/nope", 0o755).unwrap_err();
    }
    drop(conn);

    let listing = wait_for(&cat, |l| {
        l.first()
            .map(|r| r.metrics.counter("rpc.acl_denied").unwrap_or(0) >= 3)
            .unwrap_or(false)
    });
    let m = &listing[0].metrics;
    assert!(m.counter("rpc.errors").unwrap() >= 3);
    assert_eq!(m.counter("rpc.mkdir.count"), Some(3));
}

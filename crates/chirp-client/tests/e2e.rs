//! End-to-end tests: a real client against a real file server over
//! loopback TCP, exercising authentication, the full RPC surface, ACL
//! enforcement with the reserve right, and disconnect semantics.

use std::time::Duration;

use chirp_client::{AuthMethod, Connection};
use chirp_proto::testutil::TempDir;
use chirp_proto::{ChirpError, OpenFlags};
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(5);

/// A server whose root grants `rwlda` to every `hostname:` subject, so
/// loopback clients have full (non-admin-free) access.
fn open_server(root: &std::path::Path) -> FileServer {
    let cfg = ServerConfig::localhost(root, "owner")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    FileServer::start(cfg).unwrap()
}

fn connect(server: &FileServer) -> Connection {
    let mut conn = Connection::connect(server.addr(), TIMEOUT).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    conn
}

#[test]
fn deploy_connect_authenticate() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    assert_eq!(conn.whoami().unwrap(), "hostname:localhost");
    assert_eq!(conn.subject(), Some("hostname:localhost"));
}

#[test]
fn requests_require_authentication() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = Connection::connect(server.addr(), TIMEOUT).unwrap();
    assert_eq!(conn.stat("/").unwrap_err(), ChirpError::NotAuthenticated);
    assert_eq!(conn.getdir("/").unwrap_err(), ChirpError::NotAuthenticated);
}

#[test]
fn open_write_read_close() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    let fd = conn
        .open(
            "/hello.txt",
            OpenFlags::read_write() | OpenFlags::CREATE,
            0o644,
        )
        .unwrap();
    assert_eq!(conn.pwrite(fd, b"hello tactical storage", 0).unwrap(), 22);
    let data = conn.pread(fd, 5, 6).unwrap();
    assert_eq!(&data, b"tacti");
    let st = conn.fstat(fd).unwrap();
    assert_eq!(st.size, 22);
    conn.close(fd).unwrap();
    assert_eq!(conn.close(fd).unwrap_err(), ChirpError::BadFd);
    // Data is stored without transformation in the host filesystem
    // (recursive abstraction).
    let on_disk = std::fs::read(dir.path().join("hello.txt")).unwrap();
    assert_eq!(on_disk, b"hello tactical storage");
}

#[test]
fn pread_at_eof_is_short() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    conn.putfile("/f", 0o644, b"12345").unwrap();
    let fd = conn.open("/f", OpenFlags::READ, 0).unwrap();
    assert_eq!(conn.pread(fd, 100, 0).unwrap(), b"12345");
    assert!(conn.pread(fd, 100, 5).unwrap().is_empty());
    assert_eq!(conn.pread(fd, 3, 4).unwrap(), b"5");
}

#[test]
fn exclusive_create_detects_collision() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    let flags = OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE;
    let fd = conn.open("/unique", flags, 0o644).unwrap();
    conn.close(fd).unwrap();
    assert_eq!(
        conn.open("/unique", flags, 0o644).unwrap_err(),
        ChirpError::AlreadyExists
    );
}

#[test]
fn namespace_operations() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    conn.mkdir("/figures", 0o755).unwrap();
    conn.putfile("/figures/a.eps", 0o644, b"%!PS").unwrap();
    conn.putfile("/paper.txt", 0o644, b"abstract").unwrap();
    let mut names = conn.getdir("/").unwrap();
    names.sort();
    assert_eq!(names, vec!["figures", "paper.txt"]);
    // Rename is atomic within the server.
    conn.rename("/paper.txt", "/figures/paper.txt").unwrap();
    assert_eq!(conn.stat("/paper.txt").unwrap_err(), ChirpError::NotFound);
    assert_eq!(conn.stat("/figures/paper.txt").unwrap().size, 8);
    // rmdir refuses non-empty directories.
    assert_eq!(conn.rmdir("/figures").unwrap_err(), ChirpError::NotEmpty);
    conn.unlink("/figures/a.eps").unwrap();
    conn.unlink("/figures/paper.txt").unwrap();
    conn.rmdir("/figures").unwrap();
    assert_eq!(conn.stat("/figures").unwrap_err(), ChirpError::NotFound);
}

#[test]
fn getfile_putfile_round_trip_large() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    // Cross the 64 KiB streaming buffer several times.
    let data: Vec<u8> = (0..300_000u32).map(|i| (i * 31 % 251) as u8).collect();
    conn.putfile("/big.bin", 0o644, &data).unwrap();
    assert_eq!(conn.getfile("/big.bin").unwrap(), data);
    assert_eq!(
        conn.checksum("/big.bin").unwrap(),
        chirp_proto::crc64(&data)
    );
}

#[test]
fn statfs_tracks_usage() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    let before = conn.statfs().unwrap();
    conn.putfile("/blob", 0o644, &vec![7u8; 10_000]).unwrap();
    let after = conn.statfs().unwrap();
    assert_eq!(before.total_bytes, after.total_bytes);
    assert!(before.free_bytes >= after.free_bytes + 10_000);
}

#[test]
fn truncate_and_utime() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    conn.putfile("/t", 0o644, b"0123456789").unwrap();
    conn.truncate("/t", 4).unwrap();
    assert_eq!(conn.stat("/t").unwrap().size, 4);
    conn.utime("/t", 1_120_000_000).unwrap();
    assert_eq!(conn.stat("/t").unwrap().mtime, 1_120_000_000);
}

#[test]
fn key_auth_and_acl_enforcement() {
    let dir = TempDir::new();
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(
            Acl::parse(
                "globus:/O=NotreDame/* rwl\n\
                 hostname:* rl\n",
            )
            .unwrap(),
        )
        .with_key("globus", "/O=NotreDame/CN=alice", b"alice-key");
    let server = FileServer::start(cfg).unwrap();

    // Alice (grid credential) can write.
    let mut alice = Connection::connect(server.addr(), TIMEOUT).unwrap();
    let subject = alice
        .authenticate(&[AuthMethod::key("globus", "", b"alice-key")])
        .unwrap();
    assert_eq!(subject, "globus:/O=NotreDame/CN=alice");
    alice.putfile("/data", 0o644, b"payload").unwrap();

    // A hostname subject can read and list but not write or delete.
    let mut visitor = Connection::connect(server.addr(), TIMEOUT).unwrap();
    visitor.authenticate(&[AuthMethod::Hostname]).unwrap();
    assert_eq!(visitor.getfile("/data").unwrap(), b"payload");
    assert_eq!(
        visitor.putfile("/evil", 0o644, b"x").unwrap_err(),
        ChirpError::NotAuthorized
    );
    assert_eq!(
        visitor.unlink("/data").unwrap_err(),
        ChirpError::NotAuthorized
    );
    // Neither subject holds A, so neither may edit the ACL.
    assert_eq!(
        visitor.setacl("/", "hostname:*", "rwla").unwrap_err(),
        ChirpError::NotAuthorized
    );
    assert_eq!(
        alice.setacl("/", "hostname:*", "rwla").unwrap_err(),
        ChirpError::NotAuthorized
    );
}

#[test]
fn wrong_key_fails_then_fallback_succeeds() {
    let dir = TempDir::new();
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rl").unwrap())
        .with_key("globus", "/O=ND/CN=a", b"right-key");
    let server = FileServer::start(cfg).unwrap();
    let mut conn = Connection::connect(server.addr(), TIMEOUT).unwrap();
    // The paper: a client may attempt any number of methods in any
    // order; the first success wins.
    let subject = conn
        .authenticate(&[
            AuthMethod::key("globus", "", b"wrong-key"),
            AuthMethod::Hostname,
        ])
        .unwrap();
    assert_eq!(subject, "hostname:localhost");
}

#[test]
fn only_one_credential_set_per_session() {
    let dir = TempDir::new();
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rl").unwrap())
        .with_key("globus", "/O=ND/CN=a", b"some-key");
    let server = FileServer::start(cfg).unwrap();
    let mut conn = Connection::connect(server.addr(), TIMEOUT).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    // A second authentication on the same session is refused.
    assert!(conn
        .authenticate(&[AuthMethod::key("globus", "", b"some-key")])
        .is_err());
    assert_eq!(conn.whoami().unwrap(), "hostname:localhost");
}

#[test]
fn reserve_right_creates_private_namespace() {
    let dir = TempDir::new();
    // The paper's §4 scenario: visitors hold only v(rwl) at the root.
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "v(rwl)").unwrap());
    let server = FileServer::start(cfg).unwrap();
    let mut conn = Connection::connect(server.addr(), TIMEOUT).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();

    // No direct write right at the root...
    assert_eq!(
        conn.putfile("/direct", 0o644, b"x").unwrap_err(),
        ChirpError::NotAuthorized
    );
    // ...but mkdir under the reserve right creates a private space.
    conn.mkdir("/backup", 0o755).unwrap();
    conn.putfile("/backup/data", 0o644, b"mine").unwrap();
    let acl = conn.getacl("/backup").unwrap();
    assert_eq!(acl.trim(), "hostname:localhost rwl");
    // The A right was omitted from v(rwl), so the user cannot extend
    // access to others.
    assert_eq!(
        conn.setacl("/backup", "hostname:friend", "rl").unwrap_err(),
        ChirpError::NotAuthorized
    );
}

#[test]
fn reserve_with_admin_allows_extending_access() {
    let dir = TempDir::new();
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("globus:/O=ND/*", "v(rwla)").unwrap())
        .with_key("globus", "/O=ND/CN=alice", b"alice-key")
        .with_key("globus", "/O=ND/CN=bob", b"bob-key");
    let server = FileServer::start(cfg).unwrap();

    let mut alice = Connection::connect(server.addr(), TIMEOUT).unwrap();
    alice
        .authenticate(&[AuthMethod::key("globus", "", b"alice-key")])
        .unwrap();
    alice.mkdir("/shared", 0o755).unwrap();
    // Alice holds A inside her reserved directory and can admit Bob.
    alice
        .setacl("/shared", "globus:/O=ND/CN=bob", "rwl")
        .unwrap();

    let mut bob = Connection::connect(server.addr(), TIMEOUT).unwrap();
    bob.authenticate(&[AuthMethod::key("globus", "", b"bob-key")])
        .unwrap();
    bob.putfile("/shared/from-bob", 0o644, b"hi").unwrap();
    assert_eq!(alice.getfile("/shared/from-bob").unwrap(), b"hi");
}

#[test]
fn owner_superuser_can_evict_data() {
    let dir = TempDir::new();
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "v(rwl)").unwrap())
        .with_key("admin", "owner", b"owner-key")
        .with_superuser("admin:owner");
    let server = FileServer::start(cfg).unwrap();

    let mut user = Connection::connect(server.addr(), TIMEOUT).unwrap();
    user.authenticate(&[AuthMethod::Hostname]).unwrap();
    user.mkdir("/private", 0o755).unwrap();
    user.putfile("/private/secret", 0o600, b"data").unwrap();

    // The owner retains access to all data and may evict it at will.
    let mut owner = Connection::connect(server.addr(), TIMEOUT).unwrap();
    owner
        .authenticate(&[AuthMethod::key("admin", "", b"owner-key")])
        .unwrap();
    assert_eq!(owner.getfile("/private/secret").unwrap(), b"data");
    owner.unlink("/private/secret").unwrap();
    assert_eq!(
        user.stat("/private/secret").unwrap_err(),
        ChirpError::NotFound
    );
}

#[test]
fn delete_right_allows_delete_but_not_write() {
    let dir = TempDir::new();
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::parse("hostname:* rld\nglobus:/O=ND/* rwl\n").unwrap())
        .with_key("globus", "/O=ND/CN=w", b"writer-key");
    let server = FileServer::start(cfg).unwrap();
    let mut writer = Connection::connect(server.addr(), TIMEOUT).unwrap();
    writer
        .authenticate(&[AuthMethod::key("globus", "", b"writer-key")])
        .unwrap();
    writer.putfile("/doomed", 0o644, b"x").unwrap();

    let mut janitor = Connection::connect(server.addr(), TIMEOUT).unwrap();
    janitor.authenticate(&[AuthMethod::Hostname]).unwrap();
    assert_eq!(
        janitor.putfile("/new", 0o644, b"x").unwrap_err(),
        ChirpError::NotAuthorized
    );
    janitor.unlink("/doomed").unwrap();
}

#[test]
fn acl_file_is_invisible_and_protected() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    conn.putfile("/visible", 0o644, b"x").unwrap();
    let names = conn.getdir("/").unwrap();
    assert!(!names.iter().any(|n| n.contains("__acl")));
    assert_eq!(
        conn.getfile("/.__acl").unwrap_err(),
        ChirpError::NotAuthorized
    );
    assert_eq!(
        conn.unlink("/.__acl").unwrap_err(),
        ChirpError::NotAuthorized
    );
}

#[test]
fn jail_confines_path_traversal() {
    let dir = TempDir::new();
    // Put a sentinel *outside* the export root.
    std::fs::write(dir.path().join("outside.txt"), b"secret").unwrap();
    let root = dir.subdir("export");
    let server = open_server(&root);
    let mut conn = connect(&server);
    assert_eq!(
        conn.getfile("/../outside.txt").unwrap_err(),
        ChirpError::NotFound,
        "`..` must resolve inside the jail, not escape it"
    );
}

#[test]
fn disconnect_frees_server_state() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    let fd = conn
        .open("/f", OpenFlags::WRITE | OpenFlags::CREATE, 0o644)
        .unwrap();
    conn.pwrite(fd, b"x", 0).unwrap();
    drop(conn);
    // The server notices the disconnect and frees the session.
    for _ in 0..100 {
        if server.active_connections() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.active_connections(), 0);
    // A new connection gets a fresh descriptor space.
    let mut conn2 = connect(&server);
    let fd2 = conn2.open("/f", OpenFlags::READ, 0).unwrap();
    assert_eq!(fd2, 0, "descriptors are connection-scoped");
}

#[test]
fn server_shutdown_breaks_clients_cleanly() {
    let dir = TempDir::new();
    let mut server = open_server(dir.path());
    let mut conn = connect(&server);
    conn.putfile("/f", 0o644, b"x").unwrap();
    server.shutdown();
    // A request already in flight when the flag flips may still be
    // served; within a bounded number of calls the connection must
    // fail with a transport error, not a hang.
    let mut err = None;
    for _ in 0..10 {
        match conn.stat("/f") {
            Ok(_) => continue,
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    let err = err.expect("connection must break after shutdown");
    assert!(
        matches!(err, ChirpError::Disconnected | ChirpError::Timeout),
        "got {err:?}"
    );
    assert!(conn.is_broken());
    // Every further call fails fast.
    assert_eq!(conn.stat("/f").unwrap_err(), ChirpError::Disconnected);
}

#[test]
fn unix_auth_end_to_end() {
    let dir = TempDir::new();
    let challenge = dir.subdir("challenge");
    let mut cfg = ServerConfig::localhost(dir.subdir("root"), "owner")
        .with_root_acl(Acl::single("unix:*", "rwl").unwrap());
    cfg.unix_challenge_dir = Some(challenge);
    let server = FileServer::start(cfg).unwrap();
    let mut conn = Connection::connect(server.addr(), TIMEOUT).unwrap();
    let subject = conn.authenticate(&[AuthMethod::Unix]).unwrap();
    assert!(subject.starts_with("unix:uid"), "got {subject}");
    conn.putfile("/works", 0o644, b"1").unwrap();
}

#[test]
fn concurrent_clients_share_one_server() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let addr = server.addr();
    let mut handles = Vec::new();
    for i in 0..8 {
        handles.push(std::thread::spawn(move || {
            let mut conn = Connection::connect(addr, TIMEOUT).unwrap();
            conn.authenticate(&[AuthMethod::Hostname]).unwrap();
            let path = format!("/client-{i}");
            let data = vec![i as u8; 10_000];
            conn.putfile(&path, 0o644, &data).unwrap();
            assert_eq!(conn.getfile(&path).unwrap(), data);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let names = {
        let mut conn = connect(&server);
        conn.getdir("/").unwrap()
    };
    assert_eq!(names.len(), 8);
    assert!(server.stats().snapshot().connections >= 9);
}

#[test]
fn thirdput_moves_data_server_to_server() {
    let dir_a = TempDir::new();
    let dir_b = TempDir::new();
    let server_a = open_server(dir_a.path());
    let server_b = open_server(dir_b.path());
    let mut conn = connect(&server_a);
    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    conn.putfile("/src.bin", 0o644, &data).unwrap();

    let moved = conn
        .thirdput("/src.bin", &server_b.endpoint(), "/dst.bin")
        .unwrap();
    assert_eq!(moved, data.len() as u64);
    // The bytes really are on B, placed there by A, not by us.
    assert_eq!(std::fs::read(dir_b.path().join("dst.bin")).unwrap(), data);
    let mut conn_b = connect(&server_b);
    assert_eq!(
        conn_b.checksum("/dst.bin").unwrap(),
        chirp_proto::crc64(&data)
    );
}

#[test]
fn thirdput_respects_both_sides_acls() {
    // Reading the source requires R here; creating on the target is
    // the target's ACL decision about the *source server's* identity.
    let dir_a = TempDir::new();
    let dir_b = TempDir::new();
    let server_a = open_server(dir_a.path());
    // B admits nobody.
    let server_b = FileServer::start(
        ServerConfig::localhost(dir_b.path(), "owner")
            .with_root_acl(Acl::single("globus:/O=Nowhere/*", "rwl").unwrap()),
    )
    .unwrap();
    let mut conn = connect(&server_a);
    conn.putfile("/src.bin", 0o644, b"payload").unwrap();
    let err = conn
        .thirdput("/src.bin", &server_b.endpoint(), "/dst.bin")
        .unwrap_err();
    assert_eq!(err, ChirpError::NotAuthorized);
    // Nonexistent source fails with NotFound before any connection.
    assert_eq!(
        conn.thirdput("/nope", &server_b.endpoint(), "/x")
            .unwrap_err(),
        ChirpError::NotFound
    );
}

#[test]
fn getlongdir_lists_names_with_attributes_in_one_rpc() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = connect(&server);
    conn.mkdir("/sub", 0o755).unwrap();
    conn.putfile("/small", 0o644, b"abc").unwrap();
    conn.putfile("/large", 0o644, &vec![0u8; 10_000]).unwrap();
    let before = server.stats().snapshot().requests;
    let mut listing = conn.getlongdir("/").unwrap();
    let after = server.stats().snapshot().requests;
    assert_eq!(after - before, 1, "one RPC for names + attributes");
    listing.sort_by(|a, b| a.0.cmp(&b.0));
    let names: Vec<&str> = listing.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["large", "small", "sub"]);
    assert_eq!(listing[0].1.size, 10_000);
    assert_eq!(listing[1].1.size, 3);
    assert!(listing[2].1.is_dir());
    // The ACL metadata stays invisible here too.
    assert!(!names.iter().any(|n| n.contains("__acl")));
}

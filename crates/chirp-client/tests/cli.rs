//! The `chirp` command-line tool, driven as a real subprocess against
//! a live file server.

use std::process::Command;

use chirp_proto::testutil::TempDir;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};

fn chirp(addr: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_chirp"))
        .arg(addr)
        .args(args)
        .output()
        .expect("run chirp binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn open_server(root: &std::path::Path) -> FileServer {
    FileServer::start(
        ServerConfig::localhost(root, "cli-test")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
    )
    .unwrap()
}

#[test]
fn cli_round_trip() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let addr = server.endpoint();
    let work = TempDir::new();
    let local = work.path().join("in.txt");
    std::fs::write(&local, b"via the cli").unwrap();

    let (ok, out, err) = chirp(&addr, &["whoami"]);
    assert!(ok, "{err}");
    assert_eq!(out.trim(), "hostname:localhost");

    let (ok, _, err) = chirp(&addr, &["put", local.to_str().unwrap(), "/up.txt"]);
    assert!(ok, "{err}");

    let (ok, out, _) = chirp(&addr, &["ls"]);
    assert!(ok);
    assert_eq!(out.trim(), "up.txt");

    let (ok, out, _) = chirp(&addr, &["cat", "/up.txt"]);
    assert!(ok);
    assert_eq!(out, "via the cli");

    let (ok, out, _) = chirp(&addr, &["stat", "/up.txt"]);
    assert!(ok);
    assert!(out.contains("size 11"), "{out}");

    let down = work.path().join("out.txt");
    let (ok, _, _) = chirp(&addr, &["get", "/up.txt", down.to_str().unwrap()]);
    assert!(ok);
    assert_eq!(std::fs::read(&down).unwrap(), b"via the cli");

    let (ok, _, _) = chirp(&addr, &["mkdir", "/d"]);
    assert!(ok);
    let (ok, _, _) = chirp(&addr, &["mv", "/up.txt", "/d/moved.txt"]);
    assert!(ok);
    let (ok, out, _) = chirp(&addr, &["ls", "/d"]);
    assert!(ok);
    assert_eq!(out.trim(), "moved.txt");

    let (ok, _, _) = chirp(&addr, &["rm", "/d/moved.txt"]);
    assert!(ok);
    let (ok, _, _) = chirp(&addr, &["rmdir", "/d"]);
    assert!(ok);
}

#[test]
fn cli_acl_management_and_keys() {
    let dir = TempDir::new();
    let server = FileServer::start(
        ServerConfig::localhost(dir.path(), "cli-test")
            .with_root_acl(Acl::single("admin:root", "rwlda").unwrap())
            .with_key("admin", "root", b"topsecret"),
    )
    .unwrap();
    let addr = server.endpoint();

    // Unauthorized subject is refused.
    let (ok, _, err) = chirp(&addr, &["ls"]);
    assert!(!ok);
    assert!(err.contains("not authorized"), "{err}");

    // Key auth works and can grant hostname visitors access.
    let (ok, _, err) = chirp(
        &addr,
        &[
            "--key",
            "admin:root:topsecret",
            "setacl",
            "/",
            "hostname:*",
            "rl",
        ],
    );
    assert!(ok, "{err}");
    let (ok, out, _) = chirp(&addr, &["--key", "admin:root:topsecret", "getacl", "/"]);
    assert!(ok);
    assert!(out.contains("hostname:* rl"), "{out}");
    // Now the plain visitor can list.
    let (ok, _, _) = chirp(&addr, &["ls"]);
    assert!(ok);
}

#[test]
fn cli_thirdput_between_two_servers() {
    let dir_a = TempDir::new();
    let dir_b = TempDir::new();
    let a = open_server(dir_a.path());
    let b = open_server(dir_b.path());
    let work = TempDir::new();
    let local = work.path().join("payload");
    std::fs::write(&local, vec![9u8; 5000]).unwrap();

    let (ok, _, err) = chirp(&a.endpoint(), &["put", local.to_str().unwrap(), "/src"]);
    assert!(ok, "{err}");
    let (ok, out, err) = chirp(&a.endpoint(), &["thirdput", "/src", &b.endpoint(), "/dst"]);
    assert!(ok, "{err}");
    assert_eq!(out.trim(), "5000 bytes");
    assert_eq!(
        std::fs::read(dir_b.path().join("dst")).unwrap(),
        vec![9u8; 5000]
    );
}

#[test]
fn cli_reports_errors_with_nonzero_exit() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let (ok, _, err) = chirp(&server.endpoint(), &["cat", "/missing"]);
    assert!(!ok);
    assert!(err.contains("not found"), "{err}");
    let (ok, _, err) = chirp(&server.endpoint(), &["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
}

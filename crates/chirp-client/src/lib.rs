//! Blocking Chirp client library.
//!
//! Mirrors the RPC interface from §4 of the paper:
//!
//! ```text
//! conn = chirp_connect( host, port, timeout );
//! chirp_open   ( conn, path, flags, mode, timeout );
//! chirp_pread  ( conn, fd, data, length, off, timeout );
//! chirp_pwrite ( conn, fd, data, length, off, timeout );
//! chirp_close  ( conn, fd, timeout );
//! chirp_stat   ( conn, path, statbuf, timeout );
//! chirp_unlink ( conn, path, timeout );
//! chirp_rename ( conn, path, newpath, timeout );
//! ```
//!
//! A [`Connection`] is a single authenticated TCP session. Descriptors
//! are only valid for the life of the connection: if it drops, the
//! server closes everything, and recovery (re-connect, re-open,
//! inode verification) is the *adapter's* job in `tss-core`, not the
//! client library's.

#![warn(missing_docs)]

pub mod conn;

pub use conn::{AuthMethod, ConnPipeline, Connection};

pub use chirp_proto::{ChirpError, ChirpResult, OpenFlags, StatBuf, StatFs};

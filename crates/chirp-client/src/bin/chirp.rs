//! `chirp` — command-line client for Chirp file servers.
//!
//! ```text
//! chirp HOST:PORT [auth options] COMMAND [ARGS]
//!
//! commands:
//!   whoami                  show the granted subject
//!   ls PATH                 list a directory
//!   stat PATH               show file attributes
//!   cat PATH                print a file to stdout
//!   put LOCAL REMOTE        upload a file
//!   get REMOTE LOCAL        download a file
//!   rm PATH                 remove a file
//!   mv FROM TO              rename within the server
//!   mkdir PATH / rmdir PATH
//!   checksum PATH           server-side CRC-64
//!   statfs                  storage totals
//!   getacl PATH             show a directory ACL
//!   setacl PATH SUBJ RIGHTS grant/replace/revoke ('' rights = revoke)
//!   thirdput PATH TARGET TPATH  server-to-server copy
//!
//! auth options (tried in order given; default: hostname):
//!   --hostname  --unix  --key METHOD:SUBJECT:KEY
//! ```

use std::io::Write;
use std::time::Duration;

use chirp_client::{AuthMethod, Connection};

fn usage() -> ! {
    eprintln!("usage: chirp HOST:PORT [--hostname|--unix|--key M:S:KEY]... COMMAND [ARGS]");
    eprintln!("run with --help for the command list");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{}", HELP);
        return;
    }
    let mut it = args.into_iter();
    let Some(addr) = it.next() else { usage() };
    let mut methods: Vec<AuthMethod> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--hostname" => methods.push(AuthMethod::Hostname),
            "--unix" => methods.push(AuthMethod::Unix),
            "--key" => {
                let Some(spec) = it.next() else { usage() };
                let mut parts = spec.splitn(3, ':');
                let (Some(m), Some(s), Some(key)) = (parts.next(), parts.next(), parts.next())
                else {
                    usage()
                };
                methods.push(AuthMethod::key(m, s, key.as_bytes()));
            }
            _ => {
                rest.push(arg);
                rest.extend(it.by_ref());
            }
        }
    }
    if methods.is_empty() {
        methods.push(AuthMethod::Hostname);
    }
    let (Some(command), args) = (rest.first().cloned(), &rest[1.min(rest.len())..]) else {
        usage()
    };

    if let Err(e) = run(&addr, &methods, &command, args) {
        eprintln!("chirp: {e}");
        std::process::exit(1);
    }
}

fn run(
    addr: &str,
    methods: &[AuthMethod],
    command: &str,
    args: &[String],
) -> Result<(), Box<dyn std::error::Error>> {
    let mut conn = Connection::connect(addr, Duration::from_secs(30))?;
    conn.authenticate(methods)?;
    let arg = |i: usize| -> Result<&str, Box<dyn std::error::Error>> {
        args.get(i)
            .map(String::as_str)
            .ok_or_else(|| "missing argument (see --help)".into())
    };
    match command {
        "whoami" => println!("{}", conn.whoami()?),
        "ls" => {
            let (long, path) = match args.first().map(String::as_str) {
                Some("-l") => (true, args.get(1).map(String::as_str).unwrap_or("/")),
                Some(p) => (false, p),
                None => (false, "/"),
            };
            if long {
                for (name, st) in conn.getlongdir(path)? {
                    let kind = if st.is_dir() { 'd' } else { '-' };
                    println!("{kind} {:>12} {:>10} {}", st.size, st.mtime, name);
                }
            } else {
                for name in conn.getdir(path)? {
                    println!("{name}");
                }
            }
        }
        "stat" => {
            let st = conn.stat(arg(0)?)?;
            println!(
                "type {:?} size {} mode {:o} inode {} mtime {}",
                st.file_type, st.size, st.mode, st.inode, st.mtime
            );
        }
        "cat" => {
            let mut out = std::io::stdout().lock();
            conn.getfile_to(arg(0)?, &mut out)?;
            out.flush()?;
        }
        "put" => {
            let mut f = std::fs::File::open(arg(0)?)?;
            let len = f.metadata()?.len();
            conn.putfile_from(arg(1)?, 0o644, len, &mut f)?;
            println!("{len} bytes");
        }
        "get" => {
            let mut f = std::fs::File::create(arg(1)?)?;
            let n = conn.getfile_to(arg(0)?, &mut f)?;
            println!("{n} bytes");
        }
        "rm" => conn.unlink(arg(0)?)?,
        "mv" => conn.rename(arg(0)?, arg(1)?)?,
        "mkdir" => conn.mkdir(arg(0)?, 0o755)?,
        "rmdir" => conn.rmdir(arg(0)?)?,
        "checksum" => println!("{:016x}", conn.checksum(arg(0)?)?),
        "statfs" => {
            let st = conn.statfs()?;
            println!("total {} free {}", st.total_bytes, st.free_bytes);
        }
        "getacl" => print!("{}", conn.getacl(arg(0)?)?),
        "setacl" => conn.setacl(
            arg(0)?,
            arg(1)?,
            args.get(2).map(String::as_str).unwrap_or(""),
        )?,
        "thirdput" => {
            let n = conn.thirdput(arg(0)?, arg(1)?, arg(2)?)?;
            println!("{n} bytes");
        }
        _ => return Err(format!("unknown command {command:?} (see --help)").into()),
    }
    Ok(())
}

const HELP: &str = "\
usage: chirp HOST:PORT [auth options] COMMAND [ARGS]

auth options (tried in order; default --hostname):
  --hostname                identify as the connecting host
  --unix                    filesystem challenge/response
  --key M:SUBJECT:KEY       challenge-response key credential (e.g. globus:...)

commands:
  whoami | ls [-l] [PATH] | stat PATH | cat PATH
  put LOCAL REMOTE | get REMOTE LOCAL
  rm PATH | mv FROM TO | mkdir PATH | rmdir PATH
  checksum PATH | statfs | getacl PATH | setacl PATH SUBJECT RIGHTS
  thirdput PATH TARGET_HOST:PORT TARGET_PATH";

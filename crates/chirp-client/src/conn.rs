//! The client connection: one TCP session, one subject, one RPC at a
//! time, file data interleaved on the same stream as control.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use chirp_proto::escape::unescape;
use chirp_proto::pipeline::{PipelinedConn, ReplyShape};
use chirp_proto::transport::{Dialer, Transport};
use chirp_proto::wire::{self, StatusLine};
use chirp_proto::{ChirpError, ChirpResult, OpenFlags, Request, StatBuf, StatFs};

/// A pipeline borrowed from a [`Connection`]'s buffered stream halves.
pub type ConnPipeline<'a> =
    PipelinedConn<'a, BufReader<Box<dyn Transport>>, BufWriter<Box<dyn Transport>>>;

/// An authentication method the client can offer, in the order given.
/// The first method the server accepts fixes the session subject.
#[derive(Clone)]
pub enum AuthMethod {
    /// Identify as the connecting host's name (server-resolved).
    Hostname,
    /// Filesystem challenge/response proving a shared local account
    /// namespace; claims the identity `uid<N>` of the calling process.
    Unix,
    /// Challenge–response under an arbitrary method label (`globus`,
    /// `kerberos`, ...) carrying a free-form subject name. The server
    /// issues a nonce; the client answers with an HMAC-SHA256 over the
    /// handshake transcript under a key registered with the server —
    /// the key itself never crosses the wire.
    Key {
        /// Method label, e.g. `globus`.
        method: String,
        /// Registered subject name, e.g. an X.509 DN. May be empty to
        /// accept whatever name the key is registered under.
        name: String,
        /// The secret key shared with the server's key ring.
        key: Vec<u8>,
    },
}

impl AuthMethod {
    /// Convenience constructor for key credentials.
    pub fn key(method: &str, name: &str, key: &[u8]) -> AuthMethod {
        AuthMethod::Key {
            method: method.to_string(),
            name: name.to_string(),
            key: key.to_vec(),
        }
    }
}

impl std::fmt::Debug for AuthMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthMethod::Hostname => f.write_str("Hostname"),
            AuthMethod::Unix => f.write_str("Unix"),
            AuthMethod::Key { method, name, key } => f
                .debug_struct("Key")
                .field("method", method)
                .field("name", name)
                .field("key_id", &chirp_proto::crypto::key_fingerprint(key))
                .finish(),
        }
    }
}

/// A connection to one Chirp file server.
pub struct Connection {
    reader: BufReader<Box<dyn Transport>>,
    writer: BufWriter<Box<dyn Transport>>,
    addr: SocketAddr,
    subject: Option<String>,
    /// Once a transport error occurs the stream framing is unknown;
    /// every further call fails fast with `Disconnected`.
    broken: bool,
}

impl Connection {
    /// Connect to `addr` (anything resolvable, e.g. `"127.0.0.1:9094"`)
    /// over TCP with `timeout` applied to the connect and to every
    /// subsequent read and write.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> ChirpResult<Connection> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ChirpError::from_io(&e))?
            .next()
            .ok_or(ChirpError::InvalidRequest)?;
        Connection::connect_via(&Dialer::tcp(), &addr.to_string(), timeout)
    }

    /// Connect to `endpoint` (a `host:port` string) through `dialer`,
    /// with `timeout` applied to the dial and to every subsequent read
    /// and write. This is how every layer that can run under the
    /// simulation harness opens its connections; [`Connection::connect`]
    /// is the TCP shorthand.
    pub fn connect_via(
        dialer: &Dialer,
        endpoint: &str,
        timeout: Duration,
    ) -> ChirpResult<Connection> {
        let stream = dialer
            .dial(endpoint, timeout)
            .map_err(|e| ChirpError::from_io(&e))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ChirpError::from_io(&e))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| ChirpError::from_io(&e))?;
        let addr = stream.peer_addr().map_err(|e| ChirpError::from_io(&e))?;
        let reader = BufReader::with_capacity(
            256 * 1024,
            stream.try_clone().map_err(|e| ChirpError::from_io(&e))?,
        );
        let writer = BufWriter::with_capacity(256 * 1024, stream);
        Ok(Connection {
            reader,
            writer,
            addr,
            subject: None,
            broken: false,
        })
    }

    /// Connect with retries: each attempt that fails with an error the
    /// `policy` classifies as retriable (refused, reset, timed out) is
    /// repeated after the policy's backoff, until the policy's attempt
    /// cap or deadline runs out. Fatal errors (unresolvable address)
    /// surface immediately. Used by CLIs and tests that want to ride
    /// out a server restart; the data-path recovery in `tss-core`
    /// carries its own loop so retries are counted in one place.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
        policy: &chirp_proto::RetryPolicy,
    ) -> ChirpResult<Connection> {
        let mut retry = policy.begin();
        loop {
            match Connection::connect(addr, timeout) {
                Ok(conn) => return Ok(conn),
                Err(e) => match retry.next_delay(e) {
                    Some(delay) => std::thread::sleep(delay),
                    None => return Err(e),
                },
            }
        }
    }

    /// The server address this connection is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The subject granted at authentication, if any.
    pub fn subject(&self) -> Option<&str> {
        self.subject.as_deref()
    }

    /// True once a transport failure has poisoned the connection.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    // ---- plumbing -------------------------------------------------------

    fn check_usable(&self) -> ChirpResult<()> {
        if self.broken {
            Err(ChirpError::Disconnected)
        } else {
            Ok(())
        }
    }

    fn send(&mut self, req: &Request) -> ChirpResult<()> {
        self.check_usable()?;
        let line = req.encode();
        let res = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.flush());
        if let Err(e) = res {
            self.broken = true;
            return Err(ChirpError::from_io(&e));
        }
        Ok(())
    }

    fn recv_status(&mut self) -> ChirpResult<StatusLine> {
        match wire::read_status(&mut self.reader) {
            Ok(s) => Ok(s),
            Err(e) => {
                if e.is_retryable() || e == ChirpError::Disconnected {
                    self.broken = true;
                }
                Err(e)
            }
        }
    }

    /// One round trip: send a request, read the status line.
    fn rpc(&mut self, req: &Request) -> ChirpResult<StatusLine> {
        self.send(req)?;
        self.recv_status()
    }

    fn read_body(&mut self, len: u64) -> ChirpResult<Vec<u8>> {
        match wire::read_payload(&mut self.reader, len) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }

    fn decode_word(words: &[String], idx: usize) -> ChirpResult<String> {
        let raw = words.get(idx).ok_or(ChirpError::InvalidRequest)?;
        let bytes = unescape(raw).ok_or(ChirpError::InvalidRequest)?;
        String::from_utf8(bytes).map_err(|_| ChirpError::InvalidRequest)
    }

    /// Run `f` with a request pipeline of up to `depth` in flight over
    /// this connection's stream. The pipeline's FIFO reply matching and
    /// failure classification are documented on
    /// [`chirp_proto::pipeline`]; if the pipeline dies on a transport
    /// failure the connection is poisoned exactly as a plain RPC
    /// failure would poison it.
    pub fn pipeline<T>(
        &mut self,
        depth: usize,
        f: impl FnOnce(&mut ConnPipeline<'_>) -> ChirpResult<T>,
    ) -> ChirpResult<T> {
        self.check_usable()?;
        let mut pipe = PipelinedConn::new(&mut self.reader, &mut self.writer, depth);
        let out = f(&mut pipe);
        let dead = pipe.is_dead() || pipe.in_flight() > 0;
        if dead {
            // Unsettled replies would desynchronize the next RPC.
            self.broken = true;
        }
        out
    }

    // ---- authentication -------------------------------------------------

    /// Try each method in order; the first success fixes the subject.
    pub fn authenticate(&mut self, methods: &[AuthMethod]) -> ChirpResult<String> {
        let mut last = ChirpError::AuthFailed;
        for m in methods {
            match self.try_method(m) {
                Ok(subject) => return Ok(subject),
                Err(e) if e.is_retryable() || e == ChirpError::Disconnected => return Err(e),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn try_method(&mut self, method: &AuthMethod) -> ChirpResult<String> {
        match method {
            AuthMethod::Hostname => self.auth_round("hostname", "", ""),
            AuthMethod::Key { method, name, key } => self.auth_key(method, name, key),
            AuthMethod::Unix => self.auth_unix(),
        }
    }

    fn auth_round(&mut self, method: &str, name: &str, credential: &str) -> ChirpResult<String> {
        let st = self.rpc(&Request::Auth {
            method: method.to_string(),
            name: name.to_string(),
            credential: credential.to_string(),
        })?;
        match st.value {
            0 => {
                let subject = Self::decode_word(&st.words, 0)?;
                self.subject = Some(subject.clone());
                Ok(subject)
            }
            _ => Err(ChirpError::AuthFailed),
        }
    }

    /// A key method: request a nonce challenge, MAC the handshake
    /// transcript under the key, present `<key_id>:<hex_mac>` back.
    /// The key never leaves the process.
    fn auth_key(&mut self, method: &str, name: &str, key: &[u8]) -> ChirpResult<String> {
        use chirp_proto::crypto::{auth_mac, key_fingerprint};
        let st = self.rpc(&Request::Auth {
            method: method.to_string(),
            name: name.to_string(),
            credential: String::new(),
        })?;
        if st.value != 1 {
            return Err(ChirpError::AuthFailed);
        }
        let nonce = Self::decode_word(&st.words, 0)?;
        let key_id = key_fingerprint(key);
        let mac = auth_mac(key, method, name, &key_id, &nonce);
        self.auth_round(method, name, &format!("{key_id}:{mac}"))
    }

    /// The `unix` method: request a challenge path, create the file,
    /// present the path back as the credential.
    fn auth_unix(&mut self) -> ChirpResult<String> {
        let name = format!("uid{}", current_uid()?);
        let st = self.rpc(&Request::Auth {
            method: "unix".to_string(),
            name: name.clone(),
            credential: String::new(),
        })?;
        if st.value != 1 {
            return Err(ChirpError::AuthFailed);
        }
        let challenge = Self::decode_word(&st.words, 0)?;
        std::fs::write(&challenge, b"").map_err(|_| ChirpError::AuthFailed)?;
        self.auth_round("unix", &name, &challenge)
    }

    // ---- the RPC surface --------------------------------------------------

    /// Ask the server which subject this session carries.
    pub fn whoami(&mut self) -> ChirpResult<String> {
        let st = self.rpc(&Request::Whoami)?;
        Self::decode_word(&st.words, 0)
    }

    /// Open a file; the returned descriptor is valid until `close` or
    /// disconnection.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u32) -> ChirpResult<i32> {
        let st = self.rpc(&Request::Open {
            path: path.to_string(),
            flags,
            mode,
        })?;
        Ok(st.value as i32)
    }

    /// Close a descriptor.
    pub fn close(&mut self, fd: i32) -> ChirpResult<()> {
        self.rpc(&Request::Close { fd })?;
        Ok(())
    }

    /// Positional read of up to `length` bytes at `offset`. Short
    /// reads happen only at end of file.
    pub fn pread(&mut self, fd: i32, length: u64, offset: u64) -> ChirpResult<Vec<u8>> {
        let st = self.rpc(&Request::Pread { fd, length, offset })?;
        self.read_body(st.value as u64)
    }

    /// Positional read directly into `buf`, avoiding the per-call
    /// allocation of [`Connection::pread`]. Returns the bytes read;
    /// short only at end of file.
    pub fn pread_into(&mut self, fd: i32, buf: &mut [u8], offset: u64) -> ChirpResult<usize> {
        let st = self.rpc(&Request::Pread {
            fd,
            length: buf.len() as u64,
            offset,
        })?;
        let n = st.value as u64;
        if n > buf.len() as u64 {
            // The server answered with more than was asked for; the
            // stream framing can no longer be trusted.
            self.broken = true;
            return Err(ChirpError::InvalidRequest);
        }
        if let Err(e) = self.reader.read_exact(&mut buf[..n as usize]) {
            self.broken = true;
            return Err(ChirpError::from_io(&e));
        }
        Ok(n as usize)
    }

    /// Several positional reads settled in one exchange: the requests
    /// are pipelined on this stream and every reply is read in order,
    /// so `ranges.len()` reads cost one round trip instead of one
    /// each. Returns the bytes of each range in request order (short
    /// only at end of file). The first protocol error settles the
    /// whole call; reads are idempotent, so a retry layer simply
    /// reissues everything.
    pub fn pread_multi(&mut self, fd: i32, ranges: &[(u64, u64)]) -> ChirpResult<Vec<Vec<u8>>> {
        if ranges.is_empty() {
            return Ok(Vec::new());
        }
        self.pipeline(ranges.len(), |pipe| {
            for &(offset, length) in ranges {
                pipe.send(
                    &Request::Pread { fd, length, offset },
                    None,
                    ReplyShape::Body,
                )?;
            }
            let mut out = Vec::with_capacity(ranges.len());
            let mut first_err = None;
            for verdict in pipe.settle_all() {
                match verdict {
                    Ok(reply) => out.push(reply.into_body()),
                    Err(e) if first_err.is_none() => first_err = Some(e),
                    Err(_) => {}
                }
            }
            match first_err {
                None => Ok(out),
                Some(e) => Err(e),
            }
        })
        .and_then(|out| {
            // The server must never answer more than was asked for.
            for (body, &(_, length)) in out.iter().zip(ranges) {
                if body.len() as u64 > length {
                    self.broken = true;
                    return Err(ChirpError::InvalidRequest);
                }
            }
            Ok(out)
        })
    }

    /// Issue a `PREAD` without waiting for its reply — the deferred
    /// half of the pipelined readahead path: the server services the
    /// read while the caller is busy elsewhere, and the reply waits in
    /// the stream. Exactly one reply is then owed on this connection;
    /// the caller MUST settle it with [`Connection::recv_pread`]
    /// before issuing any other RPC, or the next status line would
    /// answer the wrong request.
    pub fn send_pread(&mut self, fd: i32, length: u64, offset: u64) -> ChirpResult<()> {
        self.send(&Request::Pread { fd, length, offset })
    }

    /// Settle a read issued with [`Connection::send_pread`]: read its
    /// status line and body. `max` is the length that was asked for; a
    /// longer answer is a framing violation and poisons the connection.
    pub fn recv_pread(&mut self, max: u64) -> ChirpResult<Vec<u8>> {
        let st = self.recv_status()?;
        let n = st.value as u64;
        if n > max {
            self.broken = true;
            return Err(ChirpError::InvalidRequest);
        }
        self.read_body(n)
    }

    /// Positional write of the whole buffer at `offset`.
    pub fn pwrite(&mut self, fd: i32, data: &[u8], offset: u64) -> ChirpResult<u64> {
        self.check_usable()?;
        let req = Request::Pwrite {
            fd,
            length: data.len() as u64,
            offset,
        };
        let line = req.encode();
        let res = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(data))
            .and_then(|_| self.writer.flush());
        if let Err(e) = res {
            self.broken = true;
            return Err(ChirpError::from_io(&e));
        }
        let st = self.recv_status()?;
        Ok(st.value as u64)
    }

    /// `fstat` an open descriptor.
    pub fn fstat(&mut self, fd: i32) -> ChirpResult<StatBuf> {
        let st = self.rpc(&Request::Fstat { fd })?;
        let words: Vec<&str> = st.words.iter().map(String::as_str).collect();
        StatBuf::from_words(&words)
    }

    /// Flush a descriptor to stable storage.
    pub fn fsync(&mut self, fd: i32) -> ChirpResult<()> {
        self.rpc(&Request::Fsync { fd })?;
        Ok(())
    }

    /// Truncate an open descriptor.
    pub fn ftruncate(&mut self, fd: i32, size: u64) -> ChirpResult<()> {
        self.rpc(&Request::Ftruncate { fd, size })?;
        Ok(())
    }

    /// `stat` by path.
    pub fn stat(&mut self, path: &str) -> ChirpResult<StatBuf> {
        let st = self.rpc(&Request::Stat {
            path: path.to_string(),
        })?;
        let words: Vec<&str> = st.words.iter().map(String::as_str).collect();
        StatBuf::from_words(&words)
    }

    /// Remove a file.
    pub fn unlink(&mut self, path: &str) -> ChirpResult<()> {
        self.rpc(&Request::Unlink {
            path: path.to_string(),
        })?;
        Ok(())
    }

    /// Atomic rename within the server.
    pub fn rename(&mut self, from: &str, to: &str) -> ChirpResult<()> {
        self.rpc(&Request::Rename {
            from: from.to_string(),
            to: to.to_string(),
        })?;
        Ok(())
    }

    /// Create a directory (ordinary or reserve-right semantics,
    /// decided by the server from the caller's ACL rights).
    pub fn mkdir(&mut self, path: &str, mode: u32) -> ChirpResult<()> {
        self.rpc(&Request::Mkdir {
            path: path.to_string(),
            mode,
        })?;
        Ok(())
    }

    /// Remove an empty directory.
    pub fn rmdir(&mut self, path: &str) -> ChirpResult<()> {
        self.rpc(&Request::Rmdir {
            path: path.to_string(),
        })?;
        Ok(())
    }

    /// List a directory.
    pub fn getdir(&mut self, path: &str) -> ChirpResult<Vec<String>> {
        let st = self.rpc(&Request::Getdir {
            path: path.to_string(),
        })?;
        let body = self.read_body(st.value as u64)?;
        let text = String::from_utf8(body).map_err(|_| ChirpError::InvalidRequest)?;
        text.split('\n')
            .filter(|s| !s.is_empty())
            .map(|w| {
                let bytes = unescape(w).ok_or(ChirpError::InvalidRequest)?;
                String::from_utf8(bytes).map_err(|_| ChirpError::InvalidRequest)
            })
            .collect()
    }

    /// List a directory with attributes in one round trip.
    pub fn getlongdir(&mut self, path: &str) -> ChirpResult<Vec<(String, StatBuf)>> {
        let st = self.rpc(&Request::Getlongdir {
            path: path.to_string(),
        })?;
        let body = self.read_body(st.value as u64)?;
        Self::decode_dirstat_body(body)
    }

    /// The batched directory listing of the pipelined data path:
    /// every entry comes back *with* its attributes in one exchange,
    /// so a listing never costs a `STAT` round trip per entry
    /// (the NFS `LOOKUP`-per-component latency shape).
    pub fn getdir_stat(&mut self, path: &str) -> ChirpResult<Vec<(String, StatBuf)>> {
        let st = self.rpc(&Request::GetdirStat {
            path: path.to_string(),
        })?;
        let body = self.read_body(st.value as u64)?;
        Self::decode_dirstat_body(body)
    }

    /// Decode a `name statwords` per-line listing body.
    fn decode_dirstat_body(body: Vec<u8>) -> ChirpResult<Vec<(String, StatBuf)>> {
        let text = String::from_utf8(body).map_err(|_| ChirpError::InvalidRequest)?;
        text.split('\n')
            .filter(|s| !s.is_empty())
            .map(|line| {
                let mut words = line.split(' ');
                let raw = words.next().ok_or(ChirpError::InvalidRequest)?;
                let name = unescape(raw)
                    .and_then(|b| String::from_utf8(b).ok())
                    .ok_or(ChirpError::InvalidRequest)?;
                let rest: Vec<&str> = words.collect();
                Ok((name, StatBuf::from_words(&rest)?))
            })
            .collect()
    }

    /// `stat` a batch of paths in one exchange. The reply carries one
    /// verdict per path, in order: a missing or forbidden path yields
    /// its own error without failing the batch — the recursive-stub
    /// hot path resolves a whole directory of stubs in one round trip.
    pub fn stat_multi(&mut self, paths: &[String]) -> ChirpResult<Vec<ChirpResult<StatBuf>>> {
        if paths.is_empty() {
            return Ok(Vec::new());
        }
        let st = self.rpc(&Request::StatMulti {
            paths: paths.to_vec(),
        })?;
        let body = self.read_body(st.value as u64)?;
        let text = String::from_utf8(body).map_err(|_| ChirpError::InvalidRequest)?;
        let verdicts: Vec<ChirpResult<StatBuf>> = text
            .split('\n')
            .filter(|s| !s.is_empty())
            .map(|line| {
                let st = wire::parse_status(line)?;
                let words: Vec<&str> = st.words.iter().map(String::as_str).collect();
                StatBuf::from_words(&words)
            })
            .collect();
        if verdicts.len() != paths.len() {
            // The batch must be total: one verdict per path.
            self.broken = true;
            return Err(ChirpError::InvalidRequest);
        }
        Ok(verdicts)
    }

    /// Stream an entire file into `out`; returns the byte count.
    pub fn getfile_to<W: Write>(&mut self, path: &str, out: &mut W) -> ChirpResult<u64> {
        let st = self.rpc(&Request::Getfile {
            path: path.to_string(),
        })?;
        let len = st.value as u64;
        if let Err(e) = wire::copy_exact(&mut self.reader, out, len) {
            self.broken = true;
            return Err(ChirpError::from_io(&e));
        }
        Ok(len)
    }

    /// Fetch an entire file into memory.
    pub fn getfile(&mut self, path: &str) -> ChirpResult<Vec<u8>> {
        let mut out = Vec::new();
        self.getfile_to(path, &mut out)?;
        Ok(out)
    }

    /// Stream `length` bytes from `source` into a new file at `path`.
    pub fn putfile_from<R: Read>(
        &mut self,
        path: &str,
        mode: u32,
        length: u64,
        source: &mut R,
    ) -> ChirpResult<()> {
        self.check_usable()?;
        let req = Request::Putfile {
            path: path.to_string(),
            mode,
            length,
        };
        let line = req.encode();
        let res = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|_| wire::copy_exact(source, &mut self.writer, length))
            .and_then(|_| self.writer.flush());
        if let Err(e) = res {
            self.broken = true;
            return Err(ChirpError::from_io(&e));
        }
        self.recv_status()?;
        Ok(())
    }

    /// Store an in-memory buffer as a file.
    pub fn putfile(&mut self, path: &str, mode: u32, data: &[u8]) -> ChirpResult<()> {
        self.putfile_from(path, mode, data.len() as u64, &mut &data[..])
    }

    /// Stream a whole file into `out` as pipelined `PREAD` chunks:
    /// up to `depth` chunk requests ride the stream at once, so the
    /// per-chunk round trip overlaps the previous chunk's transfer.
    /// Unlike `GETFILE`'s single monolithic body, a transport failure
    /// mid-stream leaves a well-defined prefix in `out` and a
    /// retriable error. Returns the byte count.
    pub fn getfile_pipelined<W: Write>(
        &mut self,
        path: &str,
        out: &mut W,
        chunk: usize,
        depth: usize,
    ) -> ChirpResult<u64> {
        let chunk = (chunk.max(1)) as u64;
        let fd = self.open(path, OpenFlags::READ, 0)?;
        let total = self.pipeline(depth.max(1), |pipe| {
            let mut next_off = 0u64;
            let mut total = 0u64;
            let mut eof = false;
            let mut verdict: ChirpResult<()> = Ok(());
            // Keep the window full until a short read marks the end,
            // then settle what is still in flight (the speculative
            // tail reads simply come back empty).
            while !(eof && pipe.in_flight() == 0) && verdict.is_ok() {
                while !eof && pipe.has_room() {
                    let req = Request::Pread {
                        fd,
                        length: chunk,
                        offset: next_off,
                    };
                    if let Err(e) = pipe.send(&req, None, ReplyShape::Body) {
                        verdict = Err(e);
                        eof = true;
                        break;
                    }
                    next_off += chunk;
                    if pipe.in_flight() == pipe.depth() {
                        break;
                    }
                }
                if verdict.is_err() || pipe.in_flight() == 0 {
                    break;
                }
                match pipe.recv() {
                    Ok(reply) => {
                        let body = reply.into_body();
                        if body.len() as u64 > chunk {
                            verdict = Err(ChirpError::InvalidRequest);
                            break;
                        }
                        if !body.is_empty() {
                            if let Err(e) = out.write_all(&body) {
                                // The sink failed, not the stream; the
                                // remaining replies still need to be
                                // drained to keep the connection framed.
                                verdict = Err(ChirpError::from_io(&e));
                                eof = true;
                                continue;
                            }
                            total += body.len() as u64;
                        }
                        if (body.len() as u64) < chunk {
                            eof = true;
                        }
                    }
                    Err(e) => {
                        verdict = Err(e);
                        // A settled protocol error keeps the stream
                        // framed; drain the speculative tail.
                        if !pipe.is_dead() {
                            for _ in pipe.settle_all() {}
                        }
                    }
                }
            }
            verdict.map(|()| total)
        });
        let closed = self.close(fd);
        total.and_then(|n| closed.map(|()| n))
    }

    /// Fetch a whole file into memory over pipelined chunk reads.
    pub fn getfile_pipelined_vec(
        &mut self,
        path: &str,
        chunk: usize,
        depth: usize,
    ) -> ChirpResult<Vec<u8>> {
        let mut out = Vec::new();
        self.getfile_pipelined(path, &mut out, chunk, depth)?;
        Ok(out)
    }

    /// Stream `length` bytes from `source` into a new file at `path`
    /// as pipelined `PWRITE` chunks, overlapping each chunk's round
    /// trip with the next chunk's transfer. Every chunk's verdict is
    /// checked; positional writes are idempotent, so a retry layer
    /// may replay the whole file after a transport failure.
    pub fn putfile_pipelined<R: Read>(
        &mut self,
        path: &str,
        mode: u32,
        length: u64,
        source: &mut R,
        chunk: usize,
        depth: usize,
    ) -> ChirpResult<()> {
        let chunk = chunk.max(1);
        let fd = self.open(
            path,
            OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::TRUNCATE,
            mode,
        )?;
        let wrote = self.pipeline(depth.max(1), |pipe| {
            let mut buf = vec![0u8; chunk];
            let mut sent = 0u64;
            let mut verdict: ChirpResult<()> = Ok(());
            while verdict.is_ok() && (sent < length || pipe.in_flight() > 0) {
                while sent < length && pipe.has_room() && verdict.is_ok() {
                    let want = buf.len().min((length - sent) as usize);
                    if let Err(e) = source.read_exact(&mut buf[..want]) {
                        verdict = Err(ChirpError::from_io(&e));
                        break;
                    }
                    let req = Request::Pwrite {
                        fd,
                        length: want as u64,
                        offset: sent,
                    };
                    verdict = pipe.send(&req, Some(&buf[..want]), ReplyShape::Status);
                    sent += want as u64;
                }
                if pipe.in_flight() == 0 {
                    break;
                }
                match pipe.recv() {
                    Ok(_) => {}
                    Err(e) => {
                        if verdict.is_ok() {
                            verdict = Err(e);
                        }
                        if !pipe.is_dead() {
                            for _ in pipe.settle_all() {}
                        } else {
                            break;
                        }
                    }
                }
            }
            verdict
        });
        let closed = self.close(fd);
        wrote.and(closed)
    }

    /// Fetch a directory's ACL as text.
    pub fn getacl(&mut self, path: &str) -> ChirpResult<String> {
        let st = self.rpc(&Request::Getacl {
            path: path.to_string(),
        })?;
        let body = self.read_body(st.value as u64)?;
        String::from_utf8(body).map_err(|_| ChirpError::InvalidRequest)
    }

    /// Add/replace/remove one subject's entry in a directory ACL.
    pub fn setacl(&mut self, path: &str, subject: &str, rights: &str) -> ChirpResult<()> {
        self.rpc(&Request::Setacl {
            path: path.to_string(),
            subject: subject.to_string(),
            rights: rights.to_string(),
        })?;
        Ok(())
    }

    /// Server-side CRC-64 of a file.
    pub fn checksum(&mut self, path: &str) -> ChirpResult<u64> {
        let st = self.rpc(&Request::Checksum {
            path: path.to_string(),
        })?;
        let word = st.words.first().ok_or(ChirpError::InvalidRequest)?;
        u64::from_str_radix(word, 16).map_err(|_| ChirpError::InvalidRequest)
    }

    /// Storage totals for the server.
    pub fn statfs(&mut self) -> ChirpResult<StatFs> {
        let st = self.rpc(&Request::Statfs)?;
        let words: Vec<&str> = st.words.iter().map(String::as_str).collect();
        StatFs::from_words(&words)
    }

    /// Truncate by path.
    pub fn truncate(&mut self, path: &str, size: u64) -> ChirpResult<()> {
        self.rpc(&Request::Truncate {
            path: path.to_string(),
            size,
        })?;
        Ok(())
    }

    /// Set a file's modification time.
    pub fn utime(&mut self, path: &str, mtime: u64) -> ChirpResult<()> {
        self.rpc(&Request::Utime {
            path: path.to_string(),
            mtime,
        })?;
        Ok(())
    }

    /// Direct a third-party transfer: the server pushes `path` to
    /// `target_path` on the server at `target`, and the data never
    /// crosses this connection. Returns the bytes moved.
    pub fn thirdput(&mut self, path: &str, target: &str, target_path: &str) -> ChirpResult<u64> {
        let st = self.rpc(&Request::Thirdput {
            path: path.to_string(),
            target: target.to_string(),
            target_path: target_path.to_string(),
        })?;
        Ok(st.value as u64)
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("addr", &self.addr)
            .field("subject", &self.subject)
            .field("broken", &self.broken)
            .finish()
    }
}

/// The calling process's uid, observed through file ownership so no
/// libc binding is needed.
fn current_uid() -> ChirpResult<u32> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        let meta = std::fs::metadata("/proc/self").or_else(|_| {
            let p = std::env::temp_dir().join(format!("chirp-uid-probe-{}", std::process::id()));
            std::fs::write(&p, b"")?;
            let m = std::fs::metadata(&p);
            let _ = std::fs::remove_file(&p);
            m
        });
        meta.map(|m| m.uid()).map_err(|e| ChirpError::from_io(&e))
    }
    #[cfg(not(unix))]
    {
        Ok(0)
    }
}

//! Federation acceptance: 3 catalog shards, 8 real file servers, one
//! virtual clock, zero real sockets.
//!
//! The ISSUE's acceptance scenario: every server's report — fed to an
//! arbitrary shard — is answerable from *any* shard; killing one
//! shard leaves the fleet fully resolvable from the survivors within
//! a gossip interval; a restarted shard rejoins empty and recovers
//! the whole view by anti-entropy resync. Plus satellite (c): a
//! wrong-shard report reaches its home shard before expiry, and the
//! expiry boundary is bit-for-bit identical to a single catalog
//! sharing the same virtual clock.

use std::sync::Arc;
use std::time::Duration;

use catalog::client::{query_raw_via, query_via};
use catalog::{CatalogConfig, CatalogServer};
use controlplane::{FedCatalog, FedConfig};
use simharness::harness::{SimTss, SIM_TIMEOUT};

const EXPIRY: Duration = Duration::from_secs(300);
const GOSSIP: Duration = Duration::from_secs(30);
const NAMES: [&str; 3] = ["cat-a", "cat-b", "cat-c"];

/// Stand up a 3-shard federation on the sim's in-memory network.
fn federation(sim: &SimTss) -> Vec<FedCatalog> {
    let listeners: Vec<_> = (0..NAMES.len()).map(|_| sim.net().listen()).collect();
    let peers: Vec<(String, String)> = NAMES
        .iter()
        .zip(&listeners)
        .map(|(n, l)| (n.to_string(), l.addr().to_string()))
        .collect();
    NAMES
        .iter()
        .zip(listeners)
        .map(|(name, listener)| {
            let mut cfg = FedConfig::new(name, &listener.addr().to_string());
            cfg.expiry = EXPIRY;
            cfg.gossip_interval = GOSSIP;
            cfg.clock = sim.clock().clone();
            cfg.dialer = sim.dialer();
            cfg.timeout = SIM_TIMEOUT;
            FedCatalog::start(cfg, Arc::new(listener), &peers).expect("start shard")
        })
        .collect()
}

/// One all-pairs round: every shard pushes its state to every peer.
fn converge(shards: &[FedCatalog]) {
    for _ in 0..shards.len().saturating_sub(1) {
        for shard in shards {
            shard.gossip_once().expect("gossip");
        }
    }
}

fn names_served(sim: &SimTss, endpoint: &str) -> Vec<String> {
    query_via(&sim.dialer(), endpoint, SIM_TIMEOUT)
        .expect("query shard")
        .into_iter()
        .map(|r| r.name)
        .collect()
}

#[test]
fn any_shard_answers_for_the_whole_fleet() {
    let sim = SimTss::builder().servers(8).build();
    // Give the servers some traffic so their reports carry metrics.
    for i in 0..8 {
        let mut conn = sim.connect(i);
        conn.putfile(&format!("/f{i}"), 0o644, b"fleet").unwrap();
    }
    let shards = federation(&sim);
    // Each server reports to an arbitrary shard (round-robin), as if
    // it only knew one catalog address.
    for i in 0..8 {
        shards[i % 3].ingest(sim.server_report(i));
    }
    converge(&shards);

    let expected: Vec<String> = (0..8).map(|i| sim.endpoint(i)).collect();
    let mut expected_sorted = expected.clone();
    expected_sorted.sort();
    for shard in &shards {
        let served = names_served(&sim, shard.endpoint());
        assert_eq!(
            served,
            expected_sorted,
            "shard {} does not serve the whole fleet",
            shard.name()
        );
    }

    // The aggregated faces answer from any shard too, with every
    // server's record present.
    for shard in &shards {
        for face in ["metrics", "metrics-json", "json", "html"] {
            let body =
                query_raw_via(&sim.dialer(), shard.endpoint(), SIM_TIMEOUT, face).expect("face");
            for name in &expected {
                assert!(
                    body.contains(name.as_str()),
                    "{face} face on {} is missing {name}",
                    shard.name()
                );
            }
        }
    }

    // Reports fed to a non-home shard were forwarded to their home
    // shard synchronously: somebody forwarded, nobody failed.
    let forwarded: u64 = shards
        .iter()
        .map(|s| {
            s.telemetry()
                .snapshot()
                .counter("fed.reports_forwarded")
                .unwrap_or(0)
        })
        .sum();
    let failures: u64 = shards
        .iter()
        .map(|s| {
            s.telemetry()
                .snapshot()
                .counter("fed.forward_failures")
                .unwrap_or(0)
        })
        .sum();
    assert!(forwarded > 0, "round-robin reporting must cross shards");
    assert_eq!(failures, 0);
}

#[test]
fn killing_one_shard_keeps_the_fleet_resolvable() {
    let sim = SimTss::builder().servers(8).build();
    let mut shards = federation(&sim);
    for i in 0..8 {
        shards[i % 3].ingest(sim.server_report(i));
    }
    converge(&shards);

    // Kill shard 0: service threads stop and its address unbinds, so
    // peers see dial failures, exactly like a host death.
    let dead_endpoint = shards[0].endpoint().to_string();
    let dead_addr: std::net::SocketAddr = dead_endpoint.parse().unwrap();
    let mut dead = shards.remove(0);
    dead.shutdown();
    sim.net().unbind(dead_addr);
    drop(dead);
    assert!(
        query_via(&sim.dialer(), &dead_endpoint, SIM_TIMEOUT).is_err(),
        "dead shard must stop answering"
    );

    // Within one gossip interval on the virtual clock, the survivors
    // still resolve every server; gossip to the dead peer fails but
    // the round-robin continues past it.
    sim.clock().sleep(GOSSIP);
    for shard in &shards {
        let _ = shard.gossip_once();
        let _ = shard.gossip_once();
    }
    for shard in &shards {
        let served = names_served(&sim, shard.endpoint());
        assert_eq!(served.len(), 8, "survivor {} lost entries", shard.name());
    }

    // Restart the shard at the same address: it rejoins empty, then
    // one anti-entropy resync recovers the whole fleet view.
    let listener = sim.net().listen_at(dead_addr).expect("rebind dead address");
    let mut cfg = FedConfig::new(NAMES[0], &dead_endpoint);
    cfg.expiry = EXPIRY;
    cfg.gossip_interval = GOSSIP;
    cfg.clock = sim.clock().clone();
    cfg.dialer = sim.dialer();
    cfg.timeout = SIM_TIMEOUT;
    let peers: Vec<(String, String)> = shards
        .iter()
        .map(|s| (s.name().to_string(), s.endpoint().to_string()))
        .collect();
    let revived = FedCatalog::start(cfg, Arc::new(listener), &peers).expect("restart shard");
    assert_eq!(names_served(&sim, revived.endpoint()).len(), 0);
    revived.resync().expect("resync from a live peer");
    assert_eq!(
        names_served(&sim, revived.endpoint()).len(),
        8,
        "resync must recover the whole fleet view"
    );
    assert_eq!(
        revived.telemetry().snapshot().counter("fed.resyncs"),
        Some(1)
    );
}

#[test]
fn wrong_shard_report_reaches_home_and_expires_bit_for_bit() {
    let sim = SimTss::builder().servers(2).build();
    let shards = federation(&sim);

    // The oracle: one classic catalog on the same virtual clock with
    // the same expiry. Whatever it serves, the federation must serve
    // byte-identically, at every point of the staleness timeline.
    let oracle =
        CatalogServer::start(CatalogConfig::localhost(EXPIRY).with_clock(sim.clock().clone()))
            .expect("oracle catalog");
    let oracle_ep = oracle.tcp_addr().to_string();
    let tcp = chirp_proto::transport::Dialer::tcp();

    let faces = ["text", "json", "metrics", "metrics-json", "html"];
    let assert_same = |at: &str| {
        for face in faces {
            let want = query_raw_via(&tcp, &oracle_ep, SIM_TIMEOUT, face).expect("oracle face");
            for shard in &shards {
                let got = query_raw_via(&sim.dialer(), shard.endpoint(), SIM_TIMEOUT, face)
                    .expect("shard face");
                assert_eq!(
                    got,
                    want,
                    "{face} face diverged from the single catalog on {} ({at})",
                    shard.name()
                );
            }
        }
    };

    // Report both servers through shard 0 only — for at least one of
    // them that is the wrong shard, so the home copy exists only via
    // forwarding. The oracle sees the same reports at the same ticks.
    for i in 0..2 {
        let report = sim.server_report(i);
        oracle.ingest(report.clone());
        shards[0].ingest(report);
    }
    converge(&shards);
    assert_same("fresh");

    // Just before expiry: still listed, everywhere, identically.
    sim.clock().sleep(EXPIRY - Duration::from_nanos(1));
    assert_same("1ns before expiry");

    // At the boundary: `age < expiry` fails at exactly age == expiry,
    // on every shard and the oracle alike.
    sim.clock().sleep(Duration::from_nanos(1));
    assert_same("exactly at expiry");
    assert!(names_served(&sim, shards[1].endpoint()).is_empty());
}

//! Property suite for the consistent-hash ring (satellite a).
//!
//! Two families of properties, checked *structurally* rather than
//! statistically wherever possible:
//!
//! * **Stability** — when a shard joins, every key that changes home
//!   moves *to the joining shard*; when one leaves, every moved key
//!   was *the leaver's*. No key ever migrates between surviving
//!   shards, so membership churn invalidates only the unavoidable
//!   ~K/n of the fleet's home assignments.
//! * **Balance** — at the default vnode count the busiest shard holds
//!   at most 2× the keys of the emptiest, for 3–16 shards.

use controlplane::ring::{HashRing, DEFAULT_VNODES};
use proptest::prelude::*;
use std::collections::HashMap;

fn keys(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("server-{i:04}.cluster.edu"))
        .collect()
}

fn assignments(ring: &HashRing, keys: &[String]) -> Vec<String> {
    keys.iter()
        .map(|k| ring.shard_for(k).expect("non-empty ring").to_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn join_moves_keys_only_to_the_joiner(
        seed in 0u64..1_000_000,
        shards in 3usize..17,
    ) {
        let names: Vec<String> = (0..shards).map(|i| format!("cat-{i}")).collect();
        let ring = HashRing::with_peers(seed, DEFAULT_VNODES, names.clone());
        let keys = keys(2000);
        let before = assignments(&ring, &keys);

        let mut grown = ring.clone();
        grown.add_peer("cat-new");
        let after = assignments(&grown, &keys);

        let mut moved = 0usize;
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                prop_assert_eq!(
                    a.as_str(), "cat-new",
                    "key moved between surviving shards on join"
                );
                moved += 1;
            }
        }
        // The joiner takes about K/(n+1); allow 2x for hash variance.
        let bound = 2 * keys.len() / (shards + 1);
        prop_assert!(
            moved <= bound,
            "join moved {moved} of {} keys (bound {bound})", keys.len()
        );
    }

    #[test]
    fn leave_moves_only_the_leavers_keys(
        seed in 0u64..1_000_000,
        shards in 3usize..17,
        victim in 0usize..16usize,
    ) {
        let victim = victim % shards;
        let names: Vec<String> = (0..shards).map(|i| format!("cat-{i}")).collect();
        let ring = HashRing::with_peers(seed, DEFAULT_VNODES, names.clone());
        let keys = keys(2000);
        let before = assignments(&ring, &keys);

        let mut shrunk = ring.clone();
        shrunk.remove_peer(&names[victim]);
        let after = assignments(&shrunk, &keys);

        for (b, a) in before.iter().zip(&after) {
            if b != a {
                prop_assert_eq!(
                    b.as_str(), names[victim].as_str(),
                    "a surviving shard's key moved on leave"
                );
                prop_assert!(a.as_str() != names[victim].as_str());
            }
        }
    }

    #[test]
    fn load_is_within_2x_across_3_to_16_shards(
        seed in 0u64..1_000_000,
        shards in 3usize..17,
    ) {
        let names: Vec<String> = (0..shards).map(|i| format!("cat-{i}")).collect();
        let ring = HashRing::with_peers(seed, DEFAULT_VNODES, names.clone());
        let keys = keys(4000);
        let mut counts: HashMap<String, usize> =
            names.iter().map(|n| (n.clone(), 0)).collect();
        for key in &keys {
            *counts.get_mut(ring.shard_for(key).unwrap()).unwrap() += 1;
        }
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        prop_assert!(min > 0, "a shard owns no keys at all");
        prop_assert!(
            max <= 2 * min,
            "imbalance {max}/{min} exceeds 2x across {shards} shards"
        );
    }

    #[test]
    fn assignment_agrees_between_independent_observers(
        seed in 0u64..1_000_000,
        shards in 3usize..17,
    ) {
        // A shard and tss-top build the ring independently from the
        // same (seed, vnodes, members); they must agree everywhere.
        let names: Vec<String> = (0..shards).map(|i| format!("cat-{i}")).collect();
        let a = HashRing::with_peers(seed, DEFAULT_VNODES, names.clone());
        let mut rev = names.clone();
        rev.reverse();
        let b = HashRing::with_peers(seed, DEFAULT_VNODES, rev);
        for key in keys(500) {
            prop_assert_eq!(a.shard_for(&key), b.shard_for(&key));
        }
    }
}

//! Seeded differential test: a 3-shard federation must be
//! observationally identical to one classic catalog.
//!
//! A random op sequence — reports to arbitrary shards, virtual-clock
//! advances across the expiry boundary, gossip rounds — drives the
//! federation and a single [`CatalogServer`] oracle sharing the same
//! virtual clock. At every checkpoint (after anti-entropy
//! convergence) all five query faces of *every* shard must match the
//! oracle's bytes exactly.
//!
//! Reproduce a failure with the printed seed:
//! `FED_SEED=<n> cargo test -p controlplane --test fed_differential`

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use catalog::client::query_raw_via;
use catalog::{CatalogConfig, CatalogServer, ServerReport};
use chirp_proto::transport::Dialer;
use chirp_proto::{Clock, MemNet, VirtualClock};
use controlplane::{FedCatalog, FedConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const EXPIRY: Duration = Duration::from_secs(60);
const TIMEOUT: Duration = Duration::from_secs(5);
const SERVERS: usize = 12;
const FACES: [&str; 5] = ["text", "json", "metrics", "metrics-json", "html"];

fn seed() -> u64 {
    match std::env::var("FED_SEED") {
        Ok(v) if !v.is_empty() => v.parse().expect("FED_SEED must be a u64"),
        _ => 0xFEDC_A7A1_0655_EED5,
    }
}

fn synthetic_report(id: usize, version: u64, rng: &mut SmallRng) -> ServerReport {
    ServerReport {
        kind: "chirp".into(),
        name: format!("srv-{id:02}"),
        owner: "differential".into(),
        address: format!("10.88.0.{}:9094", id + 1),
        version: version as u32,
        total: 1_000_000,
        free: rng.gen_range(0u64..1_000_000),
        topacl: String::new(),
        metrics: Default::default(),
        extra: BTreeMap::new(),
    }
}

#[test]
fn federation_is_bit_for_bit_a_catalog() {
    let seed = seed();
    eprintln!("fed differential: FED_SEED={seed} (set FED_SEED to reproduce)");
    let vclock = VirtualClock::new();
    let clock = Clock::virtual_at(vclock);
    let net = MemNet::new(clock.clone());
    let mut rng = SmallRng::seed_from_u64(seed);

    let names = ["cat-a", "cat-b", "cat-c"];
    let listeners: Vec<_> = names.iter().map(|_| net.listen()).collect();
    let peers: Vec<(String, String)> = names
        .iter()
        .zip(&listeners)
        .map(|(n, l)| (n.to_string(), l.addr().to_string()))
        .collect();
    let shards: Vec<FedCatalog> = names
        .iter()
        .zip(listeners)
        .map(|(name, listener)| {
            let mut cfg = FedConfig::new(name, &listener.addr().to_string());
            cfg.expiry = EXPIRY;
            cfg.clock = clock.clone();
            cfg.dialer = net.dialer();
            cfg.timeout = TIMEOUT;
            FedCatalog::start(cfg, Arc::new(listener), &peers).expect("start shard")
        })
        .collect();

    let oracle = CatalogServer::start(CatalogConfig::localhost(EXPIRY).with_clock(clock.clone()))
        .expect("oracle");
    let oracle_ep = oracle.tcp_addr().to_string();
    let tcp = Dialer::tcp();

    let converge_and_compare = |step: usize| {
        // Two all-pairs pushes guarantee convergence regardless of
        // where each entry currently lives.
        for _ in 0..2 {
            for shard in &shards {
                shard.gossip_once().expect("gossip");
            }
        }
        for face in FACES {
            let want = query_raw_via(&tcp, &oracle_ep, TIMEOUT, face).expect("oracle face");
            for shard in &shards {
                let got = query_raw_via(&net.dialer(), shard.endpoint(), TIMEOUT, face)
                    .expect("shard face");
                assert_eq!(
                    got,
                    want,
                    "step {step}: {face} face of {} diverged (FED_SEED={seed})",
                    shard.name()
                );
            }
        }
    };

    let mut version = 0u64;
    for step in 0..300 {
        match rng.gen_range(0u32..100) {
            // Report: a random server, with fresh content, to a
            // random shard (the oracle sees it directly). The 1 ms
            // advance keeps last-seen ticks unique, so freshest-wins
            // merging is unambiguous.
            0..=59 => {
                clock.sleep(Duration::from_millis(1));
                version += 1;
                let report = synthetic_report(rng.gen_range(0..SERVERS), version, &mut rng);
                oracle.ingest(report.clone());
                shards[rng.gen_range(0..shards.len())].ingest(report);
            }
            // Advance: up to half the expiry window at a time, so
            // sequences of advances cross (and re-cross) the expiry
            // and purge boundaries.
            60..=74 => {
                clock.sleep(Duration::from_millis(rng.gen_range(1u64..30_000)));
            }
            // A lone gossip round from a random shard.
            75..=89 => {
                shards[rng.gen_range(0..shards.len())]
                    .gossip_once()
                    .expect("gossip");
            }
            // Checkpoint: converge, then compare every face of every
            // shard against the oracle, byte for byte.
            _ => converge_and_compare(step),
        }
    }
    converge_and_compare(usize::MAX);
}

//! Distribution-tree chaos: an interior node dies mid-transfer, the
//! orphaned subtree re-parents, every surviving target still ends up
//! with correct bytes, and the telemetry ledger ties the injected
//! fault to the counted retries (satellite b, tree half).

use std::sync::Arc;
use std::time::Duration;

use controlplane::tree::{distribute, ideal_depth, TreeConfig, TreeTarget};
use simharness::harness::{auth, sim_retry, SimTss, SIM_TIMEOUT};
use telemetry::Registry;
use tss_core::cfs::{Cfs, CfsConfig};

const PAYLOAD_LEN: usize = 50_000;

fn payload() -> Vec<u8> {
    (0..PAYLOAD_LEN as u32).map(|i| (i % 251) as u8).collect()
}

/// A fresh resilient client for `endpoint` on the sim's network.
fn conn_factory(sim: &SimTss) -> impl Fn(&str) -> Arc<Cfs> + Sync + '_ {
    move |endpoint: &str| {
        let mut cfg = CfsConfig::new(endpoint, auth());
        cfg.timeout = SIM_TIMEOUT;
        cfg.retry = sim_retry();
        cfg.dialer = sim.dialer();
        cfg.clock = sim.clock().clone();
        Arc::new(Cfs::new(cfg))
    }
}

#[test]
fn fault_free_tree_is_log_depth() {
    let sim = SimTss::builder().servers(8).build();
    let data = payload();
    sim.connect(0).putfile("/payload", 0o644, &data).unwrap();

    let source = TreeTarget::new(&sim.endpoint(0), "/payload");
    let targets: Vec<TreeTarget> = (1..8)
        .map(|i| TreeTarget::new(&sim.endpoint(i), "/payload"))
        .collect();
    let cfg = TreeConfig {
        clock: sim.clock().clone(),
        ..TreeConfig::default()
    };
    let registry = Registry::new();
    let report = distribute(
        &source,
        &targets,
        conn_factory(&sim),
        &cfg,
        Some(&registry),
        None,
    );

    assert_eq!(report.failed.len(), 0, "no faults, no failures");
    assert_eq!(report.completed.len(), 7);
    assert_eq!(report.hops, 7, "one hop per replica");
    assert_eq!(report.depth, ideal_depth(7), "doubling tree: depth 3 for 7");
    assert_eq!(report.retries, 0);
    assert!(
        report.bytes_relayed >= 4 * data.len() as u64,
        "waves 2+3 are relayed by non-source holders (got {})",
        report.bytes_relayed
    );
    // Every target holds the exact bytes, verified on the host disk.
    for i in 1..8 {
        assert_eq!(std::fs::read(sim.root(i).join("payload")).unwrap(), data);
    }
    // Telemetry mirrors the report.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("tree.hops"), Some(7));
    assert_eq!(snap.counter("tree.retries"), Some(0));
}

#[test]
fn interior_node_death_reparents_the_orphaned_subtree() {
    let sim = SimTss::builder().servers(8).build();
    let data = payload();
    sim.connect(0).putfile("/payload", 0o644, &data).unwrap();

    let source = TreeTarget::new(&sim.endpoint(0), "/payload");
    let targets: Vec<TreeTarget> = (1..8)
        .map(|i| TreeTarget::new(&sim.endpoint(i), "/payload"))
        .collect();
    let cfg = TreeConfig {
        clock: sim.clock().clone(),
        backoff: Duration::from_millis(20),
        max_attempts: 4,
    };

    // Wave 1 makes target[0] (server 1) the first interior holder.
    // Kill it right after: unbind its address, so every later push
    // *through* it fails like a host death, while the bytes it
    // already received stay on its disk.
    let victim: std::net::SocketAddr = sim.endpoint(1).parse().unwrap();
    let net = sim.net().clone();
    let mut hook = move |wave: u64| {
        if wave == 1 {
            net.unbind(victim);
        }
    };

    let registry = Registry::new();
    let report = distribute(
        &source,
        &targets,
        conn_factory(&sim),
        &cfg,
        Some(&registry),
        Some(&mut hook),
    );

    assert_eq!(
        report.failed.len(),
        0,
        "all targets must complete despite the dead interior node"
    );
    assert_eq!(report.completed.len(), 7);
    assert!(
        report.reparents >= 1,
        "the dead holder's children must re-parent"
    );
    assert!(report.retries >= 1);
    assert_eq!(
        report.retries, report.reparents,
        "every failure here is recoverable, so the ledger balances"
    );
    // Depth grew only by what the retries forced.
    assert!(report.depth >= ideal_depth(7));
    assert!(
        report.depth <= ideal_depth(7) + report.retries,
        "depth {} vs ideal {} + {} retries",
        report.depth,
        ideal_depth(7),
        report.retries
    );
    // Every target — including the dead one, which got its bytes in
    // wave 1 — holds the payload, verified on the host disk.
    for i in 1..8 {
        assert_eq!(
            std::fs::read(sim.root(i).join("payload")).unwrap(),
            data,
            "server {i} holds wrong bytes"
        );
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("tree.retries"), Some(report.retries));
    assert_eq!(snap.counter("tree.reparents"), Some(report.reparents));
}

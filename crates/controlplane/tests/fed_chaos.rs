//! Federation chaos: gossip killed mid-frame, a shard killed outright
//! — queries keep answering from survivors, the rejoin resyncs, and
//! the telemetry ledger ties every injected fault to a counted
//! failure (satellite b, catalog half).

use std::sync::Arc;
use std::time::Duration;

use catalog::client::query_via;
use catalog::ServerReport;
use chirp_proto::{Clock, MemNet, VirtualClock};
use controlplane::{FedCatalog, FedConfig};
use faultline::mem::FaultDialer;
use faultline::{FaultAction, FaultPlan, FaultRule, FaultTrigger};

const EXPIRY: Duration = Duration::from_secs(300);
const TIMEOUT: Duration = Duration::from_secs(5);

fn report(id: usize) -> ServerReport {
    ServerReport {
        kind: "chirp".into(),
        name: format!("srv-{id:02}"),
        owner: "chaos".into(),
        address: format!("10.88.1.{}:9094", id + 1),
        version: 1,
        total: 1000,
        free: 500,
        topacl: String::new(),
        metrics: Default::default(),
        extra: Default::default(),
    }
}

#[test]
fn gossip_killed_mid_frame_is_counted_and_survived() {
    let clock = Clock::virtual_at(VirtualClock::new());
    let net = MemNet::new(clock.clone());

    // Shard 0 gossips through a fault dialer that severs its first
    // two pushes mid-frame; its peers use the clean network.
    let plan = FaultPlan::new(7).with_rule(
        FaultRule::new(FaultTrigger::EveryNthRpc(1), FaultAction::KillMidFrame).max_fires(2),
    );
    let faulty = FaultDialer::new(net.dialer(), clock.clone(), plan);
    faulty.set_armed(false);

    let names = ["cat-a", "cat-b", "cat-c"];
    let listeners: Vec<_> = names.iter().map(|_| net.listen()).collect();
    let peers: Vec<(String, String)> = names
        .iter()
        .zip(&listeners)
        .map(|(n, l)| (n.to_string(), l.addr().to_string()))
        .collect();
    let shards: Vec<FedCatalog> = names
        .iter()
        .zip(listeners)
        .enumerate()
        .map(|(i, (name, listener))| {
            let mut cfg = FedConfig::new(name, &listener.addr().to_string());
            cfg.expiry = EXPIRY;
            cfg.clock = clock.clone();
            cfg.dialer = if i == 0 {
                faulty.dialer()
            } else {
                net.dialer()
            };
            cfg.timeout = TIMEOUT;
            FedCatalog::start(cfg, Arc::new(listener), &peers).expect("start shard")
        })
        .collect();

    // Clean convergence first: 6 servers spread over the shards.
    for i in 0..6 {
        shards[i % 3].ingest(report(i));
    }
    for _ in 0..2 {
        for shard in &shards {
            shard.gossip_once().expect("clean gossip");
        }
    }

    // Arm: shard 0's next two gossip pushes die mid-frame.
    faulty.set_armed(true);
    let failures_before = shards[0]
        .telemetry()
        .snapshot()
        .counter("fed.gossip_failures")
        .unwrap_or(0);
    assert!(shards[0].gossip_once().is_err(), "killed push must error");
    assert!(shards[0].gossip_once().is_err(), "killed push must error");
    faulty.set_armed(false);

    // The ledger ties the injections to the counters exactly: every
    // fired fault is a counted gossip failure, nothing more.
    let failures = shards[0]
        .telemetry()
        .snapshot()
        .counter("fed.gossip_failures")
        .unwrap_or(0)
        - failures_before;
    assert_eq!(failures, faulty.fires(), "fault ledger must balance");
    assert_eq!(faulty.fires(), 2);

    // The federation survived: every shard still answers the whole
    // fleet, and disarmed gossip heals the round-robin.
    shards[0].gossip_once().expect("healed gossip");
    for shard in &shards {
        let listing = query_via(&net.dialer(), shard.endpoint(), TIMEOUT).expect("query");
        assert_eq!(listing.len(), 6, "{} lost entries", shard.name());
    }
}

#[test]
fn shard_killed_mid_gossip_rejoins_by_resync() {
    let clock = Clock::virtual_at(VirtualClock::new());
    let net = MemNet::new(clock.clone());
    let names = ["cat-a", "cat-b", "cat-c"];
    let listeners: Vec<_> = names.iter().map(|_| net.listen()).collect();
    let peers: Vec<(String, String)> = names
        .iter()
        .zip(&listeners)
        .map(|(n, l)| (n.to_string(), l.addr().to_string()))
        .collect();
    let mut shards: Vec<FedCatalog> = names
        .iter()
        .zip(listeners)
        .map(|(name, listener)| {
            let mut cfg = FedConfig::new(name, &listener.addr().to_string());
            cfg.expiry = EXPIRY;
            cfg.clock = clock.clone();
            cfg.dialer = net.dialer();
            cfg.timeout = TIMEOUT;
            FedCatalog::start(cfg, Arc::new(listener), &peers).expect("start shard")
        })
        .collect();

    for i in 0..6 {
        shards[i % 3].ingest(report(i));
    }
    for _ in 0..2 {
        for shard in &shards {
            shard.gossip_once().expect("gossip");
        }
    }

    // Kill shard 2 abruptly — between its peers' gossip rounds, so
    // their next pushes towards it fail like a host death.
    let dead_endpoint = shards[2].endpoint().to_string();
    let dead_addr: std::net::SocketAddr = dead_endpoint.parse().unwrap();
    let mut dead = shards.pop().expect("three shards");
    dead.shutdown();
    net.unbind(dead_addr);
    drop(dead);

    // Survivors keep gossiping; pushes to the corpse fail and are
    // counted, pushes between the survivors succeed.
    let mut failures = 0u64;
    for _ in 0..2 {
        for shard in &shards {
            if shard.gossip_once().is_err() {
                failures += 1;
            }
        }
    }
    assert!(failures > 0, "somebody must have tried the dead shard");
    let counted: u64 = shards
        .iter()
        .map(|s| {
            s.telemetry()
                .snapshot()
                .counter("fed.gossip_failures")
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(counted, failures, "every failure must be on the ledger");
    for shard in &shards {
        let listing = query_via(&net.dialer(), shard.endpoint(), TIMEOUT).expect("query");
        assert_eq!(listing.len(), 6, "survivor {} lost entries", shard.name());
    }

    // Rejoin at the same address: fresh state, then resync pulls the
    // fleet view back in one round trip.
    let listener = net.listen_at(dead_addr).expect("rebind");
    let mut cfg = FedConfig::new(names[2], &dead_endpoint);
    cfg.expiry = EXPIRY;
    cfg.clock = clock.clone();
    cfg.dialer = net.dialer();
    cfg.timeout = TIMEOUT;
    let revived = FedCatalog::start(cfg, Arc::new(listener), &peers).expect("rejoin");
    revived.resync().expect("resync");
    let listing = query_via(&net.dialer(), revived.endpoint(), TIMEOUT).expect("query");
    assert_eq!(listing.len(), 6, "rejoined shard must serve the fleet");
}

//! One shard of a federated catalog, serving over real TCP/UDP.
//!
//! ```text
//! fed-catalog --name cat-a --listen 0.0.0.0:9097 --udp 0.0.0.0:9097 \
//!             --peer cat-b=host-b:9097 --peer cat-c=host-c:9097 \
//!             [--expiry 900] [--gossip 30] [--seed N] [--vnodes 128]
//! ```
//!
//! File servers report to any shard (UDP, same packet format the
//! single catalog takes); the shard forwards each report to its home
//! shard and gossips full state on an interval, so every shard
//! answers `text`/`json`/`html`/`metrics`/`metrics-json` queries for
//! the whole fleet. `fed-status` reports shard identity, ring
//! parameters, and peer liveness (what `tss-top` renders).

use std::net::{TcpListener, UdpSocket};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use catalog::ServerReport;
use controlplane::FedConfig;

fn usage() -> ! {
    eprintln!(
        "usage: fed-catalog --name NAME --listen HOST:PORT [--udp HOST:PORT] \
         [--peer NAME=HOST:PORT]... [--expiry SECS] [--gossip SECS] \
         [--seed N] [--vnodes N]"
    );
    exit(2);
}

fn main() {
    let mut name = String::new();
    let mut listen = String::new();
    let mut udp_bind = String::new();
    let mut peers: Vec<(String, String)> = Vec::new();
    let mut config = FedConfig::new("", "");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match arg.as_str() {
            "--name" => name = value("--name"),
            "--listen" => listen = value("--listen"),
            "--udp" => udp_bind = value("--udp"),
            "--peer" => {
                let spec = value("--peer");
                let Some((peer_name, endpoint)) = spec.split_once('=') else {
                    eprintln!("--peer wants NAME=HOST:PORT, got {spec}");
                    usage();
                };
                peers.push((peer_name.to_string(), endpoint.to_string()));
            }
            "--expiry" => {
                config.expiry =
                    Duration::from_secs(value("--expiry").parse().unwrap_or_else(|_| usage()))
            }
            "--gossip" => {
                config.gossip_interval =
                    Duration::from_secs(value("--gossip").parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => config.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--vnodes" => config.vnodes = value("--vnodes").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if name.is_empty() || listen.is_empty() {
        usage();
    }
    if udp_bind.is_empty() {
        udp_bind.clone_from(&listen);
    }

    let tcp = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("fed-catalog: cannot bind {listen}: {e}");
        exit(1);
    });
    let udp = UdpSocket::bind(&udp_bind).unwrap_or_else(|e| {
        eprintln!("fed-catalog: cannot bind udp {udp_bind}: {e}");
        exit(1);
    });

    config.name = name;
    config.endpoint = listen.clone();
    config.auto_gossip = true;
    let shard =
        controlplane::FedCatalog::start(config, Arc::new(tcp), &peers).unwrap_or_else(|e| {
            eprintln!("fed-catalog: cannot start: {e}");
            exit(1);
        });
    eprintln!(
        "fed-catalog: shard {} serving on {listen} (udp {udp_bind}), {} peer(s)",
        shard.name(),
        peers.len()
    );

    // On rejoin after a restart, pull state from the first live peer
    // so queries answer immediately instead of waiting out gossip.
    if !peers.is_empty() {
        match shard.resync() {
            Ok(peer) => eprintln!("fed-catalog: resynced from {peer}"),
            Err(e) => eprintln!("fed-catalog: resync failed ({e}); waiting for gossip"),
        }
    }

    // UDP ingest on the main thread: same packet format the single
    // catalog takes, so file servers need no reconfiguration.
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let Ok((n, _peer)) = udp.recv_from(&mut buf) else {
            continue;
        };
        let Ok(text) = std::str::from_utf8(&buf[..n]) else {
            continue;
        };
        if let Some(report) = ServerReport::parse(text) {
            shard.ingest(report);
        }
    }
}

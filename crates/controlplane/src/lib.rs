//! Scale-out control plane for the tactical storage system.
//!
//! A single catalog server (PR 1) is a scalability and availability
//! ceiling: every report lands on one host, and losing it blinds the
//! whole fleet. This crate removes that ceiling with three pieces
//! that keep the paper's separation intact — resources stay dumb
//! file servers; all the smarts live in the (now distributed)
//! control plane:
//!
//! * [`ring`] — the seeded consistent-hash ring that assigns every
//!   server name a *home shard*, stably under membership churn.
//! * [`fed`] — federated catalog shards that forward reports to
//!   their home shard, gossip full state peer-to-peer, and each
//!   answer any query for the whole fleet in the exact bytes a lone
//!   catalog would produce.
//! * [`placement`] — an active GEMS placement engine ranking
//!   targets by live catalog metrics (load, free space) behind a
//!   pluggable policy trait, swapped into GEMS via [`gems::Placer`].
//! * [`tree`] — THIRDPUT distribution trees that fan N replicas out
//!   depot-to-depot in O(log N) wave-times, re-parenting orphaned
//!   subtrees when an interior node dies mid-transfer.

#![warn(missing_docs)]

pub mod fed;
pub mod placement;
pub mod ring;
pub mod tree;

pub use fed::{FedCatalog, FedConfig, PeerView, ReportOrigin};
pub use placement::{Candidate, LocalityFirst, PlacementEngine, PlacementPolicy, SpreadByLoad};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use tree::{distribute, ideal_depth, TreeConfig, TreeReport, TreeTarget};

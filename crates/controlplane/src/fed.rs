//! Federated catalog shards: gossip, forwarding, anti-entropy.
//!
//! A [`FedCatalog`] is one shard of a catalog federation. Each shard
//! ingests reports from any file server, *forwards* each report to its
//! home shard (chosen by the shared [`HashRing`] over server names),
//! and replicates its whole live set to its peers by periodic
//! anti-entropy gossip — so **any** shard answers **any** query for
//! the whole fleet, in exactly the bytes a lone catalog would produce
//! (the faces are rendered by [`catalog::render_listing`], the same
//! function the single-process server uses).
//!
//! Staleness is carried across the wire as an *age*, not a timestamp:
//! a shard transmits `now - last_seen` and the receiver reconstructs
//! `last_seen = now - age` on its own clock, so federation is immune
//! to clock skew and — under the simulation harness, where every
//! shard shares one virtual clock — bit-exact: an entry expires at
//! the same tick on every shard that holds it.
//!
//! A restarted shard rejoins empty and pulls the full state from the
//! first peer that answers (`fed-sync`); until then its peers keep
//! answering, so killing any one shard never loses the fleet view.
//!
//! Everything speaks the [`Transport`] seam: production runs over TCP
//! (`fed-catalog` binary), the differential and chaos suites run whole
//! federations on [`MemNet`](chirp_proto::MemNet) with virtual time.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use catalog::{render_listing, ServerReport};
use chirp_proto::escape::{escape, unescape};
use chirp_proto::transport::{Dialer, Listener, Transport};
use chirp_proto::{Clock, Tick};
use parking_lot::{Mutex, RwLock};
use telemetry::json::Value;
use telemetry::{Counter, Gauge, Registry};

use crate::ring::{HashRing, DEFAULT_VNODES};

/// Federation shard configuration.
#[derive(Debug, Clone)]
pub struct FedConfig {
    /// This shard's name (its identity on the ring and in gossip).
    pub name: String,
    /// The `host:port` peers and clients dial to reach this shard.
    pub endpoint: String,
    /// Reports older than this are dropped from every listing —
    /// identical semantics to the single-catalog expiry.
    pub expiry: Duration,
    /// Nominal interval between gossip rounds. Explicit drivers
    /// ([`FedCatalog::gossip_once`]) ignore it; the auto-gossip thread
    /// and observability use it.
    pub gossip_interval: Duration,
    /// The clock staleness is measured on (virtual under simulation).
    pub clock: Clock,
    /// How this shard dials its peers (TCP in production, MemNet under
    /// simulation).
    pub dialer: Dialer,
    /// Network timeout for peer traffic.
    pub timeout: Duration,
    /// Consistent-hash ring seed — every shard and observer must agree.
    pub seed: u64,
    /// Virtual points per shard on the ring.
    pub vnodes: usize,
    /// Spawn a wall-clock background thread running gossip rounds
    /// every `gossip_interval` (for the production binary; leave off
    /// under simulation and drive [`FedCatalog::gossip_once`]).
    pub auto_gossip: bool,
}

impl FedConfig {
    /// A config with library defaults for the given identity.
    pub fn new(name: &str, endpoint: &str) -> FedConfig {
        FedConfig {
            name: name.to_string(),
            endpoint: endpoint.to_string(),
            expiry: Duration::from_secs(900),
            gossip_interval: Duration::from_secs(30),
            clock: Clock::wall(),
            dialer: Dialer::tcp(),
            timeout: Duration::from_secs(10),
            seed: 0x7E55_CA7A_106F_EDED,
            vnodes: DEFAULT_VNODES,
            auto_gossip: false,
        }
    }
}

/// How a report arrived, which decides whether it is forwarded on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportOrigin {
    /// Straight from a file server (or operator): forwarded to the
    /// home shard if that is someone else.
    Direct,
    /// Forwarded or gossiped from a peer shard: never re-forwarded,
    /// so a stale ring on one shard cannot start a forwarding loop.
    Peer,
}

/// One peer's last known state, as published in `fed-status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerView {
    /// Peer shard name.
    pub name: String,
    /// Where to dial it.
    pub endpoint: String,
    /// Ticks since we last heard from it (gossip in either direction),
    /// `None` if never.
    pub heard_age: Option<Duration>,
    /// The peer's own forwarded-report counter, as last advertised.
    pub forwarded: u64,
}

struct Peer {
    endpoint: String,
    last_heard: Option<Tick>,
    forwarded: u64,
}

struct Entry {
    report: ServerReport,
    last_seen: Tick,
}

struct Metrics {
    reports_ingested: Counter,
    reports_forwarded: Counter,
    forward_failures: Counter,
    forwards_received: Counter,
    gossip_rounds: Counter,
    gossip_failures: Counter,
    gossip_received: Counter,
    entries_merged: Counter,
    resyncs: Counter,
    entries: Gauge,
}

impl Metrics {
    fn new(registry: &Registry) -> Metrics {
        Metrics {
            reports_ingested: registry.counter("fed.reports_ingested"),
            reports_forwarded: registry.counter("fed.reports_forwarded"),
            forward_failures: registry.counter("fed.forward_failures"),
            forwards_received: registry.counter("fed.forwards_received"),
            gossip_rounds: registry.counter("fed.gossip_rounds"),
            gossip_failures: registry.counter("fed.gossip_failures"),
            gossip_received: registry.counter("fed.gossip_received"),
            entries_merged: registry.counter("fed.entries_merged"),
            resyncs: registry.counter("fed.resyncs"),
            entries: registry.gauge("fed.entries"),
        }
    }
}

struct State {
    config: FedConfig,
    entries: RwLock<HashMap<String, Entry>>,
    peers: RwLock<BTreeMap<String, Peer>>,
    ring: RwLock<HashRing>,
    registry: Registry,
    metrics: Metrics,
    shutdown: AtomicBool,
    round_robin: Mutex<usize>,
}

/// A running federated catalog shard.
pub struct FedCatalog {
    state: Arc<State>,
    accept_thread: Option<JoinHandle<()>>,
    gossip_thread: Option<JoinHandle<()>>,
    listener: Arc<dyn Listener>,
}

impl FedCatalog {
    /// Start a shard serving on `listener`, knowing `peers` as
    /// `(name, endpoint)` pairs (self may be included; it is skipped).
    pub fn start(
        config: FedConfig,
        listener: Arc<dyn Listener>,
        peers: &[(String, String)],
    ) -> io::Result<FedCatalog> {
        let registry = Registry::new();
        let metrics = Metrics::new(&registry);
        let mut ring = HashRing::new(config.seed, config.vnodes);
        ring.add_peer(&config.name);
        let mut peer_map = BTreeMap::new();
        for (name, endpoint) in peers {
            if *name == config.name {
                continue;
            }
            ring.add_peer(name);
            peer_map.insert(
                name.clone(),
                Peer {
                    endpoint: endpoint.clone(),
                    last_heard: None,
                    forwarded: 0,
                },
            );
        }
        let state = Arc::new(State {
            config,
            entries: RwLock::new(HashMap::new()),
            peers: RwLock::new(peer_map),
            ring: RwLock::new(ring),
            registry,
            metrics,
            shutdown: AtomicBool::new(false),
            round_robin: Mutex::new(0),
        });
        let accept_state = state.clone();
        let accept_listener = listener.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("fed-{}", state.config.name))
            .spawn(move || accept_loop(accept_listener, accept_state))?;
        let gossip_thread = if state.config.auto_gossip {
            let st = state.clone();
            Some(
                std::thread::Builder::new()
                    .name(format!("fed-gossip-{}", st.config.name))
                    .spawn(move || auto_gossip_loop(st))?,
            )
        } else {
            None
        };
        Ok(FedCatalog {
            state,
            accept_thread: Some(accept_thread),
            gossip_thread,
            listener,
        })
    }

    /// This shard's name.
    pub fn name(&self) -> &str {
        &self.state.config.name
    }

    /// The endpoint peers and clients dial.
    pub fn endpoint(&self) -> &str {
        &self.state.config.endpoint
    }

    /// The telemetry registry (`fed.*` counters).
    pub fn telemetry(&self) -> &Registry {
        &self.state.registry
    }

    /// A snapshot of the shared ring.
    pub fn ring(&self) -> HashRing {
        self.state.ring.read().clone()
    }

    /// Peer views as published by `fed-status`.
    pub fn peer_views(&self) -> Vec<PeerView> {
        let now = self.state.config.clock.now();
        self.state
            .peers
            .read()
            .iter()
            .map(|(name, p)| PeerView {
                name: name.clone(),
                endpoint: p.endpoint.clone(),
                heard_age: p.last_heard.map(|t| now.duration_since(t)),
                forwarded: p.forwarded,
            })
            .collect()
    }

    /// Directly ingest a report as if a file server had submitted it
    /// here (forwards to the home shard when that is a peer).
    pub fn ingest(&self, report: ServerReport) {
        ingest(&self.state, report, Duration::ZERO, ReportOrigin::Direct);
    }

    /// Current non-expired fleet listing, sorted by name — same
    /// semantics as the single catalog's listing.
    pub fn listing(&self) -> Vec<ServerReport> {
        let now = self.state.config.clock.now();
        let entries = self.state.entries.read();
        let mut out: Vec<ServerReport> = entries
            .values()
            .filter(|e| now.duration_since(e.last_seen) < self.state.config.expiry)
            .map(|e| e.report.clone())
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Run one gossip round: push this shard's whole live state to the
    /// next peer in round-robin order. Returns the peer pushed to.
    pub fn gossip_once(&self) -> io::Result<String> {
        gossip_once(&self.state)
    }

    /// Pull full state from the first peer that answers — the
    /// anti-entropy resync a restarted shard runs to rejoin.
    pub fn resync(&self) -> io::Result<String> {
        let peers: Vec<(String, String)> = {
            let peers = self.state.peers.read();
            peers
                .iter()
                .map(|(n, p)| (n.clone(), p.endpoint.clone()))
                .collect()
        };
        let mut last: io::Error = io::ErrorKind::NotConnected.into();
        for (name, endpoint) in peers {
            match pull_sync(&self.state, &endpoint) {
                Ok(()) => {
                    self.state.metrics.resyncs.inc();
                    return Ok(name);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Stop the service threads.
    pub fn shutdown(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.listener.wake();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.gossip_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FedCatalog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: Arc<dyn Listener>, state: Arc<State>) {
    loop {
        let conn = listener.accept();
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let (stream, _peer) = match conn {
            Ok(pair) => pair,
            // A closed listener (host unbound) never accepts again.
            Err(e) if e.kind() == io::ErrorKind::NotConnected => return,
            Err(_) => continue,
        };
        let state = state.clone();
        let _ = std::thread::Builder::new()
            .name("fed-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &state);
            });
    }
}

/// Wall-clock gossip driver for production shards; simulation drives
/// [`FedCatalog::gossip_once`] explicitly instead.
fn auto_gossip_loop(state: Arc<State>) {
    let tick = Duration::from_millis(25);
    let mut since = Duration::ZERO;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(tick);
        since += tick;
        if since >= state.config.gossip_interval {
            let _ = gossip_once(&state);
            since = Duration::ZERO;
        }
    }
}

/// Serve one connection: first line is the verb, the rest depends.
fn serve_connection(stream: Box<dyn Transport>, state: &State) -> io::Result<()> {
    stream.set_read_timeout(Some(state.config.timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut verb = String::new();
    reader.read_line(&mut verb)?;
    let verb = verb.trim().to_string();
    let mut words = verb.split(' ');
    match words.next().unwrap_or("") {
        "fed-report" => {
            let age_ns: u64 = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
            let origin = match words.next() {
                Some("fwd") => ReportOrigin::Peer,
                _ => ReportOrigin::Direct,
            };
            let packet = read_packet(&mut reader)?;
            if let Some(report) = ServerReport::parse(&packet) {
                if origin == ReportOrigin::Peer {
                    state.metrics.forwards_received.inc();
                }
                ingest(state, report, Duration::from_nanos(age_ns), origin);
                writer.write_all(b"ok\n")?;
            } else {
                writer.write_all(b"error malformed report\n")?;
            }
        }
        "fed-gossip" => {
            let merged = merge_body(state, &mut reader)?;
            state.metrics.gossip_received.inc();
            writer.write_all(format!("ok {merged}\n").as_bytes())?;
        }
        "fed-sync" => {
            writer.write_all(state_body(state).as_bytes())?;
        }
        "fed-status" => {
            writer.write_all((status_json(state).render() + "\n").as_bytes())?;
        }
        _ => {
            // A query face: identical bytes to the single catalog.
            let now = state.config.clock.now();
            let entries = state.entries.read();
            let mut live: Vec<&Entry> = entries
                .values()
                .filter(|e| now.duration_since(e.last_seen) < state.config.expiry)
                .collect();
            live.sort_by(|a, b| a.report.name.cmp(&b.report.name));
            let live: Vec<&ServerReport> = live.into_iter().map(|e| &e.report).collect();
            writer.write_all(render_listing(&verb, &live).as_bytes())?;
        }
    }
    writer.flush()
}

/// Read a blank-line-terminated report packet (EOF also terminates).
fn read_packet<R: BufRead>(reader: &mut R) -> io::Result<String> {
    let mut packet = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if line.trim_end_matches(['\r', '\n']).is_empty() {
            break;
        }
        packet.push_str(&line);
    }
    Ok(packet)
}

/// Merge one report into the local set. Returns true if it was
/// fresher than what we held. Mirrors the single catalog's ingest:
/// long-dead entries (4× expiry) are purged opportunistically, and a
/// report older than the purge window is not admitted at all.
fn merge_entry(state: &State, report: ServerReport, age: Duration) -> bool {
    let purge_window = state.config.expiry * 4;
    if age >= purge_window {
        return false;
    }
    let now = state.config.clock.now();
    let last_seen = Tick(
        now.0
            .saturating_sub(u64::try_from(age.as_nanos()).unwrap_or(u64::MAX)),
    );
    let mut entries = state.entries.write();
    entries.retain(|_, e| now.duration_since(e.last_seen) < purge_window);
    let fresher = match entries.get(&report.name) {
        Some(existing) => existing.last_seen < last_seen,
        None => true,
    };
    if fresher {
        entries.insert(report.name.clone(), Entry { report, last_seen });
        state.metrics.entries_merged.inc();
    }
    state.metrics.entries.set(entries.len() as i64);
    fresher
}

fn ingest(state: &State, report: ServerReport, age: Duration, origin: ReportOrigin) {
    state.metrics.reports_ingested.inc();
    let name = report.name.clone();
    let packet = report.render();
    merge_entry(state, report, age);
    if origin != ReportOrigin::Direct {
        return;
    }
    // Forward to the home shard so the owner converges immediately
    // rather than waiting out a gossip interval.
    let home = state
        .ring
        .read()
        .shard_for(&name)
        .map(str::to_string)
        .unwrap_or_default();
    if home == state.config.name || home.is_empty() {
        return;
    }
    let Some(endpoint) = state.peers.read().get(&home).map(|p| p.endpoint.clone()) else {
        state.metrics.forward_failures.inc();
        return;
    };
    let age_ns = u64::try_from(age.as_nanos()).unwrap_or(u64::MAX);
    match send_expect_ok(
        state,
        &endpoint,
        &format!("fed-report {age_ns} fwd\n{packet}\n"),
    ) {
        Ok(()) => state.metrics.reports_forwarded.inc(),
        Err(_) => state.metrics.forward_failures.inc(),
    }
}

/// Dial `endpoint`, send `body`, and require an `ok` first reply line.
fn send_expect_ok(state: &State, endpoint: &str, body: &str) -> io::Result<()> {
    let stream = state.config.dialer.dial(endpoint, state.config.timeout)?;
    stream.set_read_timeout(Some(state.config.timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(body.as_bytes())?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.starts_with("ok") {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer rejected: {}", line.trim()),
        ))
    }
}

/// The full-state body exchanged by gossip and sync: the sender's
/// identity, its membership view, and every entry with its age.
fn state_body(state: &State) -> String {
    let now = state.config.clock.now();
    let mut out = format!(
        "shard {} {} {}\n",
        escape(state.config.name.as_bytes()),
        escape(state.config.endpoint.as_bytes()),
        state.metrics.reports_forwarded.get()
    );
    {
        let peers = state.peers.read();
        for (name, peer) in peers.iter() {
            out.push_str(&format!(
                "peer {} {}\n",
                escape(name.as_bytes()),
                escape(peer.endpoint.as_bytes())
            ));
        }
    }
    {
        let entries = state.entries.read();
        for entry in entries.values() {
            let age = now.duration_since(entry.last_seen);
            if age >= state.config.expiry * 4 {
                continue;
            }
            let age_ns = u64::try_from(age.as_nanos()).unwrap_or(u64::MAX);
            out.push_str(&format!("entry {age_ns}\n{}\n", entry.report.render()));
        }
    }
    out.push_str("end\n");
    out
}

/// Merge a full-state body from a peer (gossip push or sync pull).
fn merge_body<R: BufRead>(state: &State, reader: &mut R) -> io::Result<u64> {
    let mut merged = 0u64;
    let unesc = |s: &str| -> String {
        unescape(s)
            .and_then(|b| String::from_utf8(b).ok())
            .unwrap_or_else(|| s.to_string())
    };
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end_matches(['\r', '\n']);
        let mut words = line.split(' ');
        match words.next().unwrap_or("") {
            "shard" => {
                let (Some(name), Some(endpoint)) = (words.next(), words.next()) else {
                    continue;
                };
                let name = unesc(name);
                let endpoint = unesc(endpoint);
                let forwarded: u64 = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
                learn_peer(state, &name, &endpoint, true, forwarded);
            }
            "peer" => {
                let (Some(name), Some(endpoint)) = (words.next(), words.next()) else {
                    continue;
                };
                learn_peer(state, &unesc(name), &unesc(endpoint), false, 0);
            }
            "entry" => {
                let age_ns: u64 = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
                let packet = read_packet(reader)?;
                if let Some(report) = ServerReport::parse(&packet) {
                    if merge_entry(state, report, Duration::from_nanos(age_ns)) {
                        merged += 1;
                    }
                }
            }
            "end" => break,
            _ => {}
        }
    }
    Ok(merged)
}

/// Fold a peer into membership (and the ring). `heard` marks direct
/// contact (the peer itself talked to us), which refreshes liveness
/// and its advertised forwarded counter.
fn learn_peer(state: &State, name: &str, endpoint: &str, heard: bool, forwarded: u64) {
    if name == state.config.name || name.is_empty() {
        return;
    }
    let mut peers = state.peers.write();
    let peer = peers.entry(name.to_string()).or_insert_with(|| Peer {
        endpoint: endpoint.to_string(),
        last_heard: None,
        forwarded: 0,
    });
    if !endpoint.is_empty() {
        peer.endpoint = endpoint.to_string();
    }
    if heard {
        peer.last_heard = Some(state.config.clock.now());
        peer.forwarded = forwarded;
    }
    drop(peers);
    state.ring.write().add_peer(name);
}

fn gossip_once(state: &State) -> io::Result<String> {
    let peers: Vec<(String, String)> = {
        let peers = state.peers.read();
        peers
            .iter()
            .map(|(n, p)| (n.clone(), p.endpoint.clone()))
            .collect()
    };
    if peers.is_empty() {
        return Err(io::Error::new(io::ErrorKind::NotFound, "no peers"));
    }
    let at = {
        let mut rr = state.round_robin.lock();
        let at = *rr % peers.len();
        *rr = rr.wrapping_add(1);
        at
    };
    let (name, endpoint) = &peers[at];
    state.metrics.gossip_rounds.inc();
    let body = format!("fed-gossip\n{}", state_body(state));
    match send_expect_ok(state, endpoint, &body) {
        Ok(()) => {
            if let Some(p) = state.peers.write().get_mut(name) {
                p.last_heard = Some(state.config.clock.now());
            }
            Ok(name.clone())
        }
        Err(e) => {
            state.metrics.gossip_failures.inc();
            Err(e)
        }
    }
}

/// Pull a peer's full state (`fed-sync`) and merge it.
fn pull_sync(state: &State, endpoint: &str) -> io::Result<()> {
    let stream = state.config.dialer.dial(endpoint, state.config.timeout)?;
    stream.set_read_timeout(Some(state.config.timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"fed-sync\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    // Require the body to start with the peer's shard line; an empty
    // or garbled reply is a failed sync, not a silent no-op.
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 || !first.starts_with("shard ") {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad sync reply"));
    }
    merge_body(state, &mut BufReader::new(first.as_bytes().chain(reader)))?;
    Ok(())
}

/// The `fed-status` JSON object: this shard's identity, ring
/// parameters, counters, and per-peer liveness/forwarding — what
/// `tss-top` renders as the federation table.
fn status_json(state: &State) -> Value {
    let now = state.config.clock.now();
    let entries = {
        let entries = state.entries.read();
        entries
            .values()
            .filter(|e| now.duration_since(e.last_seen) < state.config.expiry)
            .count() as u64
    };
    let liveness_window = state.config.gossip_interval * 3;
    let peers: Vec<Value> = state
        .peers
        .read()
        .iter()
        .map(|(name, p)| {
            let heard_age = p.last_heard.map(|t| now.duration_since(t));
            Value::Object(vec![
                ("name".into(), Value::from(name.as_str())),
                ("endpoint".into(), Value::from(p.endpoint.as_str())),
                (
                    "alive".into(),
                    Value::Bool(heard_age.is_some_and(|a| a < liveness_window)),
                ),
                ("forwarded".into(), Value::Uint(p.forwarded)),
                (
                    "heard_age_ns".into(),
                    match heard_age {
                        Some(a) => Value::Uint(u64::try_from(a.as_nanos()).unwrap_or(u64::MAX)),
                        None => Value::Null,
                    },
                ),
            ])
        })
        .collect();
    Value::Object(vec![
        ("shard".into(), Value::from(state.config.name.as_str())),
        (
            "endpoint".into(),
            Value::from(state.config.endpoint.as_str()),
        ),
        ("seed".into(), Value::Uint(state.config.seed)),
        ("vnodes".into(), Value::Uint(state.config.vnodes as u64)),
        ("entries".into(), Value::Uint(entries)),
        (
            "forwarded".into(),
            Value::Uint(state.metrics.reports_forwarded.get()),
        ),
        (
            "gossip_failures".into(),
            Value::Uint(state.metrics.gossip_failures.get()),
        ),
        ("peers".into(), Value::Array(peers)),
    ])
}

//! The seeded consistent-hash ring catalogs shard the fleet over.
//!
//! Every server name hashes to a point on a ring of `vnodes` virtual
//! points per shard; the shard owning the first point at or clockwise
//! of the key's hash is the *home shard* for that server's reports.
//! Two properties make this the right sharding function for a
//! federation whose membership changes while servers keep reporting:
//!
//! * **Stability** — when a shard joins, the only keys that change
//!   home are the ones the new shard now owns (about `K/n` of them);
//!   when a shard leaves, only its own keys move. No key ever moves
//!   *between* surviving shards (`ring_props.rs` proves this
//!   structurally, not statistically).
//! * **Balance** — with enough virtual points the largest shard's
//!   share stays within a small constant of the smallest's; the
//!   property suite enforces a 2× bound across 3–16 shards at the
//!   default `vnodes`.
//!
//! The ring is *seeded*: all shards (and observers like `tss-top`)
//! construct it from the same `(seed, vnodes, member names)` triple
//! and therefore agree on every key's home without any coordination.

use std::collections::BTreeSet;

/// Default virtual points per shard. High enough that the 2× balance
/// bound holds comfortably up to 16 shards; cheap enough that ring
/// rebuilds (membership changes only) stay microseconds.
pub const DEFAULT_VNODES: usize = 128;

/// SplitMix64 finalizer: a full-avalanche mix of one 64-bit word.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seeded string hash: fold each byte through the mixer so nearby
/// names (server-01, server-02) land far apart on the ring.
fn hash_str(seed: u64, s: &str) -> u64 {
    let mut h = mix(seed ^ 0xA076_1D64_78BD_642F);
    for &b in s.as_bytes() {
        h = mix(h ^ u64::from(b));
    }
    h
}

/// A seeded consistent-hash ring over named shards.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: usize,
    peers: BTreeSet<String>,
    /// Virtual points sorted by position; each names its shard.
    points: Vec<(u64, String)>,
}

impl HashRing {
    /// An empty ring with the given seed and virtual-point count.
    pub fn new(seed: u64, vnodes: usize) -> HashRing {
        HashRing {
            seed,
            vnodes: vnodes.max(1),
            peers: BTreeSet::new(),
            points: Vec::new(),
        }
    }

    /// A ring pre-populated with `names`.
    pub fn with_peers<I, S>(seed: u64, vnodes: usize, names: I) -> HashRing
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut ring = HashRing::new(seed, vnodes);
        for name in names {
            ring.add_peer(&name.into());
        }
        ring
    }

    /// The seed all members must share.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual points per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Member shard names, sorted.
    pub fn peers(&self) -> impl Iterator<Item = &str> {
        self.peers.iter().map(String::as_str)
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when no shard is a member.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// True if `name` is a member.
    pub fn contains(&self, name: &str) -> bool {
        self.peers.contains(name)
    }

    /// Add a shard; returns false if it was already a member.
    pub fn add_peer(&mut self, name: &str) -> bool {
        if !self.peers.insert(name.to_string()) {
            return false;
        }
        for i in 0..self.vnodes {
            let point = hash_str(self.seed, &format!("{name}#{i}"));
            let at = self
                .points
                .binary_search_by(|(p, n)| (*p, n.as_str()).cmp(&(point, name)))
                .unwrap_err();
            self.points.insert(at, (point, name.to_string()));
        }
        true
    }

    /// Remove a shard; returns false if it was not a member.
    pub fn remove_peer(&mut self, name: &str) -> bool {
        if !self.peers.remove(name) {
            return false;
        }
        self.points.retain(|(_, n)| n != name);
        true
    }

    /// The home shard for `key` (a server name): the owner of the
    /// first virtual point at or clockwise of the key's hash.
    pub fn shard_for(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_str(self.seed ^ 0x5151_5151_5151_5151, key);
        let at = self.points.partition_point(|(p, _)| *p < h);
        let (_, name) = &self.points[at % self.points.len()];
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_has_no_home() {
        let ring = HashRing::new(7, 8);
        assert!(ring.shard_for("x").is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn assignment_is_deterministic_across_constructions() {
        let a = HashRing::with_peers(42, DEFAULT_VNODES, ["c1", "c2", "c3"]);
        // Same members added in a different order: identical ring.
        let b = HashRing::with_peers(42, DEFAULT_VNODES, ["c3", "c1", "c2"]);
        for i in 0..500 {
            let key = format!("server-{i}");
            assert_eq!(a.shard_for(&key), b.shard_for(&key));
        }
    }

    #[test]
    fn different_seeds_give_different_rings() {
        let a = HashRing::with_peers(1, DEFAULT_VNODES, ["c1", "c2", "c3"]);
        let b = HashRing::with_peers(2, DEFAULT_VNODES, ["c1", "c2", "c3"]);
        let differing = (0..500)
            .filter(|i| {
                let key = format!("server-{i}");
                a.shard_for(&key) != b.shard_for(&key)
            })
            .count();
        assert!(
            differing > 100,
            "only {differing}/500 keys moved with the seed"
        );
    }

    #[test]
    fn add_remove_round_trips() {
        let mut ring = HashRing::with_peers(9, 16, ["a", "b"]);
        let before: Vec<_> = (0..100)
            .map(|i| ring.shard_for(&format!("k{i}")).unwrap().to_string())
            .collect();
        assert!(ring.add_peer("c"));
        assert!(!ring.add_peer("c"), "double add is a no-op");
        assert!(ring.remove_peer("c"));
        assert!(!ring.remove_peer("c"), "double remove is a no-op");
        let after: Vec<_> = (0..100)
            .map(|i| ring.shard_for(&format!("k{i}")).unwrap().to_string())
            .collect();
        assert_eq!(before, after, "join+leave restores every assignment");
    }
}

//! THIRDPUT distribution trees: N replicas in O(log N) time.
//!
//! Pushing N replicas from one source serially costs N source
//! uplinks back to back. But THIRDPUT moves data *server-to-server*:
//! once any depot holds the file, it can push onward. So
//! distribution runs in doubling waves — every server that already
//! holds the data pushes to one that does not, and the holder set
//! doubles each wave: 1 → 2 → 4 → 8. Eight replicas cost three
//! wave-times instead of seven serial pushes (§6 of the paper calls
//! this out as the motivation for third-party transfer).
//!
//! The tree is resilient mid-flight: a failed push is retried
//! against a *different* holder (the orphaned subtree re-parents),
//! holders that keep failing are demoted, and the whole transfer is
//! bounded by per-target attempt budgets. Per-hop telemetry
//! (`tree.hops`, `tree.depth`, `tree.bytes_relayed`, `tree.retries`,
//! `tree.reparents`) ties every fault to its recovery, and the
//! `on_wave` hook gives chaos tests a deterministic seam to kill an
//! interior node between waves.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use chirp_proto::Clock;
use parking_lot::Mutex;
use telemetry::Registry;
use tss_core::cfs::Cfs;

/// One location in a distribution tree: a server and a path on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeTarget {
    /// File server endpoint, `host:port`.
    pub endpoint: String,
    /// Path of the data on that server.
    pub path: String,
}

impl TreeTarget {
    /// A target at `endpoint:path`.
    pub fn new(endpoint: &str, path: &str) -> TreeTarget {
        TreeTarget {
            endpoint: endpoint.to_string(),
            path: path.to_string(),
        }
    }
}

/// Tuning for a tree distribution.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// The clock retry backoff sleeps on (virtual under simulation).
    pub clock: Clock,
    /// Pause before re-trying failed pushes.
    pub backoff: Duration,
    /// Push attempts per target before it is abandoned.
    pub max_attempts: u32,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            clock: Clock::wall(),
            backoff: Duration::from_millis(50),
            max_attempts: 3,
        }
    }
}

/// What a distribution accomplished.
#[derive(Debug, Clone, Default)]
pub struct TreeReport {
    /// Successful pushes (tree edges traversed).
    pub hops: u64,
    /// Waves executed — the tree's depth, ~⌈log₂(replicas)⌉ when
    /// nothing fails.
    pub depth: u64,
    /// Bytes pushed by servers other than the original source —
    /// load the tree took *off* the source's uplink.
    pub bytes_relayed: u64,
    /// Failed pushes that were retried.
    pub retries: u64,
    /// Targets that moved to a different parent after a failure.
    pub reparents: u64,
    /// Targets that now hold the data.
    pub completed: Vec<TreeTarget>,
    /// Targets abandoned after exhausting their attempt budget.
    pub failed: Vec<TreeTarget>,
}

/// Internal per-wave push outcome.
struct PushOutcome {
    target: TreeTarget,
    attempts: u32,
    holder_at: usize,
    result: std::io::Result<u64>,
}

/// Distribute `source`'s file to every target as a doubling tree.
///
/// `conn` yields a client for an endpoint (cached upstream — the
/// tree dials each holder at most once per wave). When `registry` is
/// given, per-hop telemetry lands in `tree.*`. `on_wave(w)` runs
/// after wave `w` completes (1-based) — the deterministic seam chaos
/// tests use to fail an interior holder mid-transfer.
pub fn distribute<F>(
    source: &TreeTarget,
    targets: &[TreeTarget],
    conn: F,
    cfg: &TreeConfig,
    registry: Option<&Registry>,
    mut on_wave: Option<&mut (dyn FnMut(u64) + Send)>,
) -> TreeReport
where
    F: Fn(&str) -> Arc<Cfs> + Sync,
{
    let mut report = TreeReport::default();
    let mut holders: Vec<TreeTarget> = vec![source.clone()];
    let mut strikes: HashMap<String, u32> = HashMap::new();
    let mut pending: std::collections::VecDeque<(TreeTarget, u32)> =
        targets.iter().map(|t| (t.clone(), 0u32)).collect();

    while !pending.is_empty() && !holders.is_empty() {
        report.depth += 1;
        let wave = report.depth;
        let fanout = holders.len().min(pending.len());
        let batch: Vec<(TreeTarget, u32, usize)> = (0..fanout)
            .map(|k| {
                let (target, attempts) = pending.pop_front().expect("fanout <= pending");
                // Rotate holder assignment by wave so a retried
                // target meets a *different* parent than last time.
                let holder_at = (k + wave as usize) % holders.len();
                (target, attempts, holder_at)
            })
            .collect();

        let outcomes: Mutex<Vec<PushOutcome>> = Mutex::new(Vec::with_capacity(fanout));
        std::thread::scope(|scope| {
            for (target, attempts, holder_at) in batch {
                let holder = holders[holder_at].clone();
                let conn = &conn;
                let outcomes = &outcomes;
                scope.spawn(move || {
                    let cfs = conn(&holder.endpoint);
                    let result = cfs.thirdput(&holder.path, &target.endpoint, &target.path);
                    outcomes.lock().push(PushOutcome {
                        target,
                        attempts: attempts + 1,
                        holder_at,
                        result,
                    });
                });
            }
        });

        let mut any_failed = false;
        for outcome in outcomes.into_inner() {
            let holder_endpoint = holders[outcome.holder_at].endpoint.clone();
            match outcome.result {
                Ok(n) => {
                    report.hops += 1;
                    if holder_endpoint != source.endpoint {
                        report.bytes_relayed += n;
                    }
                    report.completed.push(outcome.target.clone());
                    holders.push(outcome.target);
                }
                Err(_) => {
                    any_failed = true;
                    report.retries += 1;
                    *strikes.entry(holder_endpoint).or_default() += 1;
                    if outcome.attempts >= cfg.max_attempts {
                        report.failed.push(outcome.target);
                    } else {
                        report.reparents += 1;
                        pending.push_back((outcome.target, outcome.attempts));
                    }
                }
            }
        }
        // Demote holders that failed twice — a dead interior node
        // must not keep adopting orphans. The source is exempt: with
        // no holders at all the transfer cannot proceed.
        holders.retain(|h| {
            h.endpoint == source.endpoint || strikes.get(&h.endpoint).copied().unwrap_or(0) < 2
        });

        if let Some(hook) = on_wave.as_deref_mut() {
            hook(wave);
        }
        if any_failed && !pending.is_empty() {
            cfg.clock.sleep(cfg.backoff);
        }
    }
    // Holders exhausted with work left: everything remaining failed.
    for (target, _) in pending {
        report.failed.push(target);
    }

    if let Some(reg) = registry {
        reg.counter("tree.hops").add(report.hops);
        reg.counter("tree.bytes_relayed").add(report.bytes_relayed);
        reg.counter("tree.retries").add(report.retries);
        reg.counter("tree.reparents").add(report.reparents);
        reg.gauge("tree.depth").set(report.depth as i64);
    }
    report
}

/// The depth a fault-free doubling tree needs for `n` targets:
/// ⌈log₂(n+1)⌉ waves (holders double each wave starting from one).
pub fn ideal_depth(n: usize) -> u64 {
    let mut depth = 0u64;
    let mut holders = 1usize;
    let mut placed = 0usize;
    while placed < n {
        let pushes = holders.min(n - placed);
        placed += pushes;
        holders += pushes;
        depth += 1;
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_depth_is_logarithmic() {
        assert_eq!(ideal_depth(0), 0);
        assert_eq!(ideal_depth(1), 1);
        assert_eq!(ideal_depth(2), 2);
        assert_eq!(ideal_depth(3), 2);
        assert_eq!(ideal_depth(7), 3);
        assert_eq!(ideal_depth(8), 4);
        assert_eq!(ideal_depth(15), 4);
    }
}

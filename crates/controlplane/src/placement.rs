//! Active GEMS placement from live catalog state.
//!
//! The classic GEMS placement probes every pool server with a
//! `statfs` RPC at ingest time — O(pool) round trips per placement,
//! and blind to load. The placement engine here instead ranks
//! candidates from the catalog's already-collected reports: free
//! space and total capacity straight from each report, load from the
//! `rpc.*.count` counters the servers publish in their metrics
//! (PR 3). One catalog query prices the whole fleet.
//!
//! Policies are pluggable behind [`PlacementPolicy`]; the engine
//! implements [`gems::Placer`], so `GemsConfig::with_placer` swaps it
//! into an unmodified GEMS stack.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use catalog::client::query_via;
use catalog::ServerReport;
use chirp_proto::transport::Dialer;

/// One placement candidate, priced from its latest catalog report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Server name, as reported to the catalog.
    pub name: String,
    /// Endpoint (`host:port`) clients dial.
    pub address: String,
    /// Free bytes at last report.
    pub free: u64,
    /// Total bytes at last report.
    pub total: u64,
    /// Cumulative RPCs served at last report — the load signal.
    pub rpcs: u64,
}

impl Candidate {
    /// Build from a catalog report; load is the sum of the server's
    /// `rpc.<op>.count` counters (zero if it reports no metrics).
    pub fn from_report(r: &ServerReport) -> Candidate {
        Candidate {
            name: r.name.clone(),
            address: r.address.clone(),
            free: r.free,
            total: r.total,
            rpcs: r.metrics.counter_sum("rpc."),
        }
    }
}

/// A pluggable ranking of placement candidates, best first.
pub trait PlacementPolicy: Send + Sync + std::fmt::Debug {
    /// Policy name, for logs and status faces.
    fn name(&self) -> &'static str;
    /// Reorder `candidates` best-first in place.
    fn rank(&self, candidates: &mut [Candidate]);
}

/// Prefer lightly loaded servers; break ties towards free space,
/// then name (so equal servers rank deterministically).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpreadByLoad;

impl PlacementPolicy for SpreadByLoad {
    fn name(&self) -> &'static str {
        "spread-by-load"
    }

    fn rank(&self, candidates: &mut [Candidate]) {
        candidates.sort_by(|a, b| {
            a.rpcs
                .cmp(&b.rpcs)
                .then(b.free.cmp(&a.free))
                .then(a.name.cmp(&b.name))
        });
    }
}

/// Prefer servers whose address shares the longest prefix with a
/// reference address (same host, then same subnet, then anything);
/// break ties towards free space, then name.
#[derive(Debug, Clone)]
pub struct LocalityFirst {
    /// The address placements should land near (e.g. the client's
    /// own endpoint).
    pub near: String,
}

impl LocalityFirst {
    /// Prefer candidates near `near`.
    pub fn new(near: &str) -> LocalityFirst {
        LocalityFirst {
            near: near.to_string(),
        }
    }
}

/// Length of the longest common prefix of two addresses.
fn common_prefix(a: &str, b: &str) -> usize {
    a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
}

impl PlacementPolicy for LocalityFirst {
    fn name(&self) -> &'static str {
        "locality-first"
    }

    fn rank(&self, candidates: &mut [Candidate]) {
        candidates.sort_by(|a, b| {
            common_prefix(&b.address, &self.near)
                .cmp(&common_prefix(&a.address, &self.near))
                .then(b.free.cmp(&a.free))
                .then(a.name.cmp(&b.name))
        });
    }
}

/// A catalog-driven placement engine.
///
/// Queries the given catalog endpoints (first answer wins — under
/// federation any shard carries the whole fleet) and ranks the live
/// servers with its policy.
#[derive(Debug)]
pub struct PlacementEngine {
    catalogs: Vec<String>,
    dialer: Dialer,
    timeout: Duration,
    policy: Arc<dyn PlacementPolicy>,
}

impl PlacementEngine {
    /// An engine querying `catalogs` through `dialer` and ranking
    /// with `policy`.
    pub fn new(
        catalogs: Vec<String>,
        dialer: Dialer,
        timeout: Duration,
        policy: Arc<dyn PlacementPolicy>,
    ) -> PlacementEngine {
        PlacementEngine {
            catalogs,
            dialer,
            timeout,
            policy,
        }
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The live fleet, ranked best-first by the policy.
    pub fn candidates(&self) -> io::Result<Vec<Candidate>> {
        let mut last: io::Error = io::Error::new(io::ErrorKind::NotConnected, "no catalogs");
        for endpoint in &self.catalogs {
            match query_via(&self.dialer, endpoint, self.timeout) {
                Ok(reports) => {
                    let mut candidates: Vec<Candidate> =
                        reports.iter().map(Candidate::from_report).collect();
                    self.policy.rank(&mut candidates);
                    return Ok(candidates);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// The `n` best candidates not in `exclude` (matched by address
    /// or name — GEMS replica lists hold endpoints).
    pub fn pick(&self, n: usize, exclude: &[String]) -> io::Result<Vec<Candidate>> {
        let candidates = self.candidates()?;
        Ok(candidates
            .into_iter()
            .filter(|c| !exclude.iter().any(|x| *x == c.address || *x == c.name))
            .take(n)
            .collect())
    }
}

impl gems::Placer for PlacementEngine {
    /// Rank GEMS pool endpoints by live catalog state: candidates
    /// are matched to the catalog by address; endpoints the catalog
    /// has no live report for are dropped (GEMS falls back to its
    /// default policy when nothing ranks).
    fn rank(&self, pool: &[String]) -> Vec<String> {
        let Ok(ranked) = self.candidates() else {
            return Vec::new();
        };
        ranked
            .into_iter()
            .filter_map(|c| {
                pool.iter()
                    .find(|p| **p == c.address || **p == c.name)
                    .cloned()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(name: &str, free: u64, rpcs: u64) -> Candidate {
        Candidate {
            name: name.into(),
            address: format!("{name}:9094"),
            free,
            total: 1000,
            rpcs,
        }
    }

    #[test]
    fn spread_by_load_prefers_idle_then_free() {
        let mut c = vec![
            candidate("busy", 900, 500),
            candidate("idle-small", 100, 2),
            candidate("idle-big", 800, 2),
        ];
        SpreadByLoad.rank(&mut c);
        assert_eq!(c[0].name, "idle-big", "ties on load break to free space");
        assert_eq!(c[1].name, "idle-small");
        assert_eq!(c[2].name, "busy");
    }

    #[test]
    fn locality_first_prefers_shared_prefix() {
        let mut c = vec![candidate("far", 900, 0), candidate("near", 100, 0)];
        c[0].address = "10.99.0.1:9094".into();
        c[1].address = "10.77.0.5:9094".into();
        LocalityFirst::new("10.77.0.9:9094").rank(&mut c);
        assert_eq!(c[0].name, "near");
    }

    #[test]
    fn ranking_is_deterministic_on_full_ties() {
        let mut a = vec![candidate("b", 10, 1), candidate("a", 10, 1)];
        let mut b = vec![candidate("a", 10, 1), candidate("b", 10, 1)];
        SpreadByLoad.rank(&mut a);
        SpreadByLoad.rank(&mut b);
        assert_eq!(a, b);
        assert_eq!(a[0].name, "a");
    }
}

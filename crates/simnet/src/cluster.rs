//! The DSFS scalability experiment (Figures 6–8): clients randomly
//! reading large files out of a DSFS spread over 1–8 servers behind a
//! commodity switch.
//!
//! Flow-level simulation: each client keeps exactly one whole-file
//! read in flight; active flows share ports, backplane, and disks by
//! max-min fairness; the only events are flow completions. Per-server
//! LRU caches decide whether a read is disk-bound.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cache::LruFileCache;
use crate::costs::CostModel;
use crate::fair::{max_min_rates, Flow, Resource};

/// How clients pick the next file to read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Uniform random choice — the paper's workload.
    Uniform,
    /// Zipf-distributed popularity with the given exponent; a hot-set
    /// workload that concentrates load on the servers holding popular
    /// files (used by the ablation study).
    Zipf(f64),
}

/// Parameters of one cluster run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterParams {
    /// Number of file servers (the x-axis of Figs 6–8).
    pub servers: usize,
    /// Number of client nodes generating load.
    pub clients: usize,
    /// Number of files in the filesystem.
    pub files: u64,
    /// Size of each file in bytes.
    pub file_size: u64,
    /// Simulated duration to measure over (seconds).
    pub duration: f64,
    /// Warmup period excluded from the measurement (seconds).
    pub warmup: f64,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
    /// File popularity distribution.
    pub access: AccessPattern,
}

impl ClusterParams {
    /// The paper's Figure 6 workload: 128 files of 1 MB (net-bound).
    pub fn fig6(servers: usize, clients: usize) -> ClusterParams {
        ClusterParams {
            servers,
            clients,
            files: 128,
            file_size: 1 << 20,
            duration: 60.0,
            warmup: 10.0,
            seed: 42,
            access: AccessPattern::Uniform,
        }
    }

    /// Figure 7: 1280 files of 1 MB (mixed-bound). The longer warmup
    /// lets the buffer caches reach steady state before measuring.
    pub fn fig7(servers: usize, clients: usize) -> ClusterParams {
        ClusterParams {
            files: 1280,
            duration: 240.0,
            warmup: 150.0,
            ..ClusterParams::fig6(servers, clients)
        }
    }

    /// Figure 8: 1280 files of 10 MB (disk-bound).
    pub fn fig8(servers: usize, clients: usize) -> ClusterParams {
        ClusterParams {
            files: 1280,
            file_size: 10 << 20,
            duration: 400.0,
            warmup: 100.0,
            ..ClusterParams::fig6(servers, clients)
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterResult {
    /// Aggregate client-observed throughput (bytes/s) over the
    /// measurement window.
    pub throughput: f64,
    /// Fraction of reads served from server buffer caches.
    pub cache_hit_rate: f64,
}

impl ClusterResult {
    /// Throughput in MB/s (the paper's unit).
    pub fn mb_per_s(&self) -> f64 {
        self.throughput / 1e6
    }
}

struct ActiveFlow {
    client: usize,
    server: usize,
    file: u64,
    remaining: f64,
    disk_bound: bool,
}

/// Run the scalability experiment.
pub fn run(model: &CostModel, p: ClusterParams) -> ClusterResult {
    assert!(p.servers > 0 && p.clients > 0 && p.files > 0);
    let mut rng = SmallRng::seed_from_u64(p.seed);

    // Files are spread round-robin over servers, as DSFS round-robin
    // placement would.
    let server_of = |file: u64| (file % p.servers as u64) as usize;

    // Popularity CDF for skewed access; empty for uniform.
    let zipf_cdf: Vec<f64> = match p.access {
        AccessPattern::Uniform => Vec::new(),
        AccessPattern::Zipf(theta) => {
            let mut weights: Vec<f64> = (1..=p.files)
                .map(|rank| 1.0 / (rank as f64).powf(theta))
                .collect();
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            for w in &mut weights {
                acc += *w / total;
                *w = acc;
            }
            weights
        }
    };
    let pick_file = |rng: &mut SmallRng| -> u64 {
        if zipf_cdf.is_empty() {
            rng.gen_range(0..p.files)
        } else {
            let u: f64 = rng.gen();
            zipf_cdf.partition_point(|&c| c < u) as u64
        }
    };

    let mut capacity: HashMap<Resource, f64> = HashMap::new();
    capacity.insert(Resource::Backplane, model.backplane_bw);
    for c in 0..p.clients {
        capacity.insert(Resource::ClientNic(c), model.port_bw);
    }
    for s in 0..p.servers {
        capacity.insert(Resource::ServerNic(s), model.port_bw);
        capacity.insert(Resource::Disk(s), model.disk_bw);
    }

    let mut caches: Vec<LruFileCache> = (0..p.servers)
        .map(|_| LruFileCache::new(model.server_cache))
        .collect();

    let mut flows: Vec<ActiveFlow> = Vec::with_capacity(p.clients);
    let mut hits = 0u64;
    let mut reads = 0u64;
    let start_flow = |client: usize,
                      rng: &mut SmallRng,
                      caches: &mut Vec<LruFileCache>,
                      hits: &mut u64,
                      reads: &mut u64|
     -> ActiveFlow {
        let file = pick_file(rng);
        let server = server_of(file);
        let cached = caches[server].contains(file);
        *reads += 1;
        if cached {
            *hits += 1;
        }
        ActiveFlow {
            client,
            server,
            file,
            remaining: p.file_size as f64,
            disk_bound: !cached,
        }
    };
    for c in 0..p.clients {
        let f = start_flow(c, &mut rng, &mut caches, &mut hits, &mut reads);
        flows.push(f);
    }

    let mut now = 0.0f64;
    let mut measured_bytes = 0.0f64;
    let end = p.warmup + p.duration;
    while now < end {
        let flow_specs: Vec<Flow> = flows
            .iter()
            .map(|f| {
                let mut uses = vec![
                    Resource::ClientNic(f.client),
                    Resource::ServerNic(f.server),
                    Resource::Backplane,
                ];
                if f.disk_bound {
                    uses.push(Resource::Disk(f.server));
                }
                Flow { uses }
            })
            .collect();
        let rates = max_min_rates(&flow_specs, &capacity);
        // Earliest completion decides the step.
        let mut dt = f64::INFINITY;
        for (f, &r) in flows.iter().zip(&rates) {
            if r > 0.0 {
                dt = dt.min(f.remaining / r);
            }
        }
        assert!(dt.is_finite(), "no flow can make progress");
        let dt = dt.min(end - now);
        // Advance everyone.
        for (f, &r) in flows.iter_mut().zip(&rates) {
            let moved = r * dt;
            let counted = moved.min(f.remaining);
            f.remaining -= counted;
            if now >= p.warmup {
                measured_bytes += counted;
            } else if now + dt > p.warmup {
                // The step straddles the warmup boundary; count the
                // post-warmup share.
                measured_bytes += counted * ((now + dt - p.warmup) / dt);
            }
        }
        now += dt;
        // Complete finished flows and start replacements.
        for slot in flows.iter_mut() {
            if slot.remaining <= 1e-6 {
                caches[slot.server].insert(slot.file, p.file_size);
                let client = slot.client;
                *slot = start_flow(client, &mut rng, &mut caches, &mut hits, &mut reads);
            }
        }
    }

    ClusterResult {
        throughput: measured_bytes / p.duration,
        cache_hit_rate: if reads == 0 {
            0.0
        } else {
            hits as f64 / reads as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&model(), ClusterParams::fig6(4, 8));
        let b = run(&model(), ClusterParams::fig6(4, 8));
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    }

    #[test]
    fn fig6_one_server_saturates_one_port() {
        // "One server can transmit at 100 MB/s, near the practical
        // limit of TCP on a 1Gb port."
        let r = run(&model(), ClusterParams::fig6(1, 8));
        assert!(
            (85.0..110.0).contains(&r.mb_per_s()),
            "got {:.1} MB/s",
            r.mb_per_s()
        );
        assert!(r.cache_hit_rate > 0.5, "128MB fits in one 512MB cache");
    }

    #[test]
    fn fig6_many_servers_saturate_the_backplane() {
        // "Three or more servers ... saturate the switch backplane at
        // 300 MB/s."
        let r4 = run(&model(), ClusterParams::fig6(4, 16));
        let r8 = run(&model(), ClusterParams::fig6(8, 16));
        assert!(
            (260.0..310.0).contains(&r4.mb_per_s()),
            "4 servers: {:.1}",
            r4.mb_per_s()
        );
        assert!(
            (260.0..310.0).contains(&r8.mb_per_s()),
            "8 servers: {:.1}",
            r8.mb_per_s()
        );
    }

    #[test]
    fn fig7_crossover_at_three_servers() {
        // 1280 MB over per-server 512 MB caches: <3 servers disk-bound,
        // >=3 servers memory+switch bound.
        let r1 = run(&model(), ClusterParams::fig7(1, 16));
        let r4 = run(&model(), ClusterParams::fig7(4, 16));
        assert!(
            r1.mb_per_s() < 40.0,
            "1 server disk-bound: {:.1}",
            r1.mb_per_s()
        );
        assert!(
            r4.mb_per_s() > 150.0,
            "4 servers cache-resident: {:.1}",
            r4.mb_per_s()
        );
    }

    #[test]
    fn fig8_disk_bound_scales_linearly() {
        // "A single server is able to sustain 10 MB/s, the raw disk
        // throughput. As servers are added, the throughput increases
        // roughly linearly."
        let r1 = run(&model(), ClusterParams::fig8(1, 16));
        let r4 = run(&model(), ClusterParams::fig8(4, 16));
        let r8 = run(&model(), ClusterParams::fig8(8, 16));
        assert!(
            (8.0..16.0).contains(&r1.mb_per_s()),
            "1 server: {:.1}",
            r1.mb_per_s()
        );
        let ratio4 = r4.mb_per_s() / r1.mb_per_s();
        let ratio8 = r8.mb_per_s() / r1.mb_per_s();
        assert!((3.0..5.5).contains(&ratio4), "4-server scaling {ratio4:.2}");
        assert!(
            (6.0..10.5).contains(&ratio8),
            "8-server scaling {ratio8:.2}"
        );
    }

    #[test]
    fn zipf_access_is_deterministic_and_in_range() {
        let mut p = ClusterParams::fig6(4, 8);
        p.access = AccessPattern::Zipf(1.5);
        let a = run(&model(), p);
        let b = run(&model(), p);
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert!(a.throughput > 0.0);
        // Skew raises the hit rate: the hot files are always resident.
        let uniform = run(&model(), ClusterParams::fig6(4, 8));
        assert!(a.cache_hit_rate >= uniform.cache_hit_rate * 0.99);
    }

    #[test]
    fn more_clients_never_reduce_throughput_materially() {
        let few = run(&model(), ClusterParams::fig6(4, 2));
        let many = run(&model(), ClusterParams::fig6(4, 16));
        assert!(many.throughput >= 0.9 * few.throughput);
    }
}

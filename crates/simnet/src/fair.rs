//! Max-min fair bandwidth allocation by progressive filling.
//!
//! Every active flow traverses a set of resources (its client's NIC,
//! the switch backplane, its server's NIC, possibly that server's
//! disk). All flows' rates grow together until some resource
//! saturates; the flows through it are frozen at the current level and
//! filling continues with the rest. This is the classic fluid model of
//! TCP-fair sharing, adequate for the paper's throughput curves where
//! flows are long relative to RTT.

use std::collections::HashMap;

/// A resource in the simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// One client's switch port.
    ClientNic(usize),
    /// One server's switch port.
    ServerNic(usize),
    /// The commodity switch's shared backplane.
    Backplane,
    /// One server's disk (serializes cache misses).
    Disk(usize),
}

/// One flow: the resources it traverses.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Resources this flow consumes, without duplicates.
    pub uses: Vec<Resource>,
}

/// Compute max-min fair rates (bytes/s) for `flows` over `capacity`.
///
/// Flows naming a resource absent from `capacity` are treated as
/// unconstrained by it. A flow with no constraining resources gets
/// `f64::INFINITY`; callers give every flow at least one finite
/// resource.
pub fn max_min_rates(flows: &[Flow], capacity: &HashMap<Resource, f64>) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut fixed = vec![false; n];
    let mut level = 0.0f64;
    loop {
        // For each resource: how much more can the common level grow
        // before it saturates?
        let mut next_level = f64::INFINITY;
        let mut bottleneck: Option<Resource> = None;
        for (&res, &cap) in capacity {
            let mut unfixed = 0usize;
            let mut fixed_usage = 0.0f64;
            for (i, f) in flows.iter().enumerate() {
                if !f.uses.contains(&res) {
                    continue;
                }
                if fixed[i] {
                    fixed_usage += rates[i];
                } else {
                    unfixed += 1;
                }
            }
            if unfixed == 0 {
                continue;
            }
            let candidate = (cap - fixed_usage) / unfixed as f64;
            if candidate < next_level {
                next_level = candidate;
                bottleneck = Some(res);
            }
        }
        let Some(bottleneck) = bottleneck else {
            // No constraining resource left: remaining flows are
            // unbounded.
            for i in 0..n {
                if !fixed[i] {
                    rates[i] = f64::INFINITY;
                }
            }
            return rates;
        };
        level = next_level.max(level);
        let mut progressed = false;
        for (i, f) in flows.iter().enumerate() {
            if !fixed[i] && f.uses.contains(&bottleneck) {
                rates[i] = level;
                fixed[i] = true;
                progressed = true;
            }
        }
        if !progressed || fixed.iter().all(|&f| f) {
            // Freeze anything left at the final level (can only happen
            // when every remaining flow shares no finite resource).
            for i in 0..n {
                if !fixed[i] {
                    rates[i] = level;
                }
            }
            return rates;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(pairs: &[(Resource, f64)]) -> HashMap<Resource, f64> {
        pairs.iter().copied().collect()
    }

    fn flow(uses: &[Resource]) -> Flow {
        Flow {
            uses: uses.to_vec(),
        }
    }

    #[test]
    fn single_flow_gets_min_capacity_along_path() {
        let c = caps(&[
            (Resource::ClientNic(0), 100.0),
            (Resource::ServerNic(0), 100.0),
            (Resource::Backplane, 300.0),
            (Resource::Disk(0), 10.0),
        ]);
        let f = vec![flow(&[
            Resource::ClientNic(0),
            Resource::ServerNic(0),
            Resource::Backplane,
            Resource::Disk(0),
        ])];
        let r = max_min_rates(&f, &c);
        assert!((r[0] - 10.0).abs() < 1e-9, "disk binds: {r:?}");
    }

    #[test]
    fn equal_flows_share_equally() {
        let c = caps(&[(Resource::ServerNic(0), 100.0)]);
        let f = vec![
            flow(&[Resource::ServerNic(0)]),
            flow(&[Resource::ServerNic(0)]),
            flow(&[Resource::ServerNic(0)]),
            flow(&[Resource::ServerNic(0)]),
        ];
        let r = max_min_rates(&f, &c);
        for rate in &r {
            assert!((rate - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn backplane_caps_aggregate() {
        // 8 clients reading from 8 distinct servers: each port allows
        // 100, but the backplane allows only 300 in total.
        let mut pairs = vec![(Resource::Backplane, 300.0)];
        for i in 0..8 {
            pairs.push((Resource::ClientNic(i), 100.0));
            pairs.push((Resource::ServerNic(i), 100.0));
        }
        let c = caps(&pairs);
        let f: Vec<Flow> = (0..8)
            .map(|i| {
                flow(&[
                    Resource::ClientNic(i),
                    Resource::ServerNic(i),
                    Resource::Backplane,
                ])
            })
            .collect();
        let r = max_min_rates(&f, &c);
        let total: f64 = r.iter().sum();
        assert!((total - 300.0).abs() < 1e-6, "aggregate {total}");
        for rate in &r {
            assert!((rate - 37.5).abs() < 1e-9, "even split of 300/8");
        }
    }

    #[test]
    fn slow_flow_does_not_drag_fast_flows_down() {
        // Max-min property: one disk-bound flow leaves the rest of the
        // port to others.
        let c = caps(&[(Resource::ServerNic(0), 100.0), (Resource::Disk(0), 10.0)]);
        let f = vec![
            flow(&[Resource::ServerNic(0), Resource::Disk(0)]), // miss
            flow(&[Resource::ServerNic(0)]),                    // hit
        ];
        let r = max_min_rates(&f, &c);
        assert!((r[0] - 10.0).abs() < 1e-9);
        assert!((r[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn work_conservation_on_every_saturated_resource() {
        let c = caps(&[
            (Resource::ServerNic(0), 100.0),
            (Resource::ServerNic(1), 100.0),
            (Resource::Backplane, 150.0),
        ]);
        let f = vec![
            flow(&[Resource::ServerNic(0), Resource::Backplane]),
            flow(&[Resource::ServerNic(1), Resource::Backplane]),
        ];
        let r = max_min_rates(&f, &c);
        let total: f64 = r.iter().sum();
        assert!((total - 150.0).abs() < 1e-6);
    }

    #[test]
    fn empty_input_is_fine() {
        let r = max_min_rates(&[], &caps(&[(Resource::Backplane, 1.0)]));
        assert!(r.is_empty());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_flows() -> impl Strategy<Value = Vec<Flow>> {
            proptest::collection::vec(
                proptest::collection::vec(0usize..6, 1..4).prop_map(|ids| Flow {
                    uses: {
                        let mut v: Vec<Resource> = ids
                            .into_iter()
                            .map(|i| match i {
                                0 => Resource::Backplane,
                                1 => Resource::ClientNic(0),
                                2 => Resource::ClientNic(1),
                                3 => Resource::ServerNic(0),
                                4 => Resource::ServerNic(1),
                                _ => Resource::Disk(0),
                            })
                            .collect();
                        v.sort();
                        v.dedup();
                        v
                    },
                }),
                1..8,
            )
        }

        fn caps() -> HashMap<Resource, f64> {
            [
                (Resource::Backplane, 300.0),
                (Resource::ClientNic(0), 100.0),
                (Resource::ClientNic(1), 100.0),
                (Resource::ServerNic(0), 100.0),
                (Resource::ServerNic(1), 100.0),
                (Resource::Disk(0), 10.0),
            ]
            .into_iter()
            .collect()
        }

        proptest! {
            #[test]
            fn rates_are_feasible_and_positive(flows in arb_flows()) {
                let c = caps();
                let rates = max_min_rates(&flows, &c);
                // Feasibility: every resource within capacity.
                for (&res, &cap) in &c {
                    let used: f64 = flows
                        .iter()
                        .zip(&rates)
                        .filter(|(f, _)| f.uses.contains(&res))
                        .map(|(_, r)| *r)
                        .sum();
                    prop_assert!(used <= cap * (1.0 + 1e-9), "{res:?}: {used} > {cap}");
                }
                // Progress: every flow gets a strictly positive rate.
                for r in &rates {
                    prop_assert!(*r > 0.0);
                }
            }

            #[test]
            fn some_resource_saturates(flows in arb_flows()) {
                // Work conservation: rates cannot all be raised, so at
                // least one resource used by some flow is saturated.
                let c = caps();
                let rates = max_min_rates(&flows, &c);
                let saturated = c.iter().any(|(&res, &cap)| {
                    let used: f64 = flows
                        .iter()
                        .zip(&rates)
                        .filter(|(f, _)| f.uses.contains(&res))
                        .map(|(_, r)| *r)
                        .sum();
                    used >= cap * (1.0 - 1e-9)
                });
                prop_assert!(saturated);
            }
        }
    }

    #[test]
    fn no_rate_exceeds_any_used_resource_capacity() {
        // Property check over a few deterministic configurations.
        for n in 1..6usize {
            let c = caps(&[
                (Resource::Backplane, 37.0),
                (Resource::ServerNic(0), 11.0),
                (Resource::Disk(0), 3.0),
            ]);
            let f: Vec<Flow> = (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        flow(&[Resource::ServerNic(0), Resource::Backplane])
                    } else {
                        flow(&[
                            Resource::ServerNic(0),
                            Resource::Disk(0),
                            Resource::Backplane,
                        ])
                    }
                })
                .collect();
            let r = max_min_rates(&f, &c);
            // Per-resource usage within capacity.
            for (&res, &cap) in &c {
                let used: f64 = f
                    .iter()
                    .zip(&r)
                    .filter(|(fl, _)| fl.uses.contains(&res))
                    .map(|(_, rate)| *rate)
                    .sum();
                assert!(used <= cap + 1e-6, "{res:?} over capacity: {used} > {cap}");
            }
        }
    }
}

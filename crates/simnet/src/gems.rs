//! The GEMS data-preservation experiment at paper scale (Figure 9).
//!
//! A 14 GB dataset is entrusted to the distributed shared database
//! with a 40 GB space budget. The *replicator* copies data until the
//! budget is reached; an *auditor* periodically verifies the location
//! and integrity of every replica. Failures are induced by forcibly
//! deleting all data on 1, 5, and then 10 disks; each time, the
//! auditor discovers the losses and the replicator repairs them.
//!
//! The small-scale **real** run of the same protocol (live Chirp
//! servers, the actual `gems` crate) lives in `gems::tests` and the
//! `fig9` bench binary; this module reproduces the figure's time
//! series at the published scale, which would need 40 GB of disk and
//! hours of wall clock.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Parameters of a preservation run.
#[derive(Debug, Clone)]
pub struct GemsParams {
    /// Number of files in the dataset.
    pub files: u64,
    /// Size of each file (bytes).
    pub file_size: u64,
    /// Space budget across all disks (bytes).
    pub budget: u64,
    /// Number of storage servers.
    pub disks: usize,
    /// Aggregate replication bandwidth (bytes/s).
    pub replicate_bw: f64,
    /// Auditor scan period (s).
    pub audit_period: f64,
    /// `(time, disks_to_wipe)` failure injections.
    pub failures: Vec<(f64, usize)>,
    /// Total simulated time (s).
    pub duration: f64,
    /// Sampling interval of the output series (s).
    pub sample_every: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GemsParams {
    fn default() -> GemsParams {
        // 14 GB in 20 MB files, 40 GB budget, as in the figure; the
        // deployed TSS had 120 file servers (§9).
        GemsParams {
            files: 700,
            file_size: 20 << 20,
            budget: 40 << 30,
            disks: 120,
            replicate_bw: 30.0e6,
            audit_period: 120.0,
            failures: vec![(2500.0, 1), (5000.0, 5), (7500.0, 10)],
            duration: 10_000.0,
            sample_every: 20.0,
            seed: 11,
        }
    }
}

/// One sample of the preservation time series.
#[derive(Debug, Clone, Copy)]
pub struct GemsSample {
    /// Simulated time (s).
    pub time: f64,
    /// Total bytes stored across all disks (the figure's y-axis).
    pub stored: u64,
    /// Files with at least one live replica.
    pub files_alive: u64,
}

/// Result of a preservation run.
#[derive(Debug, Clone)]
pub struct GemsResult {
    /// The sampled time series.
    pub series: Vec<GemsSample>,
    /// Files that lost every replica at any point (data loss).
    pub files_lost: u64,
}

/// Run the preservation simulation.
pub fn run(p: &GemsParams) -> GemsResult {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    // replicas[f] = sorted disk ids holding file f.
    let mut replicas: Vec<Vec<usize>> = Vec::with_capacity(p.files as usize);
    // The initial single copy is spread round-robin.
    for f in 0..p.files {
        replicas.push(vec![(f % p.disks as u64) as usize]);
    }
    let mut lost = vec![false; p.files as usize];
    // Per-file replica targets chosen from the space budget: every
    // file gets floor(budget/dataset) copies and the leftover space is
    // spread over the first files (the 40 GB budget over 14 GB yields
    // a mix of 2- and 3-replica files).
    let base = (p.budget / (p.files * p.file_size)).max(1) as usize;
    let extra = ((p.budget - base as u64 * p.files * p.file_size) / p.file_size).min(p.files);
    let target: Vec<usize> = (0..p.files)
        .map(|f| (base + usize::from(f < extra)).min(p.disks))
        .collect();
    // What the auditor believes; repairs only follow audits.
    let mut audited: Vec<usize> = replicas.iter().map(Vec::len).collect();

    let mut series = Vec::new();
    let mut time = 0.0f64;
    let mut next_sample = 0.0f64;
    let mut next_audit = p.audit_period;
    let mut failures = p.failures.clone();
    failures.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut failure_idx = 0usize;
    // Partial progress of the transfer in flight (bytes done).
    let mut transfer_progress = 0.0f64;
    let transfer_time = p.file_size as f64 / p.replicate_bw;
    let tick = transfer_time.min(p.sample_every).min(p.audit_period) / 2.0;

    let stored = |replicas: &Vec<Vec<usize>>| -> u64 {
        replicas.iter().map(|r| r.len() as u64).sum::<u64>() * p.file_size
    };
    let alive = |replicas: &Vec<Vec<usize>>| -> u64 {
        replicas.iter().filter(|r| !r.is_empty()).count() as u64
    };

    while time <= p.duration {
        // Sampling.
        if time >= next_sample {
            series.push(GemsSample {
                time,
                stored: stored(&replicas),
                files_alive: alive(&replicas),
            });
            next_sample += p.sample_every;
        }
        // Failure injection.
        while failure_idx < failures.len() && time >= failures[failure_idx].0 {
            let k = failures[failure_idx].1.min(p.disks);
            let mut disks: Vec<usize> = (0..p.disks).collect();
            disks.shuffle(&mut rng);
            let wiped: Vec<usize> = disks.into_iter().take(k).collect();
            for (f, r) in replicas.iter_mut().enumerate() {
                r.retain(|d| !wiped.contains(d));
                if r.is_empty() {
                    lost[f] = true;
                }
            }
            failure_idx += 1;
        }
        // Auditor: refresh beliefs on its period.
        if time >= next_audit {
            for (f, r) in replicas.iter().enumerate() {
                audited[f] = r.len();
            }
            next_audit += p.audit_period;
        }
        // Replicator: work toward the budget using audited knowledge.
        // Greedy fill: replicate the believed-most-deficient file
        // while the space budget allows another copy.
        transfer_progress += p.replicate_bw * tick;
        while transfer_progress >= p.file_size as f64 {
            transfer_progress -= p.file_size as f64;
            // Repair/complete the believed-most-deficient file that is
            // under its replica target.
            let candidate = (0..p.files as usize)
                .filter(|&f| !replicas[f].is_empty())
                .filter(|&f| audited[f] < target[f] && replicas[f].len() < p.disks)
                .min_by_key(|&f| (audited[f] as i64) - (target[f] as i64));
            let Some(f) = candidate else {
                transfer_progress = 0.0;
                break;
            };
            // Place on the least-loaded disk not already holding this
            // file, spreading replicas to decorrelate failures.
            let mut load = vec![0u64; p.disks];
            for r in &replicas {
                for &d in r {
                    load[d] += 1;
                }
            }
            let target = (0..p.disks)
                .filter(|d| !replicas[f].contains(d))
                .min_by_key(|&d| load[d]);
            if let Some(d) = target {
                replicas[f].push(d);
                audited[f] = replicas[f].len();
            }
        }
        time += tick;
    }
    GemsResult {
        series,
        files_lost: lost.iter().filter(|&&l| l).count() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> GemsResult {
        run(&GemsParams::default())
    }

    #[test]
    fn replication_fills_the_budget() {
        let p = GemsParams::default();
        let r = result();
        // Before the first failure, storage has climbed from 14 GB to
        // the 40 GB budget.
        let before_failure = r
            .series
            .iter()
            .filter(|s| s.time < 2500.0)
            .map(|s| s.stored)
            .max()
            .unwrap();
        assert!(
            before_failure + p.file_size > p.budget,
            "reached {before_failure} of budget {}",
            p.budget
        );
        assert!(r.series[0].stored <= p.files * p.file_size * 2);
    }

    #[test]
    fn failures_dip_and_recover() {
        let p = GemsParams::default();
        let r = result();
        let max_stored = r.series.iter().map(|s| s.stored).max().unwrap();
        for (fail_time, _) in &p.failures {
            // Just after the failure, storage has dipped...
            let after: Vec<&GemsSample> = r
                .series
                .iter()
                .filter(|s| s.time > *fail_time && s.time < fail_time + 100.0)
                .collect();
            assert!(
                after.iter().any(|s| s.stored < max_stored),
                "no dip after failure at {fail_time}"
            );
        }
        // ...and by the end the system is back in the desired state.
        let last = r.series.last().unwrap();
        assert!(
            last.stored + p.file_size > p.budget,
            "replicator restores the budget: {} of {}",
            last.stored,
            p.budget
        );
        assert!(last.stored <= max_stored);
    }

    #[test]
    fn staggered_failures_lose_little_or_no_data() {
        // With ~3 replicas on 40 disks, a simultaneous 10-disk wipe
        // can in principle catch every copy of a file; repair between
        // the staggered failures keeps the expected loss near zero.
        let p = GemsParams::default();
        let r = result();
        assert!(
            r.files_lost <= p.files / 50,
            "lost {} of {} files",
            r.files_lost,
            p.files
        );
        assert!(r.series.last().unwrap().files_alive >= p.files - r.files_lost);
    }

    #[test]
    fn bigger_failures_dip_deeper() {
        let p = GemsParams::default();
        let r = result();
        let dip_after = |t0: f64| -> u64 {
            r.series
                .iter()
                .filter(|s| s.time > t0 && s.time < t0 + 200.0)
                .map(|s| s.stored)
                .min()
                .unwrap()
        };
        let d1 = dip_after(p.failures[0].0);
        let d5 = dip_after(p.failures[1].0);
        let d10 = dip_after(p.failures[2].0);
        assert!(d5 < d1, "5-disk failure loses more than 1-disk");
        assert!(d10 < d5, "10-disk failure loses more than 5-disk");
    }

    #[test]
    fn deterministic_under_a_seed() {
        let a = run(&GemsParams::default());
        let b = run(&GemsParams::default());
        assert_eq!(a.files_lost, b.files_lost);
        assert_eq!(a.series.len(), b.series.len());
        assert_eq!(
            a.series.last().unwrap().stored,
            b.series.last().unwrap().stored
        );
    }
}

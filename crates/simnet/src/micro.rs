//! Analytic models behind Figures 3, 4, and 5: per-call latencies and
//! single-client bandwidth, derived entirely from [`CostModel`].

use crate::costs::CostModel;

/// One latency row: a named operation and its cost per system (s).
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Operation name (`stat`, `open/close`, `read 8kb`, ...).
    pub call: String,
    /// (system name, latency in seconds) pairs, in column order.
    pub systems: Vec<(String, f64)>,
}

/// Figure 3: system call latency, Unix vs Parrot, on the local
/// filesystem.
pub fn fig3_syscall_latency(m: &CostModel) -> Vec<LatencyRow> {
    // Relative base costs of different syscalls on the 2005 kernel:
    // metadata calls walk paths, open/close touches the dcache and fd
    // table, data calls add the copy term.
    let rows: Vec<(&str, f64, u64)> = vec![
        ("getpid", 0.5, 0),
        ("stat", 3.5, 0),
        ("open/close", 7.0, 0),
        ("read 8kb", 2.0, 8192),
        ("write 8kb", 2.5, 8192),
    ];
    rows.into_iter()
        .map(|(call, weight, bytes)| {
            let unix = weight * m.unix_syscall(0) + m.unix_syscall(bytes) - m.unix_syscall(0);
            // Under ptrace every syscall pays the full trap; compound
            // entries (open/close) pay it twice.
            let traps = if call == "open/close" { 2.0 } else { 1.0 };
            let parrot = unix
                + traps
                    * (m.trapped_syscall(bytes)
                        - m.syscall_base
                        - bytes as f64 / m.adapter_copy_bw)
                + bytes as f64 / m.adapter_copy_bw;
            LatencyRow {
                call: call.to_string(),
                systems: vec![("unix".into(), unix), ("parrot".into(), parrot)],
            }
        })
        .collect()
}

/// Figure 4: I/O call latency over gigabit Ethernet for Parrot+CFS,
/// Unix+NFS (no cache, async), and Parrot+DSFS.
pub fn fig4_io_latency(m: &CostModel) -> Vec<LatencyRow> {
    let trap = m.trapped_syscall(0);
    let trap8k = m.trapped_syscall(8192);
    // CFS: whole paths travel in one RPC; open and close are one RPC
    // each; an 8 KB transfer is one round trip.
    let cfs_stat = trap + m.chirp_rpc(0);
    let cfs_openclose = 2.0 * trap + 2.0 * m.chirp_rpc(0);
    let cfs_read = trap8k + m.chirp_rpc(8192);
    let cfs_write = trap8k + m.chirp_rpc(8192);
    // NFS: kernel client (no trap), but per-component lookups resolve
    // names to inodes before every path operation, and 8 KB moves as
    // two 4 KB RPCs.
    let lookup = m.nfs_lookup_rtts as f64 * m.nfs_rpc(0);
    let nfs_stat = lookup + m.nfs_rpc(0);
    let nfs_openclose = lookup + 2.0 * m.nfs_rpc(0);
    let nfs_read = 2.0 * m.nfs_rpc(4096);
    let nfs_write = 2.0 * m.nfs_rpc(4096);
    // DSFS: metadata operations touch the stub on the directory server
    // and then the data server — twice the round trips of CFS. Reads
    // and writes on an open file go straight to the data server.
    let dsfs_stat = trap + 2.0 * m.chirp_rpc(0);
    let dsfs_openclose = 2.0 * trap + 4.0 * m.chirp_rpc(0);
    let dsfs_read = cfs_read;
    let dsfs_write = cfs_write;

    let mk = |call: &str, cfs: f64, nfs: f64, dsfs: f64| LatencyRow {
        call: call.to_string(),
        systems: vec![
            ("parrot+cfs".into(), cfs),
            ("unix+nfs".into(), nfs),
            ("parrot+dsfs".into(), dsfs),
        ],
    };
    vec![
        mk("stat", cfs_stat, nfs_stat, dsfs_stat),
        mk("open/close", cfs_openclose, nfs_openclose, dsfs_openclose),
        mk("read 8kb", cfs_read, nfs_read, dsfs_read),
        mk("write 8kb", cfs_write, nfs_write, dsfs_write),
    ]
}

/// One bandwidth point: block size and the rate each system achieves.
#[derive(Debug, Clone)]
pub struct BandwidthRow {
    /// Size of each read/write call (bytes).
    pub block: u64,
    /// (system name, bandwidth in bytes/s).
    pub systems: Vec<(String, f64)>,
}

/// Figure 5: bandwidth writing 16 MB in various block sizes, for
/// Unix (local), Parrot (local), Parrot+CFS (1 GbE), Unix+NFS (1 GbE).
pub fn fig5_bandwidth(m: &CostModel, blocks: &[u64]) -> Vec<BandwidthRow> {
    blocks
        .iter()
        .map(|&block| {
            let unix = block as f64 / m.unix_syscall(block);
            let parrot = block as f64 / m.trapped_syscall(block);
            let cfs = block as f64 / (m.trapped_syscall(block) + m.chirp_rpc(block));
            let nfs = block as f64 / (m.unix_syscall(block) + m.nfs_transfer_time(block));
            BandwidthRow {
                block,
                systems: vec![
                    ("unix".into(), unix),
                    ("parrot".into(), parrot),
                    ("parrot+cfs".into(), cfs),
                    ("unix+nfs".into(), nfs),
                ],
            }
        })
        .collect()
}

/// The standard block-size sweep for Figure 5: powers of two from 1 B
/// to 1 MB.
pub fn fig5_blocks() -> Vec<u64> {
    (0..=20).map(|i| 1u64 << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::default()
    }

    fn sys(row: &LatencyRow, name: &str) -> f64 {
        row.systems
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{name} missing in {row:?}"))
    }

    #[test]
    fn fig3_parrot_slows_metadata_calls_by_an_order_of_magnitude() {
        for row in fig3_syscall_latency(&m()) {
            let ratio = sys(&row, "parrot") / sys(&row, "unix");
            assert!(ratio > 2.0, "{}: ratio {ratio:.1}", row.call);
            if row.call == "stat" || row.call == "getpid" {
                assert!(ratio > 5.0, "{}: ratio {ratio:.1}", row.call);
            }
        }
    }

    #[test]
    fn fig4_cfs_beats_nfs_on_metadata_latency() {
        let rows = fig4_io_latency(&m());
        for call in ["stat", "open/close"] {
            let row = rows.iter().find(|r| r.call == call).unwrap();
            assert!(
                sys(row, "parrot+cfs") < sys(row, "unix+nfs"),
                "{call}: CFS must be lower latency (no inode lookups)"
            );
        }
    }

    #[test]
    fn fig4_dsfs_doubles_metadata_but_matches_data_ops() {
        let rows = fig4_io_latency(&m());
        let stat = rows.iter().find(|r| r.call == "stat").unwrap();
        let ratio = sys(stat, "parrot+dsfs") / sys(stat, "parrot+cfs");
        assert!(
            (1.6..2.4).contains(&ratio),
            "stub lookup doubles stat: {ratio:.2}"
        );
        let read = rows.iter().find(|r| r.call == "read 8kb").unwrap();
        assert_eq!(sys(read, "parrot+dsfs"), sys(read, "parrot+cfs"));
    }

    #[test]
    fn fig4_network_dominates_trap_overhead() {
        // Every networked latency exceeds the whole Parrot trap cost
        // by an order of magnitude.
        let trap = m().trapped_syscall(0);
        for row in fig4_io_latency(&m()) {
            for (name, v) in &row.systems {
                assert!(*v > 5.0 * trap, "{} {name}: {v}", row.call);
            }
        }
    }

    #[test]
    fn fig5_plateaus_match_the_paper() {
        let rows = fig5_bandwidth(&m(), &[1 << 20]);
        let at = |name: &str| rows[0].systems.iter().find(|(n, _)| n == name).unwrap().1 / 1e6;
        assert!(
            (700.0..800.0).contains(&at("unix")),
            "unix {:.0}",
            at("unix")
        );
        assert!(
            (380.0..440.0).contains(&at("parrot")),
            "parrot {:.0}",
            at("parrot")
        );
        assert!(
            (60.0..104.0).contains(&at("parrot+cfs")),
            "cfs {:.0}",
            at("parrot+cfs")
        );
        assert!(
            (6.0..15.0).contains(&at("unix+nfs")),
            "nfs {:.0}",
            at("unix+nfs")
        );
    }

    #[test]
    fn fig5_ordering_holds_at_every_block_size_above_4k() {
        for row in fig5_bandwidth(&m(), &fig5_blocks()) {
            if row.block < 4096 {
                continue;
            }
            let v: Vec<f64> = row.systems.iter().map(|(_, v)| *v).collect();
            // unix > parrot > cfs > nfs
            assert!(v[0] > v[1] && v[1] > v[2] && v[2] > v[3], "{row:?}");
        }
    }

    #[test]
    fn fig5_small_blocks_are_syscall_bound_everywhere() {
        let rows = fig5_bandwidth(&m(), &[1]);
        for (name, v) in &rows[0].systems {
            assert!(*v < 2e6, "{name} at 1-byte blocks: {v}");
        }
    }
}

//! Ablation models for the design choices the paper argues for.
//!
//! 1. **One stream for control and data.** Chirp carries file data on
//!    the same TCP connection as RPCs, so the congestion window stays
//!    open across files; FTP-style protocols open a fresh data
//!    connection per file and pay connection setup plus TCP slow start
//!    every time (§4: "resulting in multiple TCP slow starts when
//!    multiple files must be transmitted").
//! 2. **Buffer cache sensitivity.** The Figure 7 crossover (disk-bound
//!    below three servers, switch-bound above) is a function of the
//!    per-server cache; sweeping it shows how the published curve
//!    would move on differently provisioned nodes.

use crate::cluster::{run, AccessPattern, ClusterParams, ClusterResult};
use crate::costs::CostModel;

/// TCP maximum segment size used by the slow-start model.
const MSS: f64 = 1460.0;
/// Initial congestion window (segments), per 2005-era stacks.
const INIT_CWND: f64 = 2.0;

/// Seconds to move `bytes` on a *fresh* TCP connection: slow start
/// doubles the window each RTT until the path's bandwidth-delay
/// product is reached, then the transfer proceeds at line rate.
pub fn fresh_connection_transfer(m: &CostModel, bytes: u64) -> f64 {
    let bdp = m.port_bw * m.lan_rtt; // bytes in flight at line rate
    let mut cwnd = INIT_CWND * MSS;
    let mut sent = 0.0;
    let mut t = 0.0;
    let bytes = bytes as f64;
    while sent < bytes && cwnd < bdp {
        // One RTT sends a full window, then the window doubles.
        let send = cwnd.min(bytes - sent);
        sent += send;
        t += m.lan_rtt;
        cwnd *= 2.0;
    }
    if sent < bytes {
        t += (bytes - sent) / m.port_bw;
    }
    t
}

/// Seconds to move `files` files of `bytes` each over one persistent
/// Chirp connection: the window is warm after the first file.
pub fn chirp_batch(m: &CostModel, files: u64, bytes: u64) -> f64 {
    if files == 0 {
        return 0.0;
    }
    fresh_connection_transfer(m, bytes)
        + (files - 1) as f64 * (m.lan_rtt + m.server_cpu_per_rpc + bytes as f64 / m.port_bw)
        + files as f64 * m.server_cpu_per_rpc
}

/// Seconds for an FTP-style protocol: per file, a control round trip
/// plus a fresh data connection (setup handshake + slow start).
pub fn ftp_batch(m: &CostModel, files: u64, bytes: u64) -> f64 {
    files as f64
        * (2.0 * m.lan_rtt // control exchange + data connection setup
            + m.server_cpu_per_rpc
            + fresh_connection_transfer(m, bytes))
}

/// One row of the cache-size sweep: per-server cache bytes and the
/// resulting Figure-7-workload throughput for several server counts.
#[derive(Debug, Clone)]
pub struct CacheSweepRow {
    /// Per-server cache size (bytes).
    pub cache: u64,
    /// `(servers, MB/s)` pairs.
    pub throughput: Vec<(usize, f64)>,
}

/// Compare uniform and Zipf-skewed access for the Figure 6 workload:
/// skew concentrates load on the servers holding popular files, so the
/// aggregate no longer scales with server count. Returns
/// `(servers, uniform MB/s, zipf MB/s)` rows.
pub fn access_skew_sweep(m: &CostModel, theta: f64, servers: &[usize]) -> Vec<(usize, f64, f64)> {
    servers
        .iter()
        .map(|&s| {
            let uniform = run(m, ClusterParams::fig6(s, 16)).mb_per_s();
            let mut p = ClusterParams::fig6(s, 16);
            p.access = AccessPattern::Zipf(theta);
            let zipf = run(m, p).mb_per_s();
            (s, uniform, zipf)
        })
        .collect()
}

/// Sweep the per-server buffer cache for the Figure 7 workload.
pub fn cache_sweep(base: &CostModel, caches: &[u64], servers: &[usize]) -> Vec<CacheSweepRow> {
    caches
        .iter()
        .map(|&cache| {
            let mut m = *base;
            m.server_cache = cache;
            let throughput = servers
                .iter()
                .map(|&s| {
                    let r: ClusterResult = run(&m, ClusterParams::fig7(s, 16));
                    (s, r.mb_per_s())
                })
                .collect();
            CacheSweepRow { cache, throughput }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_hurts_small_transfers_most() {
        let m = CostModel::default();
        // A small file on a fresh connection is dominated by RTTs
        // spent doubling the window.
        let small = fresh_connection_transfer(&m, 8 * 1024);
        let warm = 8.0 * 1024.0 / m.port_bw;
        assert!(small > 2.5 * warm, "slow start tax: {small} vs {warm}");
        // A huge transfer amortizes it.
        let big_fresh = fresh_connection_transfer(&m, 256 << 20);
        let big_warm = (256u64 << 20) as f64 / m.port_bw;
        assert!(big_fresh < 1.05 * big_warm);
    }

    #[test]
    fn chirp_beats_ftp_hardest_on_many_small_files() {
        let m = CostModel::default();
        let small = ftp_batch(&m, 1000, 16 * 1024) / chirp_batch(&m, 1000, 16 * 1024);
        let large = ftp_batch(&m, 10, 64 << 20) / chirp_batch(&m, 10, 64 << 20);
        assert!(small > 1.8, "many small files: ratio {small:.2}");
        assert!(large < small, "big files amortize: {large:.2} < {small:.2}");
        assert!(large >= 1.0, "ftp is never faster");
    }

    #[test]
    fn skewed_access_breaks_server_scaling() {
        let m = CostModel::default();
        let rows = access_skew_sweep(&m, 2.0, &[1, 8]);
        let (_, uni1, zipf1) = rows[0];
        let (_, uni8, zipf8) = rows[1];
        // One server: both patterns saturate the single port alike.
        assert!((zipf1 / uni1) > 0.9);
        // Eight servers: uniform reaches the backplane; skewed access
        // leaves most ports idle while the hot server's port binds.
        assert!(
            zipf8 < 0.75 * uni8,
            "skew must cost throughput at scale: uniform {uni8:.0} vs zipf {zipf8:.0}"
        );
    }

    #[test]
    fn cache_sweep_moves_the_crossover() {
        let m = CostModel::default();
        let rows = cache_sweep(&m, &[128 << 20, 1024 << 20], &[2]);
        let small_cache = rows[0].throughput[0].1;
        let big_cache = rows[1].throughput[0].1;
        // With 1 GB per server, 2 servers hold the whole 1280 MB
        // working set and go switch-bound; with 128 MB they stay
        // disk-bound.
        assert!(
            big_cache > 3.0 * small_cache,
            "cache decides the regime: {small_cache:.0} vs {big_cache:.0}"
        );
    }
}

//! A per-server buffer cache: LRU over whole files.
//!
//! The scalability experiments (Figures 6–8) hinge on whether a
//! server's working set fits in its 512 MB of RAM: multiple servers
//! increase the *total memory used as buffer cache*, which is one of
//! the two ways the paper says server scaling helps.

use std::collections::HashMap;

/// An LRU cache tracking which whole files are memory-resident.
#[derive(Debug)]
pub struct LruFileCache {
    capacity: u64,
    used: u64,
    /// file id -> (size, last-use tick)
    entries: HashMap<u64, (u64, u64)>,
    tick: u64,
}

impl LruFileCache {
    /// A cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> LruFileCache {
        LruFileCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            tick: 0,
        }
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Is this file fully resident? Touches the entry on hit.
    pub fn contains(&mut self, file: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&file) {
            e.1 = tick;
            true
        } else {
            false
        }
    }

    /// Install a file after it has been read from disk, evicting
    /// least-recently-used files as needed. Files larger than the
    /// whole cache are not cached.
    pub fn insert(&mut self, file: u64, size: u64) {
        if size > self.capacity {
            return;
        }
        self.tick += 1;
        if let Some(&(old, _)) = self.entries.get(&file) {
            self.used -= old;
            self.entries.remove(&file);
        }
        while self.used + size > self.capacity {
            let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &(_, t))| t) else {
                break;
            };
            let (vsize, _) = self.entries.remove(&victim).expect("victim exists");
            self.used -= vsize;
        }
        self.entries.insert(file, (size, self.tick));
        self.used += size;
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_insert() {
        let mut c = LruFileCache::new(100);
        assert!(!c.contains(1));
        c.insert(1, 40);
        assert!(c.contains(1));
        assert_eq!(c.used(), 40);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruFileCache::new(100);
        c.insert(1, 40);
        c.insert(2, 40);
        assert!(c.contains(1)); // touch 1: now 2 is LRU
        c.insert(3, 40); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert!(c.used() <= 100);
    }

    #[test]
    fn oversized_files_bypass_the_cache() {
        let mut c = LruFileCache::new(100);
        c.insert(1, 1000);
        assert!(!c.contains(1));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = LruFileCache::new(100);
        c.insert(1, 40);
        c.insert(1, 60);
        assert_eq!(c.used(), 60);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn usage_never_exceeds_capacity() {
        let mut c = LruFileCache::new(512);
        for i in 0..1000u64 {
            c.insert(i, 7 + (i % 90));
            assert!(c.used() <= 512, "at i={i}: {}", c.used());
        }
        assert!(!c.is_empty());
    }
}

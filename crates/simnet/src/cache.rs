//! A per-server buffer cache: LRU over whole files.
//!
//! The scalability experiments (Figures 6–8) hinge on whether a
//! server's working set fits in its 512 MB of RAM: multiple servers
//! increase the *total memory used as buffer cache*, which is one of
//! the two ways the paper says server scaling helps.

use std::collections::HashMap;

/// An LRU cache tracking which whole files are memory-resident.
#[derive(Debug)]
pub struct LruFileCache {
    capacity: u64,
    used: u64,
    /// file id -> (size, last-use tick)
    entries: HashMap<u64, (u64, u64)>,
    tick: u64,
}

impl LruFileCache {
    /// A cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> LruFileCache {
        LruFileCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            tick: 0,
        }
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Is this file fully resident? Touches the entry on hit.
    pub fn contains(&mut self, file: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&file) {
            e.1 = tick;
            true
        } else {
            false
        }
    }

    /// Install a file after it has been read from disk, evicting
    /// least-recently-used files as needed. Files larger than the
    /// whole cache are not cached.
    pub fn insert(&mut self, file: u64, size: u64) {
        if size > self.capacity {
            return;
        }
        self.tick += 1;
        if let Some(&(old, _)) = self.entries.get(&file) {
            self.used -= old;
            self.entries.remove(&file);
        }
        while self.used + size > self.capacity {
            let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &(_, t))| t) else {
                break;
            };
            let (vsize, _) = self.entries.remove(&victim).expect("victim exists");
            self.used -= vsize;
        }
        self.entries.insert(file, (size, self.tick));
        self.used += size;
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Predicted steady-state hit rate for uniform random accesses over a
/// working set of `files` files of `file_size` bytes each, against an
/// [`LruFileCache`] of `capacity` bytes.
///
/// Runs the actual LRU model with a deterministic LCG access stream:
/// one warm-up sweep to fill the cache, then `samples` measured
/// accesses. The live cache sweep (`tss-bench`'s `cache-sweep`) drives
/// the real server with the same access law and compares against this
/// curve — the paper's analytic/experimental loop in miniature. Under
/// uniform access the curve is the resource fraction itself: hit rate
/// ≈ min(1, capacity / (files * file_size)).
pub fn predict_uniform_hit_rate(capacity: u64, files: u64, file_size: u64, samples: u64) -> f64 {
    assert!(files > 0 && file_size > 0 && samples > 0);
    let mut cache = LruFileCache::new(capacity);
    let mut state: u64 = 0x2545_f491_4f6c_dd1d;
    let mut next = move || {
        // Same multiplier family the generator crates use; period and
        // quality are ample for picking uniform file indices.
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) % files
    };
    // Warm-up: give every file a chance to enter; steady state for an
    // LRU under uniform access is reached within a few working-set
    // passes.
    for _ in 0..files.saturating_mul(3) {
        let f = next();
        if !cache.contains(f) {
            cache.insert(f, file_size);
        }
    }
    let mut hits = 0u64;
    for _ in 0..samples {
        let f = next();
        if cache.contains(f) {
            hits += 1;
        } else {
            cache.insert(f, file_size);
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_insert() {
        let mut c = LruFileCache::new(100);
        assert!(!c.contains(1));
        c.insert(1, 40);
        assert!(c.contains(1));
        assert_eq!(c.used(), 40);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruFileCache::new(100);
        c.insert(1, 40);
        c.insert(2, 40);
        assert!(c.contains(1)); // touch 1: now 2 is LRU
        c.insert(3, 40); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert!(c.used() <= 100);
    }

    #[test]
    fn oversized_files_bypass_the_cache() {
        let mut c = LruFileCache::new(100);
        c.insert(1, 1000);
        assert!(!c.contains(1));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = LruFileCache::new(100);
        c.insert(1, 40);
        c.insert(1, 60);
        assert_eq!(c.used(), 60);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn usage_never_exceeds_capacity() {
        let mut c = LruFileCache::new(512);
        for i in 0..1000u64 {
            c.insert(i, 7 + (i % 90));
            assert!(c.used() <= 512, "at i={i}: {}", c.used());
        }
        assert!(!c.is_empty());
    }

    #[test]
    fn predicted_hit_rate_tracks_the_resource_fraction() {
        // 256 files of 8 KiB = 2 MiB working set. Under uniform access
        // the hit rate is the fraction of the working set that fits.
        let (files, fsize) = (256, 8 * 1024);
        for (cap_frac, expect) in [(4u64, 0.25), (2, 0.5), (1, 1.0)] {
            let cap = files * fsize / cap_frac;
            let rate = predict_uniform_hit_rate(cap, files, fsize, 50_000);
            assert!(
                (rate - expect).abs() < 0.05,
                "cap={cap}: predicted {rate}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn predicted_hit_rate_is_monotone_and_plateaus() {
        let (files, fsize) = (128, 4 * 1024);
        let ws = files * fsize;
        let mut last = -1.0f64;
        for cap in [ws / 8, ws / 4, ws / 2, ws, ws * 2] {
            let rate = predict_uniform_hit_rate(cap, files, fsize, 20_000);
            assert!(rate >= last - 0.02, "rate dropped at cap={cap}");
            last = rate;
        }
        // Past the working set, more cache buys nothing.
        assert!(
            (last - 1.0).abs() < 0.01,
            "plateau should be ~1.0, got {last}"
        );
    }
}

//! `simnet` — a deterministic flow-level simulator of the paper's
//! testbed.
//!
//! Figures 3–8 of the paper are statements about *which hardware
//! resource binds* a workload: the Parrot trap cost (Fig 3), network
//! round trips (Fig 4), the syscall/copy/wire pipeline (Fig 5), and a
//! cluster whose switch ports, switch backplane, server disks, and
//! server buffer caches trade off as servers are added (Figs 6–8).
//! Reproducing the published curves therefore needs the 2005 testbed
//! itself — 32 cluster nodes, a commodity 1 Gb/s switch, SATA disks —
//! which we substitute with this simulator (DESIGN.md §4).
//!
//! The model is *flow-level*: active transfers share resources by
//! max-min fairness ([`fair`]), advancing between flow-completion
//! events. Buffer caches are per-server LRU over whole files
//! ([`cache`]). Cost constants are calibrated to the paper's stated
//! numbers and collected in one place ([`costs::CostModel`]) so every
//! figure harness draws from the same model.
//!
//! Nothing here is wall-clock: time is integer nanoseconds, random
//! choices come from a seeded generator, and every run is reproducible
//! bit-for-bit.

#![warn(missing_docs)]

pub mod ablation;
pub mod cache;
pub mod cluster;
pub mod costs;
pub mod fair;
pub mod gems;
pub mod micro;
pub mod sp5;

pub use cache::LruFileCache;
pub use cluster::{ClusterParams, ClusterResult};
pub use costs::CostModel;

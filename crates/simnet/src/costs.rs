//! The shared cost model, calibrated to the paper's testbed.
//!
//! Every constant here is traceable to a number stated in the paper or
//! to well-known characteristics of the hardware it names (2.8 GHz
//! Pentium 4, Linux 2.4.21, commodity 1 Gb/s Ethernet, 250 GB SATA
//! disks, 512 MB RAM per node):
//!
//! * local memory copy bandwidth ≈ 798 MB/s (the Unix plateau of
//!   Fig 5);
//! * the adapter's extra user-space copy roughly halves that to
//!   431 MB/s;
//! * a 1 Gb/s port carries ~100 MB/s in practice (Fig 6: "one server
//!   saturates one port at just over 100 MB/s");
//! * the inexpensive switch backplane saturates at ~300 MB/s (Fig 6);
//! * one SATA disk streams ~10 MB/s under the random large-file load
//!   (Fig 8);
//! * NFS achieves ~10 MB/s on the same wire because each 4 KB RPC
//!   costs a round trip (Fig 5).

/// All timing/bandwidth constants used by the analytic figure models.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    // -- local machine ----------------------------------------------------
    /// One direct system call's fixed kernel entry/exit cost (s).
    pub syscall_base: f64,
    /// One user/kernel context switch (s); a ptrace stop/resume pair
    /// costs several of these.
    pub context_switch: f64,
    /// Context switches charged per trapped syscall (application stop,
    /// adapter wake, adapter syscall, application resume).
    pub trap_switches: u32,
    /// Adapter's own per-call bookkeeping: decode, name resolution,
    /// descriptor table (s).
    pub adapter_overhead: f64,
    /// Memory copy bandwidth (bytes/s): the Unix bandwidth plateau.
    pub memcpy_bw: f64,
    /// The adapter's extra data copy between kernel and application
    /// halves effective copy bandwidth: Parrot's 431 MB/s plateau.
    pub adapter_copy_bw: f64,

    // -- network ----------------------------------------------------------
    /// One LAN round trip on commodity gigabit Ethernet (s).
    pub lan_rtt: f64,
    /// One round trip on the regional ~100 Mb/s wide-area link of the
    /// SP5 grid configuration (s).
    pub wan_rtt: f64,
    /// Usable bandwidth of one 1 Gb/s port (bytes/s).
    pub port_bw: f64,
    /// Usable WAN bandwidth (bytes/s); the paper says "roughly
    /// 100 Mb/s".
    pub wan_bw: f64,
    /// Aggregate backplane limit of the commodity switch (bytes/s).
    pub backplane_bw: f64,
    /// Server-side request processing per RPC (s).
    pub server_cpu_per_rpc: f64,

    // -- storage ----------------------------------------------------------
    /// Streaming disk bandwidth under the experiment's access pattern
    /// (bytes/s).
    pub disk_bw: f64,
    /// Per-server buffer cache (bytes).
    pub server_cache: u64,

    // -- protocol shapes ---------------------------------------------------
    /// NFS transfer size cap per RPC (bytes).
    pub nfs_transfer: u64,
    /// Round trips NFS needs to resolve one path component.
    pub nfs_lookup_rtts: u32,
    /// Extra client+server RPC-layer processing per NFS call (s),
    /// calibrated so a 16 MB copy lands at the measured ~10 MB/s.
    pub nfs_rpc_overhead: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            syscall_base: 0.6e-6,
            context_switch: 2.0e-6,
            trap_switches: 4,
            adapter_overhead: 4.0e-6,
            memcpy_bw: 798.0e6,
            adapter_copy_bw: 431.0e6,
            lan_rtt: 120.0e-6,
            wan_rtt: 1.0e-3,
            port_bw: 104.0e6,
            wan_bw: 12.5e6,
            backplane_bw: 300.0e6,
            server_cpu_per_rpc: 15.0e-6,
            disk_bw: 10.0e6,
            server_cache: 512 * 1024 * 1024,
            nfs_transfer: 4096,
            nfs_lookup_rtts: 1,
            nfs_rpc_overhead: 240.0e-6,
        }
    }
}

impl CostModel {
    /// Latency of one *direct* Unix system call moving `bytes` of data.
    pub fn unix_syscall(&self, bytes: u64) -> f64 {
        self.syscall_base + bytes as f64 / self.memcpy_bw
    }

    /// Latency of the same call under the adapter's trap mechanism:
    /// extra context switches, adapter bookkeeping, and the extra data
    /// copy between kernel, adapter, and application.
    ///
    /// `adapter_copy_bw` is the *effective* end-to-end copy bandwidth
    /// of the doubled pipeline (431 MB/s measured vs 798 MB/s direct),
    /// so the data term is not added on top of the direct copy.
    pub fn trapped_syscall(&self, bytes: u64) -> f64 {
        self.syscall_base
            + self.trap_switches as f64 * self.context_switch
            + self.adapter_overhead
            + bytes as f64 / self.adapter_copy_bw
    }

    /// Time for one Chirp RPC over the LAN carrying `bytes` of file
    /// data (single round trip; data rides the same stream).
    pub fn chirp_rpc(&self, bytes: u64) -> f64 {
        self.lan_rtt + self.server_cpu_per_rpc + bytes as f64 / self.port_bw
    }

    /// Time for one NFS RPC moving up to one transfer unit.
    pub fn nfs_rpc(&self, bytes: u64) -> f64 {
        debug_assert!(bytes <= self.nfs_transfer);
        self.lan_rtt + self.server_cpu_per_rpc + self.nfs_rpc_overhead + bytes as f64 / self.port_bw
    }

    /// Time for NFS to move `bytes`: a chain of strict 4 KB
    /// request/response pairs.
    pub fn nfs_transfer_time(&self, bytes: u64) -> f64 {
        let full = bytes / self.nfs_transfer;
        let rest = bytes % self.nfs_transfer;
        let mut t = full as f64 * self.nfs_rpc(self.nfs_transfer);
        if rest > 0 || bytes == 0 {
            t += self.nfs_rpc(rest);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_slows_small_calls_by_an_order_of_magnitude() {
        let m = CostModel::default();
        let ratio = m.trapped_syscall(0) / m.unix_syscall(0);
        assert!(
            (5.0..60.0).contains(&ratio),
            "Fig 3: most calls slowed ~10x, got {ratio:.1}"
        );
    }

    #[test]
    fn network_latency_dwarfs_trap_latency() {
        // Fig 4's point: the RTT is another order of magnitude above
        // the trap cost, so the adapter overhead washes out.
        let m = CostModel::default();
        assert!(m.chirp_rpc(0) > 4.0 * m.trapped_syscall(0));
    }

    #[test]
    fn nfs_moves_big_payloads_much_slower_than_chirp() {
        let m = CostModel::default();
        let bytes = 1 << 20;
        let nfs = m.nfs_transfer_time(bytes);
        let chirp = m.chirp_rpc(bytes);
        assert!(
            nfs > 5.0 * chirp,
            "4KB RPC chain must dominate: nfs={nfs:.6} chirp={chirp:.6}"
        );
    }

    #[test]
    fn nfs_asymptotic_bandwidth_near_ten_mb_per_s() {
        let m = CostModel::default();
        let bytes = 16u64 << 20;
        let bw = bytes as f64 / m.nfs_transfer_time(bytes) / 1e6;
        assert!(
            (6.0..20.0).contains(&bw),
            "Fig 5: NFS ≈ 10 MB/s, got {bw:.1}"
        );
    }
}

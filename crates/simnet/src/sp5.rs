//! The SP5 / BaBar workload model (paper §8).
//!
//! SP5 is a detector-simulation component: a long initialization phase
//! loads thousands of scripts, dynamic libraries, and configuration
//! records through a lock-served commercial I/O library, then each
//! simulation event is CPU-heavy with bulky output. We model the
//! *operation mix*, not the physics:
//!
//! * init = fixed CPU work + `init_ops` small, strictly serial I/O
//!   operations whose unit latency depends on the substrate;
//! * event = CPU work (scaled by node speed) + streaming output
//!   limited by the link.
//!
//! Unit latencies are calibrated against the published table (Unix
//! 446 s / NFS 4464 s / TSS 4505 s / WAN 6275 s; 64/113/113/88 s per
//! event); what the model *tests* is the paper's shape claims: any
//! remote substrate inflates init by an order of magnitude, NFS and
//! TSS are within a few percent of each other, the WAN costs ~40%
//! more, and per-event times stay within 2× of local.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::costs::CostModel;

/// The four table configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sp5Config {
    /// SP5 unmodified, data on a local filesystem.
    Unix,
    /// Unmodified over kernel NFS on a 100 Mb/s LAN.
    LanNfs,
    /// Through the adapter to a CFS on the same LAN.
    LanTss,
    /// On a computational grid over a ~100 Mb/s wide-area link, on a
    /// slightly faster node (heterogeneity is a fact of life in a
    /// grid).
    WanTss,
}

impl Sp5Config {
    /// All four, in the table's row order.
    pub fn all() -> [Sp5Config; 4] {
        [
            Sp5Config::Unix,
            Sp5Config::LanNfs,
            Sp5Config::LanTss,
            Sp5Config::WanTss,
        ]
    }

    /// Row label as in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Sp5Config::Unix => "Unix",
            Sp5Config::LanNfs => "LAN / NFS",
            Sp5Config::LanTss => "LAN / TSS",
            Sp5Config::WanTss => "WAN / TSS",
        }
    }
}

/// Workload shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct Sp5Params {
    /// Serial small-I/O operations during initialization.
    pub init_ops: u64,
    /// CPU seconds of initialization work.
    pub init_cpu: f64,
    /// CPU seconds per simulation event on the reference node.
    pub event_cpu: f64,
    /// Output bytes streamed per event.
    pub event_output: u64,
    /// Speed ratio of the grid node to the reference node.
    pub wan_node_speedup: f64,
    /// Relative jitter of the init phase (the paper reports ±5-ish %).
    pub init_jitter: f64,
    /// Number of measured runs.
    pub runs: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Sp5Params {
    fn default() -> Sp5Params {
        Sp5Params {
            init_ops: 1_000_000,
            init_cpu: 406.0,
            event_cpu: 64.0,
            event_output: 600 << 20,
            wan_node_speedup: 1.6,
            init_jitter: 0.04,
            runs: 10,
            seed: 7,
        }
    }
}

/// One table row: mean ± deviation init time, per-event time.
#[derive(Debug, Clone)]
pub struct Sp5Row {
    /// Which configuration.
    pub config: Sp5Config,
    /// Mean initialization time (s).
    pub init_mean: f64,
    /// Standard deviation over runs (s).
    pub init_dev: f64,
    /// Time per simulation event (s).
    pub time_per_event: f64,
}

/// Per-operation latency of one small, serial I/O operation on each
/// substrate. The lock-served I/O library issues several dependent
/// round trips per logical operation.
fn per_op_latency(m: &CostModel, config: Sp5Config) -> f64 {
    // A 100 Mb/s LAN RTT is ~4x the 1 GbE RTT of the cluster testbed;
    // each logical record access costs several dependent RPCs (path
    // resolution, lock acquisition, the read itself).
    let lan100_rtt = 4.0 * m.lan_rtt;
    match config {
        Sp5Config::Unix => 7.0 * m.unix_syscall(1024),
        Sp5Config::LanNfs => {
            // lookups + lock round trip + read: ~5 dependent RPCs.
            5.0 * (lan100_rtt + m.server_cpu_per_rpc + m.nfs_rpc_overhead)
        }
        Sp5Config::LanTss => {
            // Fewer protocol round trips (whole-path opens) but the
            // lock-server round trips remain and every call is
            // trapped and uncached: measured within 1% of NFS.
            5.0 * (lan100_rtt + m.server_cpu_per_rpc + m.nfs_rpc_overhead)
                + 2.0 * m.trapped_syscall(1024)
        }
        Sp5Config::WanTss => {
            // Same op mix over the regional wide-area link.
            5.0 * (m.wan_rtt + m.server_cpu_per_rpc) + 2.0 * m.trapped_syscall(1024)
        }
    }
}

/// Seconds to stream one event's output on this substrate.
fn event_output_time(m: &CostModel, config: Sp5Config, bytes: u64) -> f64 {
    match config {
        Sp5Config::Unix => bytes as f64 / m.memcpy_bw,
        // Both LAN cases ride the same 100 Mb/s wire; the WAN link has
        // roughly the same capacity.
        Sp5Config::LanNfs | Sp5Config::LanTss | Sp5Config::WanTss => bytes as f64 / m.wan_bw,
    }
}

/// Produce the §8 table.
pub fn table(m: &CostModel, p: Sp5Params) -> Vec<Sp5Row> {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    Sp5Config::all()
        .into_iter()
        .map(|config| {
            let cpu_scale = if config == Sp5Config::WanTss {
                1.0 / p.wan_node_speedup
            } else {
                1.0
            };
            let base_init = p.init_cpu * cpu_scale + p.init_ops as f64 * per_op_latency(m, config);
            let mut samples = Vec::with_capacity(p.runs as usize);
            for _ in 0..p.runs {
                let jitter = 1.0 + p.init_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
                samples.push(base_init * jitter);
            }
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let var =
                samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
            let time_per_event =
                p.event_cpu * cpu_scale + event_output_time(m, config, p.event_output);
            Sp5Row {
                config,
                init_mean: mean,
                init_dev: var.sqrt(),
                time_per_event,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Sp5Row> {
        table(&CostModel::default(), Sp5Params::default())
    }

    fn row(rows: &[Sp5Row], c: Sp5Config) -> &Sp5Row {
        rows.iter().find(|r| r.config == c).unwrap()
    }

    #[test]
    fn init_inflates_by_an_order_of_magnitude_remotely() {
        let rows = rows();
        let unix = row(&rows, Sp5Config::Unix).init_mean;
        for c in [Sp5Config::LanNfs, Sp5Config::LanTss, Sp5Config::WanTss] {
            let r = row(&rows, c).init_mean / unix;
            assert!(
                (6.0..20.0).contains(&r),
                "{c:?}: init ratio {r:.1} (paper: ~10x)"
            );
        }
    }

    #[test]
    fn tss_matches_nfs_within_a_few_percent() {
        let rows = rows();
        let nfs = row(&rows, Sp5Config::LanNfs).init_mean;
        let tss = row(&rows, Sp5Config::LanTss).init_mean;
        let delta = (tss - nfs).abs() / nfs;
        assert!(delta < 0.10, "LAN TSS vs NFS init differ {delta:.2}");
        // TSS is the slightly slower of the two, as measured.
        assert!(tss >= nfs * 0.98);
    }

    #[test]
    fn wan_init_costs_more_but_under_2x_lan() {
        let rows = rows();
        let lan = row(&rows, Sp5Config::LanTss).init_mean;
        let wan = row(&rows, Sp5Config::WanTss).init_mean;
        let ratio = wan / lan;
        assert!((1.1..2.0).contains(&ratio), "WAN/LAN init {ratio:.2}");
    }

    #[test]
    fn events_process_within_2x_of_local() {
        let rows = rows();
        let unix = row(&rows, Sp5Config::Unix).time_per_event;
        for c in [Sp5Config::LanNfs, Sp5Config::LanTss, Sp5Config::WanTss] {
            let ratio = row(&rows, c).time_per_event / unix;
            assert!(ratio < 2.0, "{c:?}: event ratio {ratio:.2}");
        }
    }

    #[test]
    fn wan_events_beat_lan_events_on_the_faster_node() {
        let rows = rows();
        assert!(
            row(&rows, Sp5Config::WanTss).time_per_event
                < row(&rows, Sp5Config::LanTss).time_per_event
        );
    }

    #[test]
    fn deviations_are_small_and_deterministic() {
        let a = rows();
        let b = rows();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.init_mean.to_bits(), y.init_mean.to_bits());
            assert!(x.init_dev < 0.1 * x.init_mean);
        }
    }
}

//! Tactical Storage System — umbrella crate.
//!
//! Re-exports every component crate so examples and downstream users
//! can depend on `tss` alone. See the README for the architecture and
//! DESIGN.md for the paper-to-module map.
//!
//! The two-layer pattern in one breath — deploy a resource, build an
//! abstraction on it:
//!
//! ```
//! use tss::chirp_client::AuthMethod;
//! use tss::chirp_server::{acl::Acl, FileServer, ServerConfig};
//! use tss::core::{fs::FileSystem, Cfs};
//!
//! # fn main() -> std::io::Result<()> {
//! let export = std::env::temp_dir().join(format!("tss-doc-{}", std::process::id()));
//! // Resource layer: an ordinary user deploys a file server.
//! let server = FileServer::start(
//!     ServerConfig::localhost(&export, "me")
//!         .with_root_acl(Acl::single("hostname:*", "rwl").unwrap()),
//! )?;
//! // Abstraction layer: a central filesystem over it.
//! let fs = Cfs::connect(&server.endpoint(), vec![AuthMethod::Hostname]);
//! fs.write_file("/hello.txt", b"tactical storage")?;
//! assert_eq!(fs.read_file("/hello.txt")?, b"tactical storage");
//! # drop(server);
//! # std::fs::remove_dir_all(&export)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use catalog;
pub use chirp_client;
pub use chirp_proto;
pub use chirp_server;
pub use gems;
pub use nfs_sim;
pub use simnet;
pub use tss_core as core;

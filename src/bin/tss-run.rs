//! `tss-run` — run an unmodified program against tactical storage.
//!
//! The §8 deployment pattern as a tool: a job lands on a grid node
//! carrying only this wrapper and a credential. The wrapper *stages
//! in* files from the TSS namespace to a scratch directory, runs the
//! real program there, and *stages out* its products — so even
//! programs that cannot be run through an adapter (static binaries,
//! scripts invoking other tools) reach their home storage.
//!
//! ```text
//! tss-run [--key M:S:KEY] \
//!     --in  /cfs/host:9094/sp5/etc/run.conf=run.conf \
//!     --in  /cfs/host:9094/data/events.in=events.in \
//!     --out events.out=/cfs/host:9094/data/events.out \
//!     -- ./simulate --config run.conf
//! ```
//!
//! Namespace paths accept everything the adapter serves: `/cfs/...`,
//! `/local/...`, and anything a mountlist (`--mountlist FILE`) maps.

use std::process::Command;

use tss::chirp_client::AuthMethod;
use tss::core::adapter::{Adapter, AdapterConfig, Namespace};

struct Stage {
    from: String,
    to: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: tss-run [options] -- COMMAND [ARGS...]\n\
         \x20 --in  NAMESPACE=LOCAL    stage a file in before running (repeatable)\n\
         \x20 --out LOCAL=NAMESPACE    stage a file out after success (repeatable)\n\
         \x20 --key M:SUBJECT:KEY      credential offered to every server\n\
         \x20 --mountlist FILE         private namespace mapping\n\
         \x20 --scratch DIR            working directory (default: a temp dir)"
    );
    std::process::exit(2);
}

fn split_spec(spec: &str) -> (String, String) {
    match spec.split_once('=') {
        Some((a, b)) => (a.to_string(), b.to_string()),
        None => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = AdapterConfig::default();
    let mut stage_in: Vec<Stage> = Vec::new();
    let mut stage_out: Vec<Stage> = Vec::new();
    let mut mountlist: Option<String> = None;
    let mut scratch: Option<String> = None;
    let mut command: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--" => {
                command.extend(it.by_ref());
                break;
            }
            "--in" => {
                let (from, to) = split_spec(&it.next().unwrap_or_else(|| usage()));
                stage_in.push(Stage { from, to });
            }
            "--out" => {
                let (from, to) = split_spec(&it.next().unwrap_or_else(|| usage()));
                stage_out.push(Stage { from, to });
            }
            "--key" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let mut parts = spec.splitn(3, ':');
                let (Some(m), Some(s), Some(key)) = (parts.next(), parts.next(), parts.next())
                else {
                    usage()
                };
                config.auth.insert(0, AuthMethod::key(m, s, key.as_bytes()));
            }
            "--mountlist" => mountlist = it.next(),
            "--scratch" => scratch = it.next(),
            _ => usage(),
        }
    }
    if command.is_empty() {
        usage();
    }

    if let Err(e) = run(config, mountlist, scratch, &stage_in, &stage_out, &command) {
        eprintln!("tss-run: {e}");
        std::process::exit(1);
    }
}

fn run(
    config: AdapterConfig,
    mountlist: Option<String>,
    scratch: Option<String>,
    stage_in: &[Stage],
    stage_out: &[Stage],
    command: &[String],
) -> Result<(), Box<dyn std::error::Error>> {
    let mut adapter = Adapter::new(config)?;
    if let Some(file) = mountlist {
        let text = std::fs::read_to_string(&file)?;
        adapter.set_namespace(Namespace::parse_mountlist(&text)?);
    }
    // Scratch directory: explicit, or a fresh temp dir.
    let scratch = match scratch {
        Some(dir) => {
            std::fs::create_dir_all(&dir)?;
            std::path::PathBuf::from(dir)
        }
        None => {
            let dir = std::env::temp_dir().join(format!("tss-run-{}", std::process::id()));
            std::fs::create_dir_all(&dir)?;
            dir
        }
    };

    // Stage in.
    for s in stage_in {
        let data = adapter.read_file(&s.from)?;
        let local = scratch.join(&s.to);
        if let Some(parent) = local.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&local, &data)?;
        eprintln!(
            "tss-run: staged in {} -> {} ({} bytes)",
            s.from,
            s.to,
            data.len()
        );
    }

    // Run the unmodified program in the scratch directory.
    let status = Command::new(&command[0])
        .args(&command[1..])
        .current_dir(&scratch)
        .status()?;
    if !status.success() {
        return Err(format!("command failed with {status}").into());
    }

    // Stage out only after success, so a failed job never clobbers
    // home storage with partial products.
    for s in stage_out {
        let data = std::fs::read(scratch.join(&s.from))?;
        adapter.write_file(&s.to, &data)?;
        eprintln!(
            "tss-run: staged out {} -> {} ({} bytes)",
            s.from,
            s.to,
            data.len()
        );
    }
    Ok(())
}

//! `tss-shell` — an interactive shell over the adapter's namespace.
//!
//! The adapter gives unmodified applications one directory tree over
//! every reachable abstraction; this shell is the smallest such
//! application. Paths resolve exactly as they would for an adapted
//! program: `/cfs/host:port/...` reaches any file server, `/local/...`
//! the host filesystem, and `mount` builds a private namespace the way
//! a mountlist would.
//!
//! ```text
//! $ tss-shell [--key M:S:KEY] [--sync]
//! tss> mount /data /cfs/127.0.0.1:9094/experiment
//! tss> cd /data
//! tss> put /local/tmp/results.csv results.csv
//! tss> ls -l
//! tss> cat results.csv
//! ```
//!
//! Commands: mount, cd, pwd, ls [-l], cat, put SRC DST, cp SRC DST,
//! write PATH TEXT, mkdir, rm, rmdir, mv, stat, help, exit.

use std::io::{BufRead, Write};

use tss::chirp_client::AuthMethod;
use tss::chirp_proto::OpenFlags;
use tss::core::adapter::{Adapter, AdapterConfig};
use tss::core::fs::normalize_path;

struct Shell {
    adapter: Adapter,
    cwd: String,
}

impl Shell {
    fn resolve(&self, path: &str) -> String {
        if path.starts_with('/') {
            normalize_path(path)
        } else if self.cwd == "/" {
            normalize_path(&format!("/{path}"))
        } else {
            normalize_path(&format!("{}/{path}", self.cwd))
        }
    }

    fn run(&mut self, line: &str) -> Result<bool, Box<dyn std::error::Error>> {
        let words: Vec<&str> = line.split_whitespace().collect();
        let (Some(&cmd), args) = (words.first(), &words[1.min(words.len())..]) else {
            return Ok(true);
        };
        let arg = |i: usize| -> Result<&str, Box<dyn std::error::Error>> {
            args.get(i)
                .copied()
                .ok_or_else(|| "missing argument".into())
        };
        match cmd {
            "exit" | "quit" => return Ok(false),
            "help" => println!(
                "commands: mount LOGICAL TARGET | cd PATH | pwd | ls [-l] [PATH] |\n\
                 cat PATH | put SRC DST | cp SRC DST | write PATH TEXT... |\n\
                 mkdir PATH | rm PATH | rmdir PATH | mv FROM TO | stat PATH | exit"
            ),
            "mount" => {
                let mut ns = self.adapter.namespace().clone();
                ns.mount(arg(0)?, arg(1)?);
                self.adapter.set_namespace(ns);
                println!("mounted {} -> {}", arg(0)?, arg(1)?);
            }
            "pwd" => println!("{}", self.cwd),
            "cd" => {
                let target = self.resolve(arg(0)?);
                self.cwd = target;
            }
            "ls" => {
                let (long, path) = match args.first().copied() {
                    Some("-l") => (true, args.get(1).copied().unwrap_or(".")),
                    Some(p) => (false, p),
                    None => (false, "."),
                };
                let full = self.resolve(path);
                let names = self.adapter.readdir(&full)?;
                for name in names {
                    if long {
                        let child = self.resolve(&format!("{full}/{name}"));
                        match self.adapter.stat(&child) {
                            Ok(st) => {
                                let kind = if st.is_dir() { 'd' } else { '-' };
                                println!("{kind} {:>12} {name}", st.size);
                            }
                            Err(_) => println!("? {:>12} {name}", "-"),
                        }
                    } else {
                        println!("{name}");
                    }
                }
            }
            "cat" => {
                let data = self.adapter.read_file(&self.resolve(arg(0)?))?;
                std::io::stdout().write_all(&data)?;
                if !data.ends_with(b"\n") {
                    println!();
                }
            }
            "put" => {
                // Local file into the namespace.
                let data = std::fs::read(arg(0)?)?;
                self.adapter.write_file(&self.resolve(arg(1)?), &data)?;
                println!("{} bytes", data.len());
            }
            "cp" => {
                // Namespace-to-namespace copy, possibly across
                // abstractions — the shell's whole point.
                let data = self.adapter.read_file(&self.resolve(arg(0)?))?;
                self.adapter.write_file(&self.resolve(arg(1)?), &data)?;
                println!("{} bytes", data.len());
            }
            "write" => {
                let text = args[1..].join(" ");
                self.adapter
                    .write_file(&self.resolve(arg(0)?), text.as_bytes())?;
            }
            "mkdir" => self.adapter.mkdir(&self.resolve(arg(0)?), 0o755)?,
            "rm" => self.adapter.unlink(&self.resolve(arg(0)?))?,
            "rmdir" => self.adapter.rmdir(&self.resolve(arg(0)?))?,
            "mv" => self
                .adapter
                .rename(&self.resolve(arg(0)?), &self.resolve(arg(1)?))?,
            "stat" => {
                let st = self.adapter.stat(&self.resolve(arg(0)?))?;
                println!(
                    "type {:?} size {} inode {} mtime {}",
                    st.file_type, st.size, st.inode, st.mtime
                );
            }
            "open-sync-test" => {
                // Hidden helper used by the test suite: open with
                // O_SYNC explicitly and write a marker.
                let mut f = self.adapter.open(
                    &self.resolve(arg(0)?),
                    OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::SYNC,
                    0o644,
                )?;
                use std::io::Write as _;
                f.write_all(b"sync")?;
            }
            _ => println!("unknown command {cmd:?} (try help)"),
        }
        Ok(true)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = AdapterConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sync" => config.sync_writes = true,
            "--key" => {
                let Some(spec) = it.next() else {
                    eprintln!("--key needs M:SUBJECT:KEY");
                    std::process::exit(2);
                };
                let mut parts = spec.splitn(3, ':');
                if let (Some(m), Some(s), Some(key)) = (parts.next(), parts.next(), parts.next()) {
                    config.auth.insert(0, AuthMethod::key(m, s, key.as_bytes()));
                }
            }
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
    }
    let adapter = match Adapter::new(config) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tss-shell: {e}");
            std::process::exit(1);
        }
    };
    let mut shell = Shell {
        adapter,
        cwd: "/".to_string(),
    };
    let interactive = std::env::var("TSS_SHELL_BATCH").is_err();
    let stdin = std::io::stdin();
    loop {
        if interactive {
            print!("tss> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        match shell.run(line.trim()) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

#!/bin/sh
# Tier-1 verification: everything a change must pass before landing.
#   build + root-package tests (the ROADMAP tier-1 gate), then lint
#   and formatting across the whole workspace.
set -eu
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "verify: OK"

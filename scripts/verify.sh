#!/bin/sh
# Tier-1 verification: everything a change must pass before landing.
#   build + root-package tests (the ROADMAP tier-1 gate), then lint
#   and formatting across the whole workspace.
# With --chaos, additionally run the fault-injection suite under a
# fixed seed (override with CHAOS_SEED=<u64>).
# With --metrics, additionally run the observability smoke stage: boot
# a real file server and catalog, drive RPCs, scrape the catalog's
# metrics query interface, and assert non-zero RPC counters with
# latency quantiles in both the ClassAd and JSON forms.
# With --sim, additionally run the deterministic simulation suite in
# release mode over a fixed seed matrix (override with SIM_SEQS=<n>);
# a divergence prints the failing seed plus the minimized op trace,
# reproducible stand-alone with SIM_SEED=<seed>.
# The --pipeline stage (part of the default run; --no-pipeline skips
# it) checks the pipelined data path: the fixed-seed differential mix
# including pipelined bursts (override with PIPE_SEQS=<n>) plus the
# fast-mode rpc_pipeline smoke asserting >=2x small-op throughput at
# depth 8 vs depth 1.
# The --cache stage (part of the default run; --no-cache skips it)
# checks the server-side buffer cache: the coherence suite (two-fd
# visibility, truncate/extend, unlink-while-open, rename clobber, a
# randomized mirror under a pathological two-page cache), the release
# smoke asserting the >=2x hot-read floor with oversized reads near
# baseline, and the cache-size differential matrix (off / two-page /
# large) replayed against the cacheless model.
# The --crash stage (part of the default run; --no-crash skips it)
# sweeps the crash-injection suite in release mode: each seeded op
# sequence is replayed with a simulated kill at every durability
# point it journals, and the restarted filesystem must fsck/repair
# into a state the stub/data ordering argument accepts (override the
# matrix size with SIM_SEQS=<n>, or replay one printed failure with
# CRASH_SEED=<u64>).
# The --reactor stage (part of the default run; --no-reactor skips
# it) proves the event-driven connection core: the reactor edge-case
# suite (slow-reader backpressure, mid-pipeline disconnect, idle-crowd
# shutdown), then release mode for the reactor-vs-threads differential
# matrix (both cores against the model oracle; REACTOR_SEED=<u64>
# replays one printed failure), the 2k idle-connection soak at flat
# memory (REACTOR_SOAK=<n> scales it), and the unbound-listener
# terminality check.
# The --scenarios stage (part of the default run; --no-scenarios
# skips it) runs the mass-tenant scenario suite in release mode: the
# SP5 init stampede (>=1000 virtual clients cold-opening one tree),
# the CI-artifact THIRDPUT fan-out, mass ACL churn, the mixed-fleet
# soak, the challenge-response auth storm, key rotation under load,
# and the pinned-seed regression corpus — each with asserted telemetry
# envelopes. A violation prints SCENARIO_SEED=<n>; SCENARIO_SCALE=<f>
# resizes every fleet (and the idle soak and conn-scale defaults).
# The --fed stage (part of the default run; --no-fed skips it) checks
# the scale-out control plane in release mode: the consistent-hash
# ring properties, the 3-shard federation acceptance + shard/tree
# chaos suites on the in-memory network, the seeded federation-vs-
# single-catalog differential (override the seed with FED_SEED=<u64>;
# a divergence prints the reproducing seed), and the live THIRDPUT
# distribution-tree smoke asserting the 8-replica tree lands within
# 4x of one direct push.
set -eu
cd "$(dirname "$0")/.."

CHAOS=0
METRICS=0
SIM=0
PIPELINE=1
CACHE=1
CRASH=1
FED=1
REACTOR=1
SCENARIOS=1
for arg in "$@"; do
    case "$arg" in
        --chaos) CHAOS=1 ;;
        --metrics) METRICS=1 ;;
        --sim) SIM=1 ;;
        --pipeline) PIPELINE=1 ;;
        --no-pipeline) PIPELINE=0 ;;
        --cache) CACHE=1 ;;
        --no-cache) CACHE=0 ;;
        --crash) CRASH=1 ;;
        --no-crash) CRASH=0 ;;
        --fed) FED=1 ;;
        --no-fed) FED=0 ;;
        --reactor) REACTOR=1 ;;
        --no-reactor) REACTOR=0 ;;
        --scenarios) SCENARIOS=1 ;;
        --no-scenarios) SCENARIOS=0 ;;
        *) echo "usage: $0 [--chaos] [--metrics] [--sim] [--pipeline|--no-pipeline] [--cache|--no-cache] [--crash|--no-crash] [--fed|--no-fed] [--reactor|--no-reactor] [--scenarios|--no-scenarios]" >&2; exit 2 ;;
    esac
done

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

if [ "$CHAOS" = "1" ]; then
    # 0xC4A05EED, the chaos suite's default seed.
    CHAOS_SEED="${CHAOS_SEED:-3298844397}"
    echo "== cargo test -q -p tss-core --test chaos  (CHAOS_SEED=$CHAOS_SEED)"
    if ! CHAOS_SEED="$CHAOS_SEED" cargo test -q -p tss-core --test chaos; then
        echo "chaos suite FAILED; reproduce with CHAOS_SEED=$CHAOS_SEED" >&2
        exit 1
    fi
fi

if [ "$METRICS" = "1" ]; then
    echo "== cargo test -q -p catalog --test metrics_e2e  (server+catalog metrics smoke)"
    cargo test -q -p catalog --test metrics_e2e
    echo "== cargo test -q -p tss-bench --test tss_top  (tss-top render smoke)"
    cargo test -q -p tss-bench --test tss_top
fi

if [ "$SIM" = "1" ]; then
    # Fixed seed matrix: seeds 0..SIM_SEQS-1 differentially checked
    # real-vs-model, plus the chaos-under-simulation and e2e suites.
    # Release mode — the suite carries a wall-clock budget assertion.
    SIM_SEQS="${SIM_SEQS:-10000}"
    echo "== cargo test -q --release -p simharness  (SIM_SEQS=$SIM_SEQS)"
    if ! SIM_SEQS="$SIM_SEQS" cargo test -q --release -p simharness; then
        echo "simulation suite FAILED; the log above names the seed -" >&2
        echo "reproduce with SIM_SEED=<seed> cargo test --release -p simharness" >&2
        exit 1
    fi
fi

if [ "$PIPELINE" = "1" ]; then
    echo "== cargo test -q -p tss-bench --test pipeline_smoke  (fast-mode rpc_pipeline smoke)"
    cargo test -q -p tss-bench --test pipeline_smoke
    # Fixed seed matrix with the pipelined-burst / batched-metadata op
    # mix, differentially checked real-vs-model in release mode.
    PIPE_SEQS="${PIPE_SEQS:-2000}"
    echo "== cargo test -q --release -p simharness --test differential  (SIM_SEQS=$PIPE_SEQS)"
    if ! SIM_SEQS="$PIPE_SEQS" cargo test -q --release -p simharness --test differential; then
        echo "pipeline differential mix FAILED; the log above names the seed -" >&2
        echo "reproduce with SIM_SEED=<seed> cargo test --release -p simharness" >&2
        exit 1
    fi
fi

if [ "$CACHE" = "1" ]; then
    echo "== cargo test -q -p chirp-server --test cache_coherence  (coherence suite)"
    cargo test -q -p chirp-server --test cache_coherence
    # Release mode: the smoke asserts a wall-clock ratio the debug
    # profile's bookkeeping would distort.
    echo "== cargo test -q --release -p tss-bench --test cache_smoke  (>=2x hot-read floor)"
    cargo test -q --release -p tss-bench --test cache_smoke
    CACHE_SEQS="${CACHE_SEQS:-2000}"
    echo "== cargo test -q --release -p simharness --test differential cache_sizes  (SIM_SEQS=$CACHE_SEQS)"
    if ! SIM_SEQS="$CACHE_SEQS" cargo test -q --release -p simharness --test differential cache_sizes; then
        echo "cache-size differential matrix FAILED; the log above names the seed -" >&2
        echo "reproduce with SIM_SEED=<seed> cargo test --release -p simharness" >&2
        exit 1
    fi
fi

if [ "$CRASH" = "1" ]; then
    # Kill the simulated server at every durability point of every
    # sequence in the seed matrix; release mode keeps the full sweep
    # in seconds. CRASH_SEED=<u64> replays a single printed failure.
    CRASH_SEQS="${SIM_SEQS:-1000}"
    echo "== cargo test -q --release -p simharness --test crash_sim  (SIM_SEQS=$CRASH_SEQS)"
    if ! SIM_SEQS="$CRASH_SEQS" CRASH_SEED="${CRASH_SEED:-}" cargo test -q --release -p simharness --test crash_sim; then
        echo "crash-injection sweep FAILED; the log above names the seed -" >&2
        echo "reproduce with CRASH_SEED=<seed> cargo test --release -p simharness --test crash_sim" >&2
        exit 1
    fi
fi

if [ "$FED" = "1" ]; then
    # Ring properties, federation acceptance, shard/tree chaos, and
    # the seeded federation-vs-single-catalog differential. Release
    # mode keeps the 300-op differential and the chaos convergence
    # loops in tenths of a second. 0xFEDCA7A10655EED5 is the
    # differential's default seed.
    FED_SEED="${FED_SEED:-}"
    echo "== cargo test -q --release -p controlplane  (FED_SEED=${FED_SEED:-default})"
    if ! FED_SEED="$FED_SEED" cargo test -q --release -p controlplane; then
        echo "control-plane suite FAILED; the log above names the seed -" >&2
        echo "reproduce with FED_SEED=<seed> cargo test --release -p controlplane --test fed_differential" >&2
        exit 1
    fi
    # Live THIRDPUT tree smoke: release mode, the assertion is a
    # wall-clock ratio (8-replica tree <= 4x one direct push).
    echo "== cargo test -q --release -p tss-bench --test tree_smoke  (<=4x tree floor)"
    cargo test -q --release -p tss-bench --test tree_smoke
fi

if [ "$REACTOR" = "1" ]; then
    echo "== cargo test -q -p chirp-server --test reactor_edge  (reactor edge cases)"
    cargo test -q -p chirp-server --test reactor_edge
    # Both cores replayed against the model oracle over the seed
    # matrix, the 2k idle-connection soak at flat memory, and the
    # unbound-listener terminality check. Release mode keeps the
    # matrix plus the soak in seconds; REACTOR_SEED replays one
    # failing sequence, REACTOR_SOAK scales the crowd (50000 is the
    # headline run recorded in EXPERIMENTS.md).
    REACTOR_SEQS="${SIM_SEQS:-400}"
    echo "== cargo test -q --release -p simharness --test reactor_sim  (SIM_SEQS=$REACTOR_SEQS)"
    if ! SIM_SEQS="$REACTOR_SEQS" REACTOR_SOAK="${REACTOR_SOAK:-}" cargo test -q --release -p simharness --test reactor_sim; then
        echo "reactor suite FAILED; the log above names the seed -" >&2
        echo "reproduce with REACTOR_SEED=<seed> cargo test --release -p simharness --test reactor_sim" >&2
        exit 1
    fi
fi

if [ "$SCENARIOS" = "1" ]; then
    # Mass-tenant scenarios with asserted envelopes. Release mode is
    # where the fleets get their headline widths (the stampede must
    # cross 1000 virtual clients); a violated envelope prints its
    # SCENARIO_SEED repro line and, for small fleets, the ddmin-
    # minimized client set.
    echo "== cargo test -q --release -p simharness --test scenarios_sim  (SCENARIO_SCALE=${SCENARIO_SCALE:-1})"
    if ! SCENARIO_SEED="${SCENARIO_SEED:-}" SCENARIO_SCALE="${SCENARIO_SCALE:-}" \
        cargo test -q --release -p simharness --test scenarios_sim; then
        echo "scenario suite FAILED; the log above names the seed -" >&2
        echo "reproduce with SCENARIO_SEED=<seed> cargo test --release -p simharness --test scenarios_sim" >&2
        exit 1
    fi
fi

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "verify: OK"

#!/bin/sh
# Tier-1 verification: everything a change must pass before landing.
#   build + root-package tests (the ROADMAP tier-1 gate), then lint
#   and formatting across the whole workspace.
# With --chaos, additionally run the fault-injection suite under a
# fixed seed (override with CHAOS_SEED=<u64>).
set -eu
cd "$(dirname "$0")/.."

CHAOS=0
for arg in "$@"; do
    case "$arg" in
        --chaos) CHAOS=1 ;;
        *) echo "usage: $0 [--chaos]" >&2; exit 2 ;;
    esac
done

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

if [ "$CHAOS" = "1" ]; then
    # 0xC4A05EED, the chaos suite's default seed.
    CHAOS_SEED="${CHAOS_SEED:-3298844397}"
    echo "== cargo test -q -p tss-core --test chaos  (CHAOS_SEED=$CHAOS_SEED)"
    if ! CHAOS_SEED="$CHAOS_SEED" cargo test -q -p tss-core --test chaos; then
        echo "chaos suite FAILED; reproduce with CHAOS_SEED=$CHAOS_SEED" >&2
        exit 1
    fi
fi

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "verify: OK"

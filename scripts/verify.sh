#!/bin/sh
# Tier-1 verification: everything a change must pass before landing.
#   build + root-package tests (the ROADMAP tier-1 gate), then lint
#   and formatting across the whole workspace.
# With --chaos, additionally run the fault-injection suite under a
# fixed seed (override with CHAOS_SEED=<u64>).
# With --metrics, additionally run the observability smoke stage: boot
# a real file server and catalog, drive RPCs, scrape the catalog's
# metrics query interface, and assert non-zero RPC counters with
# latency quantiles in both the ClassAd and JSON forms.
set -eu
cd "$(dirname "$0")/.."

CHAOS=0
METRICS=0
for arg in "$@"; do
    case "$arg" in
        --chaos) CHAOS=1 ;;
        --metrics) METRICS=1 ;;
        *) echo "usage: $0 [--chaos] [--metrics]" >&2; exit 2 ;;
    esac
done

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

if [ "$CHAOS" = "1" ]; then
    # 0xC4A05EED, the chaos suite's default seed.
    CHAOS_SEED="${CHAOS_SEED:-3298844397}"
    echo "== cargo test -q -p tss-core --test chaos  (CHAOS_SEED=$CHAOS_SEED)"
    if ! CHAOS_SEED="$CHAOS_SEED" cargo test -q -p tss-core --test chaos; then
        echo "chaos suite FAILED; reproduce with CHAOS_SEED=$CHAOS_SEED" >&2
        exit 1
    fi
fi

if [ "$METRICS" = "1" ]; then
    echo "== cargo test -q -p catalog --test metrics_e2e  (server+catalog metrics smoke)"
    cargo test -q -p catalog --test metrics_e2e
    echo "== cargo test -q -p tss-bench --test tss_top  (tss-top render smoke)"
    cargo test -q -p tss-bench --test tss_top
fi

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "verify: OK"

//! Concurrent data-path end-to-end test: many client threads doing
//! striped and mirrored I/O against a small pool of real loopback
//! servers, checking data integrity and the connection-pool invariant
//! (every checkout is eventually checked back in).

use std::sync::Arc;
use std::time::Duration;

use tss::chirp_client::AuthMethod;
use tss::chirp_proto::testutil::TempDir;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};
use tss::core::fs::FileSystem;
use tss::core::stubfs::{DataServer, StubFsOptions};
use tss::core::{LocalFs, MirroredFs, StripedFs};

fn auth() -> Vec<AuthMethod> {
    vec![AuthMethod::Hostname]
}

fn open_server(root: &std::path::Path) -> FileServer {
    let cfg = ServerConfig::localhost(root, "parallel-io")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    FileServer::start(cfg).unwrap()
}

fn data_pool(servers: &[FileServer]) -> Vec<DataServer> {
    servers
        .iter()
        .map(|s| DataServer::new(&s.endpoint(), "/vol", auth()))
        .collect()
}

/// A deterministic per-thread payload large enough to cross several
/// stripe boundaries.
fn payload(thread: usize) -> Vec<u8> {
    (0..96 * 1024)
        .map(|i| ((i as u64 * 31 + thread as u64 * 131) % 251) as u8)
        .collect()
}

#[test]
fn concurrent_striped_and_mirrored_io_is_coherent() {
    // Four real servers on the loopback, eight client threads, every
    // thread writing and reading back both a striped and a mirrored
    // file while all the others do the same.
    let hosts: Vec<TempDir> = (0..4).map(|_| TempDir::new()).collect();
    let servers: Vec<FileServer> = hosts.iter().map(|d| open_server(d.path())).collect();
    let options = StubFsOptions {
        timeout: Duration::from_secs(5),
        ..StubFsOptions::default()
    };

    let striped_meta = TempDir::new();
    let striped = Arc::new(
        StripedFs::new(
            Arc::new(LocalFs::new(striped_meta.path()).unwrap()),
            data_pool(&servers),
            4,
            16 * 1024,
            options.clone(),
        )
        .unwrap(),
    );
    striped.ensure_volumes().unwrap();

    let mirrored_meta = TempDir::new();
    let mirrored = Arc::new(
        MirroredFs::new(
            Arc::new(LocalFs::new(mirrored_meta.path()).unwrap()),
            data_pool(&servers),
            3,
            options,
        )
        .unwrap(),
    );
    mirrored.ensure_volumes().unwrap();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let striped = Arc::clone(&striped);
            let mirrored = Arc::clone(&mirrored);
            scope.spawn(move || {
                let data = payload(t);
                let spath = format!("/striped-{t}");
                let mpath = format!("/mirrored-{t}");
                for round in 0..3 {
                    striped.write_file(&spath, &data).unwrap();
                    mirrored.write_file(&mpath, &data).unwrap();
                    assert_eq!(striped.read_file(&spath).unwrap(), data, "round {round}");
                    assert_eq!(mirrored.read_file(&mpath).unwrap(), data, "round {round}");
                    // Metadata fans out too.
                    assert_eq!(striped.stat(&spath).unwrap().size, data.len() as u64);
                    assert_eq!(mirrored.stat(&mpath).unwrap().size, data.len() as u64);
                }
                striped.unlink(&spath).unwrap();
                mirrored.unlink(&mpath).unwrap();
            });
        }
    });

    // Everything was deleted by its writer.
    for t in 0..8 {
        assert!(striped.stat(&format!("/striped-{t}")).is_err());
        assert!(mirrored.stat(&format!("/mirrored-{t}")).is_err());
    }

    // Pool invariant: with every handle dropped, each checkout has
    // been matched by a checkin, and each checkout was served either
    // from the idle cache or by dialing a fresh connection.
    for stats in [striped.pool_stats(), mirrored.pool_stats()] {
        assert!(stats.checkouts > 0);
        assert_eq!(stats.checkouts, stats.checkins);
        assert_eq!(stats.checkouts, stats.hits + stats.misses);
    }
}

//! Concurrent data-path end-to-end test: many client threads doing
//! striped and mirrored I/O against a small pool of servers, checking
//! data integrity and the connection-pool invariant (every checkout is
//! eventually checked back in).
//!
//! The full-size scenario runs on the in-memory network — real accept
//! loops and handler stacks, no ports, no loopback contention, no
//! timeout flakiness on a loaded machine. A scaled-down copy of the
//! same scenario stays on real TCP as the loopback smoke path.

use std::sync::Arc;
use std::time::Duration;

use simharness::harness::SimTss;
use tss::chirp_client::AuthMethod;
use tss::chirp_proto::testutil::TempDir;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};
use tss::core::fs::FileSystem;
use tss::core::stubfs::{DataServer, StubFsOptions};
use tss::core::{LocalFs, MirroredFs, StripedFs};

fn auth() -> Vec<AuthMethod> {
    vec![AuthMethod::Hostname]
}

/// A deterministic per-thread payload large enough to cross several
/// stripe boundaries.
fn payload(thread: usize) -> Vec<u8> {
    (0..96 * 1024)
        .map(|i| ((i as u64 * 31 + thread as u64 * 131) % 251) as u8)
        .collect()
}

/// Drive `threads` writer/reader threads against one striped and one
/// mirrored abstraction over the given pool, then check the pool
/// invariants. Shared by the in-memory and real-TCP variants.
fn exercise_concurrent_io(pool: Vec<DataServer>, options: StubFsOptions, threads: usize) {
    let striped_meta = TempDir::new();
    let striped = Arc::new(
        StripedFs::new(
            Arc::new(LocalFs::new(striped_meta.path()).unwrap()),
            pool.clone(),
            pool.len(),
            16 * 1024,
            options.clone(),
        )
        .unwrap(),
    );
    striped.ensure_volumes().unwrap();

    let mirrored_meta = TempDir::new();
    let mirrored = Arc::new(
        MirroredFs::new(
            Arc::new(LocalFs::new(mirrored_meta.path()).unwrap()),
            pool.clone(),
            pool.len().min(3),
            options,
        )
        .unwrap(),
    );
    mirrored.ensure_volumes().unwrap();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let striped = Arc::clone(&striped);
            let mirrored = Arc::clone(&mirrored);
            scope.spawn(move || {
                let data = payload(t);
                let spath = format!("/striped-{t}");
                let mpath = format!("/mirrored-{t}");
                for round in 0..3 {
                    striped.write_file(&spath, &data).unwrap();
                    mirrored.write_file(&mpath, &data).unwrap();
                    assert_eq!(striped.read_file(&spath).unwrap(), data, "round {round}");
                    assert_eq!(mirrored.read_file(&mpath).unwrap(), data, "round {round}");
                    // Metadata fans out too.
                    assert_eq!(striped.stat(&spath).unwrap().size, data.len() as u64);
                    assert_eq!(mirrored.stat(&mpath).unwrap().size, data.len() as u64);
                }
                striped.unlink(&spath).unwrap();
                mirrored.unlink(&mpath).unwrap();
            });
        }
    });

    // Everything was deleted by its writer.
    for t in 0..threads {
        assert!(striped.stat(&format!("/striped-{t}")).is_err());
        assert!(mirrored.stat(&format!("/mirrored-{t}")).is_err());
    }

    // Pool invariant: with every handle dropped, each checkout has
    // been matched by a checkin, and each checkout was served either
    // from the idle cache or by dialing a fresh connection.
    for stats in [striped.pool_stats(), mirrored.pool_stats()] {
        assert!(stats.checkouts > 0);
        assert_eq!(stats.checkouts, stats.checkins);
        assert_eq!(stats.checkouts, stats.hits + stats.misses);
    }
}

#[test]
fn concurrent_striped_and_mirrored_io_is_coherent() {
    // Four real servers on the in-memory network, eight client
    // threads, every thread writing and reading back both a striped
    // and a mirrored file while all the others do the same.
    let sim = SimTss::builder().servers(4).build();
    let pool: Vec<DataServer> = (0..4).map(|i| sim.data_server(i, "/vol")).collect();
    exercise_concurrent_io(pool, sim.stubfs_options(), 8);
}

#[test]
fn concurrent_io_smoke_over_real_tcp() {
    // The same scenario, scaled down, over genuine loopback sockets:
    // keeps the TCP accept path, Nagle interactions, and socket
    // shutdown behavior covered without the full-size test's
    // sensitivity to machine load.
    let hosts: Vec<TempDir> = (0..2).map(|_| TempDir::new()).collect();
    let servers: Vec<FileServer> = hosts
        .iter()
        .map(|d| {
            let cfg = ServerConfig::localhost(d.path(), "parallel-io")
                .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
            FileServer::start(cfg).unwrap()
        })
        .collect();
    let pool: Vec<DataServer> = servers
        .iter()
        .map(|s| DataServer::new(&s.endpoint(), "/vol", auth()))
        .collect();
    let options = StubFsOptions {
        timeout: Duration::from_secs(5),
        ..StubFsOptions::default()
    };
    exercise_concurrent_io(pool, options, 2);
}

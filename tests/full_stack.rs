//! Workspace-level integration tests spanning every crate: catalogs,
//! file servers, abstractions, adapter, and GEMS working together.
//!
//! Scenarios that only need file servers run on the in-memory network
//! (no ports, no load-dependent timing). Catalog discovery rides real
//! UDP/TCP by design, and the server-restart test keeps real sockets
//! on purpose — rebinding a port through TIME_WAIT *is* the scenario —
//! so those three double as the real-TCP smoke path.

use std::sync::Arc;
use std::time::Duration;

use simharness::harness::SimTss;
use tss::catalog::{query, CatalogConfig, CatalogServer};
use tss::chirp_client::AuthMethod;
use tss::chirp_proto::testutil::TempDir;
use tss::chirp_proto::OpenFlags;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};
use tss::core::adapter::{Adapter, AdapterConfig, Namespace};
use tss::core::stubfs::DataServer;
use tss::core::{Cfs, Dsfs, Placement};
use tss_core::fs::FileSystem;

const TIMEOUT: Duration = Duration::from_secs(5);

/// How long the real-TCP scenarios wait for the network to settle.
/// Generous on purpose: these tests share loopback with whatever else
/// a CI machine is doing, and a slow catalog report is not a failure.
const SETTLE: Duration = Duration::from_secs(30);

fn auth() -> Vec<AuthMethod> {
    vec![AuthMethod::Hostname]
}

/// Poll `check` until it succeeds or [`SETTLE`] elapses. On timeout,
/// panic with `what` and the last observed state so a CI-only failure
/// is diagnosable from the log alone (addresses, counts, errors).
fn wait_for<T>(what: &str, mut check: impl FnMut() -> Result<T, String>) -> T {
    let start = std::time::Instant::now();
    let mut last = String::from("never checked");
    while start.elapsed() < SETTLE {
        match check() {
            Ok(v) => return v,
            Err(state) => last = state,
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out after {SETTLE:?} waiting for {what}; last state: {last}");
}

fn open_server_with_catalog(root: &std::path::Path, catalog: Option<&CatalogServer>) -> FileServer {
    let mut cfg = ServerConfig::localhost(root, "integration")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    if let Some(cat) = catalog {
        cfg = cfg.with_catalog(cat.udp_addr(), Duration::from_millis(50));
    }
    FileServer::start(cfg).unwrap()
}

/// An [`AdapterConfig`] whose connections ride the simulated network
/// and virtual clock instead of TCP.
fn sim_adapter_config(sim: &SimTss) -> AdapterConfig {
    AdapterConfig {
        timeout: TIMEOUT,
        dialer: sim.dialer(),
        clock: sim.clock().clone(),
        ..AdapterConfig::default()
    }
}

#[test]
fn discover_servers_then_build_an_abstraction_on_them() {
    // The full tactical loop: servers report to a catalog; a user
    // discovers them at runtime and assembles a DSFS from whatever is
    // available — no administrator anywhere. Catalog reports are UDP
    // datagrams, so this scenario stays on the real network stack.
    let catalog = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(30))).unwrap();
    let dirs: Vec<TempDir> = (0..3).map(|_| TempDir::new()).collect();
    let _servers: Vec<FileServer> = dirs
        .iter()
        .map(|d| open_server_with_catalog(d.path(), Some(&catalog)))
        .collect();

    // Wait for the first reports.
    let listing = wait_for("3 servers in the catalog", || {
        let l = query(catalog.tcp_addr(), TIMEOUT)
            .map_err(|e| format!("query {} failed: {e}", catalog.tcp_addr()))?;
        if l.len() == 3 {
            Ok(l)
        } else {
            Err(format!(
                "catalog {} lists {} of 3 servers: {:?}",
                catalog.tcp_addr(),
                l.len(),
                l.iter().map(|r| r.address.as_str()).collect::<Vec<_>>()
            ))
        }
    });

    // Use the catalogued addresses, never the originals: the catalog
    // is the only source of knowledge here. Pool selection goes
    // through the discovery policy machinery.
    let dir_endpoint = listing[0].address.clone();
    let policy = tss::core::PoolPolicy {
        min_free: 1,
        ..Default::default()
    };
    let pool: Vec<DataServer> = tss::core::discovery::select(&listing[1..], &policy)
        .into_iter()
        .map(|r| DataServer::new(&r.address, "/data", auth()))
        .collect();
    assert_eq!(pool.len(), 2);
    let fs = Dsfs::format(&dir_endpoint, "/tree", auth(), pool).unwrap();
    fs.write_file("/hello", b"from discovered storage").unwrap();
    assert_eq!(fs.read_file("/hello").unwrap(), b"from discovered storage");

    // The catalog also reflects the space just consumed, eventually.
    wait_for("a report showing consumed space", || {
        let l = query(catalog.tcp_addr(), TIMEOUT)
            .map_err(|e| format!("query {} failed: {e}", catalog.tcp_addr()))?;
        if l.iter().any(|r| r.free < r.total) {
            Ok(())
        } else {
            Err(format!("all {} reports still show free == total", l.len()))
        }
    });
}

#[test]
fn one_server_serves_multiple_abstractions_at_once() {
    // Recursive abstraction: a single file server simultaneously backs
    // a plain CFS for one user and the directory tree of a DSFS for
    // another, each confined to its own subtree.
    let sim = SimTss::builder().servers(2).build();

    let cfs = Cfs::new(sim.cfs_config(0).with_base("/cfs-area"));
    let root = Cfs::new(sim.cfs_config(0));
    root.mkdir("/cfs-area", 0o755).unwrap();
    cfs.write_file("/report.txt", b"plain cfs data").unwrap();

    let pool = vec![sim.data_server(1, "/vol")];
    let dsfs = Dsfs::format_with_options(
        &sim.endpoint(0),
        "/dsfs-tree",
        auth(),
        pool,
        Placement::round_robin(),
        sim.stubfs_options(),
    )
    .unwrap();
    dsfs.write_file("/shared.txt", b"dsfs data").unwrap();

    // Both coexist on the same resource; neither sees the other's
    // namespace through its own mount.
    assert_eq!(cfs.read_file("/report.txt").unwrap(), b"plain cfs data");
    assert_eq!(dsfs.read_file("/shared.txt").unwrap(), b"dsfs data");
    assert!(cfs.read_file("/shared.txt").is_err());
    // The owner sees both, stored without transformation.
    assert!(sim.root(0).join("cfs-area/report.txt").exists());
    assert!(sim.root(0).join("dsfs-tree/shared.txt").exists());
}

#[test]
fn adapter_routes_one_namespace_over_many_abstractions() {
    let sim = SimTss::builder().servers(3).build();
    let (cfs_srv, dir_srv, data_srv) = (0, 1, 2);

    let pool = vec![sim.data_server(data_srv, "/vol")];
    let dsfs: Arc<dyn FileSystem> = Arc::new(
        Dsfs::format_with_options(
            &sim.endpoint(dir_srv),
            "/tree",
            auth(),
            pool,
            Placement::round_robin(),
            sim.stubfs_options(),
        )
        .unwrap(),
    );

    let mut adapter = Adapter::new(sim_adapter_config(&sim)).unwrap();
    adapter.register("/dsfs/archive", dsfs);
    let mountlist = format!(
        "/usr/local   /cfs/{}/software\n\
         /data        /dsfs/archive/data\n",
        sim.endpoint(cfs_srv)
    );
    adapter.set_namespace(Namespace::parse_mountlist(&mountlist).unwrap());

    // Prime both backends through the adapter itself.
    adapter
        .mkdir(&format!("/cfs/{}/software", sim.endpoint(cfs_srv)), 0o755)
        .unwrap();
    adapter.mkdir("/dsfs/archive/data", 0o755).unwrap();
    adapter
        .write_file("/usr/local/tool.sh", b"#!/bin/sh\n")
        .unwrap();
    adapter
        .write_file("/data/results.bin", b"\x01\x02\x03")
        .unwrap();

    // Logical paths reach the right physical systems.
    assert!(sim.root(cfs_srv).join("software/tool.sh").exists());
    assert!(
        sim.root(dir_srv).join("tree/data/results.bin").exists(),
        "stub in tree"
    );
    assert_eq!(
        adapter.read_file("/usr/local/tool.sh").unwrap(),
        b"#!/bin/sh\n"
    );
    assert_eq!(
        adapter.read_file("/data/results.bin").unwrap(),
        b"\x01\x02\x03"
    );
    assert_eq!(adapter.readdir("/data").unwrap(), vec!["results.bin"]);
    assert_eq!(adapter.stat("/data/results.bin").unwrap().size, 3);
}

#[test]
fn sync_writes_switch_applies_o_sync_transparently() {
    let sim = SimTss::builder().build();
    let config = AdapterConfig {
        sync_writes: true,
        ..sim_adapter_config(&sim)
    };
    let adapter = Adapter::new(config).unwrap();
    let path = format!("/cfs/{}/durable.txt", sim.endpoint(0));
    let mut f = adapter
        .open(&path, OpenFlags::WRITE | OpenFlags::CREATE, 0o644)
        .unwrap();
    use std::io::Write;
    f.write_all(b"synchronously written").unwrap();
    drop(f);
    assert_eq!(adapter.read_file(&path).unwrap(), b"synchronously written");
}

#[test]
fn gems_can_run_on_catalog_discovered_storage() {
    let catalog = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(30))).unwrap();
    let dirs: Vec<TempDir> = (0..3).map(|_| TempDir::new()).collect();
    let _servers: Vec<FileServer> = dirs
        .iter()
        .map(|d| open_server_with_catalog(d.path(), Some(&catalog)))
        .collect();
    let listing = wait_for("3 servers in the catalog", || {
        let l = query(catalog.tcp_addr(), TIMEOUT)
            .map_err(|e| format!("query {} failed: {e}", catalog.tcp_addr()))?;
        if l.len() == 3 {
            Ok(l)
        } else {
            Err(format!(
                "catalog {} lists {} of 3 servers",
                catalog.tcp_addr(),
                l.len()
            ))
        }
    });
    let pool: Vec<DataServer> = listing
        .iter()
        .map(|r| DataServer::new(&r.address, "/gems", auth()))
        .collect();
    let db = tss::gems::DbServer::start_ephemeral().unwrap();
    let mut config = tss::gems::GemsConfig::new(db.addr(), pool);
    config.default_target = 2;
    let g = tss::gems::Gems::connect(config).unwrap();
    g.ingest("discovered", &[("via", "catalog")], b"data")
        .unwrap();
    let (_, repair) = g.maintain().unwrap();
    assert_eq!(repair.copied, 1);
    assert_eq!(g.fetch("discovered").unwrap(), b"data");
}

#[test]
fn whole_stack_survives_a_server_restart() {
    // CFS through the adapter keeps working across a full server
    // restart on the same port and root (the tactical pattern: a
    // borrowed machine reboots, the abstraction reconnects). Stays on
    // real TCP: rebinding a just-closed port is the behavior under
    // test, and this doubles as the adapter's loopback smoke path.
    let host = TempDir::new();
    let server = open_server_with_catalog(host.path(), None);
    let addr = server.addr();
    let config = AdapterConfig {
        retry: tss::core::cfs::RetryPolicy {
            max_retries: 20,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(200),
            ..tss::core::cfs::RetryPolicy::default()
        },
        timeout: Duration::from_secs(2),
        ..AdapterConfig::default()
    };
    let adapter = Adapter::new(config).unwrap();
    let path = format!("/cfs/{addr}/persistent.txt");
    adapter.write_file(&path, b"before restart").unwrap();

    drop(server);
    // Rebind the same port; the retry loop covers TIME_WAIT and any
    // transient squatter that grabbed the just-released port. On a
    // persistent collision, the panic names the port so the failure
    // is attributable from the log.
    let server2 = {
        let start = std::time::Instant::now();
        loop {
            let mut cfg = ServerConfig::localhost(host.path(), "integration")
                .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
            cfg.bind = addr;
            match FileServer::start(cfg) {
                Ok(s) => break s,
                Err(_) if start.elapsed() < SETTLE => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => panic!("could not rebind port {addr} within {SETTLE:?}: {e}"),
            }
        }
    };
    assert_eq!(server2.addr(), addr);
    assert_eq!(adapter.read_file(&path).unwrap(), b"before restart");
    adapter.write_file(&path, b"after restart").unwrap();
    assert_eq!(adapter.read_file(&path).unwrap(), b"after restart");
}

#[test]
fn mount_dsfs_convention_serves_the_paper_namespace() {
    let sim = SimTss::builder().servers(2).build();
    let (dir_srv, data_srv) = (0, 1);

    // Format the filesystem, then mount it by convention.
    let pool = vec![sim.data_server(data_srv, "/vol")];
    Dsfs::format_with_options(
        &sim.endpoint(dir_srv),
        "/run5",
        auth(),
        pool.clone(),
        Placement::round_robin(),
        sim.stubfs_options(),
    )
    .unwrap();

    let mut adapter = Adapter::new(sim_adapter_config(&sim)).unwrap();
    let mount_root = adapter
        .mount_dsfs(&sim.endpoint(dir_srv), "/run5", pool)
        .unwrap();
    assert_eq!(
        mount_root,
        format!("/dsfs/{}@run5", sim.endpoint(dir_srv)),
        "the paper's /dsfs/<host>@<volume> convention"
    );
    // And the mountlist form from §6 composes on top.
    let mountlist = format!("/data {mount_root}/data\n");
    adapter.set_namespace(Namespace::parse_mountlist(&mountlist).unwrap());
    adapter.mkdir("/data", 0o755).unwrap();
    adapter.write_file("/data/events.db", b"indexed").unwrap();
    assert_eq!(adapter.read_file("/data/events.db").unwrap(), b"indexed");
    assert!(sim.root(dir_srv).join("run5/data/events.db").exists());
}

#[test]
fn extension_abstractions_compose_with_the_adapter() {
    // StripedFs and MirroredFs are FileSystems like any other, so the
    // adapter serves them under the one namespace — recursion all the
    // way up.
    let sim = SimTss::builder().servers(3).build();
    let meta1 = TempDir::new();
    let meta2 = TempDir::new();
    let pool: Vec<DataServer> = (0..3).map(|i| sim.data_server(i, "/vol")).collect();

    let striped = tss::core::StripedFs::new(
        Arc::new(tss::core::LocalFs::new(meta1.path()).unwrap()),
        pool.clone(),
        3,
        64 * 1024,
        sim.stubfs_options(),
    )
    .unwrap();
    striped.ensure_volumes().unwrap();
    let mirrored = tss::core::MirroredFs::new(
        Arc::new(tss::core::LocalFs::new(meta2.path()).unwrap()),
        pool,
        2,
        sim.stubfs_options(),
    )
    .unwrap();

    let adapter = Adapter::new(sim_adapter_config(&sim)).unwrap();
    adapter.register("/fast", Arc::new(striped));
    adapter.register("/safe", Arc::new(mirrored));

    let big: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
    adapter.write_file("/fast/dataset.bin", &big).unwrap();
    assert_eq!(adapter.read_file("/fast/dataset.bin").unwrap(), big);
    adapter
        .write_file("/safe/precious.txt", b"replicated")
        .unwrap();
    assert_eq!(
        adapter.read_file("/safe/precious.txt").unwrap(),
        b"replicated"
    );
    // Cross-abstraction copy through one namespace.
    let data = adapter.read_file("/fast/dataset.bin").unwrap();
    adapter.write_file("/safe/dataset-copy.bin", &data).unwrap();
    assert_eq!(
        adapter.stat("/safe/dataset-copy.bin").unwrap().size,
        big.len() as u64
    );
}

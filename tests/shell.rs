//! The `tss-shell` binary driven as a subprocess: scripted sessions
//! against live file servers, including a cross-abstraction copy.

use std::io::Write;
use std::process::{Command, Stdio};

use tss::chirp_proto::testutil::TempDir;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};

fn open_server(root: &std::path::Path) -> FileServer {
    FileServer::start(
        ServerConfig::localhost(root, "shell-test")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
    )
    .unwrap()
}

/// Run a scripted shell session; returns (stdout, stderr).
fn shell_session(script: &str) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tss-shell"))
        .env("TSS_SHELL_BATCH", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tss-shell");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn scripted_session_against_a_live_server() {
    let host = TempDir::new();
    let server = open_server(host.path());
    let ep = server.endpoint();
    let script = format!(
        "mount /data /cfs/{ep}/experiment\n\
         mkdir /cfs/{ep}/experiment\n\
         cd /data\n\
         pwd\n\
         write notes.txt tactical storage\n\
         ls\n\
         cat notes.txt\n\
         stat notes.txt\n\
         mv notes.txt final.txt\n\
         ls -l\n\
         exit\n"
    );
    let (out, err) = shell_session(&script);
    assert!(err.is_empty(), "stderr: {err}");
    assert!(out.contains("mounted /data"), "{out}");
    assert!(out.contains("/data\n"), "pwd output: {out}");
    assert!(out.contains("notes.txt"), "{out}");
    assert!(out.contains("tactical storage"), "{out}");
    assert!(out.contains("size 16"), "{out}");
    assert!(out.contains("final.txt"), "{out}");
    // The data really landed on the server, untranslated.
    assert_eq!(
        std::fs::read(host.path().join("experiment/final.txt")).unwrap(),
        b"tactical storage"
    );
}

#[test]
fn cp_moves_data_between_two_servers() {
    let host_a = TempDir::new();
    let host_b = TempDir::new();
    let a = open_server(host_a.path());
    let b = open_server(host_b.path());
    std::fs::write(host_a.path().join("source.bin"), b"between servers").unwrap();
    let script = format!(
        "cp /cfs/{}/source.bin /cfs/{}/copied.bin\nexit\n",
        a.endpoint(),
        b.endpoint()
    );
    let (out, err) = shell_session(&script);
    assert!(err.is_empty(), "stderr: {err}");
    assert!(out.contains("15 bytes"), "{out}");
    assert_eq!(
        std::fs::read(host_b.path().join("copied.bin")).unwrap(),
        b"between servers"
    );
}

#[test]
fn errors_are_reported_and_session_continues() {
    let host = TempDir::new();
    let server = open_server(host.path());
    let ep = server.endpoint();
    let script = format!(
        "cat /cfs/{ep}/missing.txt\n\
         write /cfs/{ep}/recovered.txt still here\n\
         cat /cfs/{ep}/recovered.txt\n\
         exit\n"
    );
    let (out, err) = shell_session(&script);
    assert!(err.contains("error:"), "{err}");
    assert!(out.contains("still here"), "session continued: {out}");
}

#[test]
fn local_root_is_reachable() {
    let work = TempDir::new();
    std::fs::write(work.path().join("host-file"), b"from the host").unwrap();
    let script = format!("cat /local{}/host-file\nexit\n", work.path().display());
    let (out, err) = shell_session(&script);
    assert!(err.is_empty(), "stderr: {err}");
    assert!(out.contains("from the host"), "{out}");
}

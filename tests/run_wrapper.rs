//! The `tss-run` stage-in/run/stage-out wrapper as a subprocess: a
//! shell script standing in for an unmodified scientific binary.

use std::process::Command;

use tss::chirp_proto::testutil::TempDir;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};

fn open_server(root: &std::path::Path) -> FileServer {
    FileServer::start(
        ServerConfig::localhost(root, "run-test")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
    )
    .unwrap()
}

#[test]
fn stage_in_run_stage_out() {
    let home = TempDir::new();
    std::fs::create_dir_all(home.path().join("job")).unwrap();
    std::fs::write(home.path().join("job/input.txt"), b"7 plus 5").unwrap();
    let server = open_server(home.path());
    let ep = server.endpoint();

    let out = Command::new(env!("CARGO_BIN_EXE_tss-run"))
        .args([
            "--in",
            &format!("/cfs/{ep}/job/input.txt=input.txt"),
            "--out",
            &format!("result.txt=/cfs/{ep}/job/result.txt"),
            "--",
            "/bin/sh",
            "-c",
            "tr 'a-z' 'A-Z' < input.txt > result.txt",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The product landed back on home storage.
    assert_eq!(
        std::fs::read(home.path().join("job/result.txt")).unwrap(),
        b"7 PLUS 5"
    );
}

#[test]
fn failed_jobs_do_not_stage_out() {
    let home = TempDir::new();
    std::fs::create_dir_all(home.path().join("job")).unwrap();
    std::fs::write(home.path().join("job/input.txt"), b"data").unwrap();
    let server = open_server(home.path());
    let ep = server.endpoint();

    let out = Command::new(env!("CARGO_BIN_EXE_tss-run"))
        .args([
            "--in",
            &format!("/cfs/{ep}/job/input.txt=input.txt"),
            "--out",
            &format!("partial.txt=/cfs/{ep}/job/partial.txt"),
            "--",
            "/bin/sh",
            "-c",
            "echo halfway > partial.txt; exit 3",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        !home.path().join("job/partial.txt").exists(),
        "failed job must not clobber home storage"
    );
}

#[test]
fn mountlist_gives_the_job_its_expected_paths() {
    let home = TempDir::new();
    std::fs::create_dir_all(home.path().join("sw")).unwrap();
    std::fs::write(home.path().join("sw/config"), b"threads=4").unwrap();
    let server = open_server(home.path());
    let ep = server.endpoint();
    let work = TempDir::new();
    let mountlist = work.path().join("mounts");
    std::fs::write(&mountlist, format!("/apps /cfs/{ep}/sw\n")).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_tss-run"))
        .args([
            "--mountlist",
            mountlist.to_str().unwrap(),
            "--in",
            "/apps/config=config",
            "--out",
            &format!("seen=/cfs/{ep}/sw/seen"),
            "--",
            "/bin/sh",
            "-c",
            "cp config seen",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(home.path().join("sw/seen")).unwrap(),
        b"threads=4"
    );
}
